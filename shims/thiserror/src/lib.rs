//! Offline stand-in for `thiserror`.
//!
//! Derives `Display`, `std::error::Error` and (for `#[from]` fields)
//! `From` impls for error enums, using only the raw [`proc_macro`] API.
//! Supports the subset the workspace uses:
//!
//! * enums whose variants carry named fields, one tuple field, or nothing;
//! * `#[error("...")]` format strings with `{named}` and `{0}`
//!   interpolation (no format specs);
//! * `#[from]` on single-field tuple variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Variant {
    name: String,
    /// The `#[error("...")]` format string.
    format: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    /// Tuple fields: `(type_text, has_from)` per field.
    Tuple(Vec<(String, bool)>),
    Named(Vec<String>),
}

#[proc_macro_derive(Error, attributes(error, from, source))]
pub fn derive_error(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "enum" => {}
        other => panic!("thiserror shim only supports enums, found {other}"),
    }
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected enum name, found {other}"),
    };
    i += 1;
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("unexpected enum body for `{name}`: {other:?}"),
    };
    let variants = parse_variants(body);
    generate(&name, &variants)
        .parse()
        .expect("generated error impls parse")
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Reads the attributes at `tokens[*i..]`, returning the `#[error("...")]`
/// format string if present, and advancing past all attributes.
fn read_error_attr(tokens: &[TokenTree], i: &mut usize) -> Option<String> {
    let mut format = None;
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let (Some(TokenTree::Ident(attr)), Some(TokenTree::Group(args))) =
                (inner.first(), inner.get(1))
            {
                if attr.to_string() == "error" {
                    if let Some(TokenTree::Literal(lit)) = args.stream().into_iter().next() {
                        format = Some(unquote(&lit.to_string()));
                    }
                }
            }
        }
        *i += 2;
    }
    format
}

fn unquote(literal: &str) -> String {
    let inner = literal
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or(literal);
    // Undo the escapes that appear in the workspace's format strings.
    inner
        .replace("\\\"", "\"")
        .replace("\\\\", "\\")
        .replace("\\n", "\n")
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let format = read_error_attr(&tokens, &mut i).unwrap_or_default();
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(parse_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant {
            name,
            format,
            fields,
        });
    }
    variants
}

/// Parses `(#[from] Type, ...)` tuple fields into `(type_text, has_from)`.
fn parse_tuple_fields(stream: TokenStream) -> Vec<(String, bool)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut has_from = false;
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                if g.stream().to_string().contains("from") {
                    has_from = true;
                }
            }
            i += 2;
        }
        let mut ty = String::new();
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            ty.push_str(&tokens[i].to_string());
            i += 1;
        }
        if !ty.is_empty() {
            fields.push((ty, has_from));
        }
    }
    fields
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        names.push(id.to_string());
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

/// Identifiers interpolated by a format string (`{name}` captures).
fn used_names(format: &str) -> Vec<String> {
    let mut names = Vec::new();
    for (start, c) in format.char_indices() {
        if c != '{' {
            continue;
        }
        if let Some(end) = format[start + 1..].find('}') {
            let inner = &format[start + 1..start + 1 + end];
            let name: String = inner.split(':').next().unwrap_or("").to_string();
            if !name.is_empty() && !names.contains(&name) {
                names.push(name);
            }
        }
    }
    names
}

fn generate(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    let mut from_impls = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            VariantFields::Unit => {
                arms.push_str(&format!(
                    "{name}::{vname} => ::std::write!(__f, \"{}\"),\n",
                    escape(&v.format)
                ));
            }
            VariantFields::Named(fields) => {
                let used = used_names(&v.format);
                let binders: Vec<&String> = fields.iter().filter(|f| used.contains(f)).collect();
                let pattern = if binders.is_empty() {
                    format!("{name}::{vname} {{ .. }}")
                } else {
                    format!(
                        "{name}::{vname} {{ {}, .. }}",
                        binders
                            .iter()
                            .map(|b| b.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                };
                arms.push_str(&format!(
                    "{pattern} => ::std::write!(__f, \"{}\"),\n",
                    escape(&v.format)
                ));
            }
            VariantFields::Tuple(fields) => {
                // Rewrite positional `{0}` captures into named binders so
                // Rust's inline format capture picks them up.
                let mut fmt = v.format.clone();
                let mut binders = Vec::new();
                for (k, _) in fields.iter().enumerate() {
                    let positional = format!("{{{k}}}");
                    if fmt.contains(&positional) {
                        fmt = fmt.replace(&positional, &format!("{{__f{k}}}"));
                        binders.push(format!("__f{k}"));
                    } else {
                        binders.push("_".to_string());
                    }
                }
                arms.push_str(&format!(
                    "{name}::{vname}({}) => ::std::write!(__f, \"{}\"),\n",
                    binders.join(", "),
                    escape(&fmt)
                ));
                if fields.len() == 1 && fields[0].1 {
                    from_impls.push_str(&format!(
                        "impl ::std::convert::From<{ty}> for {name} {{\n\
                             fn from(source: {ty}) -> Self {{ {name}::{vname}(source) }}\n\
                         }}\n",
                        ty = fields[0].0
                    ));
                }
            }
        }
    }
    format!(
        "impl ::std::fmt::Display for {name} {{\n\
             fn fmt(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}\n\
         impl ::std::error::Error for {name} {{}}\n\
         {from_impls}"
    )
}

/// Escapes a format string for embedding in generated source.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}
