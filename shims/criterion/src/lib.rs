//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace benches use —
//! benchmark groups, `bench_function` / `bench_with_input`, throughput
//! annotation, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — on top of a plain wall-clock sampling loop.
//!
//! Two integration points matter for the workspace:
//!
//! * `cargo bench -- --test` runs every benchmark exactly once (the CI
//!   smoke mode, mirroring real criterion's behaviour);
//! * when the `CRITERION_JSON` environment variable names a file, all
//!   measurements are written to it as a JSON object
//!   `{"host": {...}, "results": [...]}` — this is how
//!   `scripts/bench.sh` produces `BENCH_split.json`. The `host` header
//!   records the logical CPU count, target architecture and detected
//!   SIMD feature set, so recorded numbers carry the machine context
//!   they were measured on (the vectorized split kernel's speedups are
//!   meaningless without it).

use std::fmt::Display;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One recorded measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark group name.
    pub group: String,
    /// Benchmark id within the group.
    pub bench: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Median of the per-sample means, nanoseconds per iteration.
    pub median_ns: f64,
    /// Total iterations executed during measurement.
    pub iterations: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Optional throughput annotation (elements per iteration).
    pub throughput_elements: Option<u64>,
    /// Optional throughput annotation (bytes per iteration) — used by the
    /// partition-traffic bench to record bytes allocated per build.
    pub throughput_bytes: Option<u64>,
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a single parameter, like criterion's
    /// `BenchmarkId::from_parameter`.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Builds an id from a function name and a parameter.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
    json_path: Option<PathBuf>,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        let json_path = std::env::var_os("CRITERION_JSON").map(PathBuf::from);
        Criterion {
            test_mode,
            json_path,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            throughput: None,
        }
    }

    /// Prints the summary and writes the JSON trajectory file if
    /// requested. Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&mut self) {
        let Some(path) = self.json_path.clone() else {
            return;
        };
        let mut out = String::from("{\n");
        out.push_str(&format!("\"host\": {},\n", host_json()));
        out.push_str("\"results\": [\n");
        for (i, m) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"group\": \"{}\", \"bench\": \"{}\", \"mean_ns\": {:.1}, \
                 \"median_ns\": {:.1}, \"iterations\": {}, \"samples\": {}, \
                 \"throughput_elements\": {}, \"throughput_bytes\": {}}}{}\n",
                m.group,
                m.bench,
                m.mean_ns,
                m.median_ns,
                m.iterations,
                m.samples,
                m.throughput_elements
                    .map_or("null".to_string(), |t| t.to_string()),
                m.throughput_bytes
                    .map_or("null".to_string(), |t| t.to_string()),
                if i + 1 == self.results.len() { "" } else { "," }
            ));
        }
        out.push_str("]\n}\n");
        if let Some(parent) = path.parent() {
            let _ = fs::create_dir_all(parent);
        }
        match fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes())) {
            Ok(()) => eprintln!(
                "criterion: wrote {} results to {}",
                self.results.len(),
                path.display()
            ),
            Err(e) => eprintln!("criterion: could not write {}: {e}", path.display()),
        }
    }
}

/// The host-metadata JSON header attached to every trajectory file:
/// logical CPU count, target architecture, and the SIMD features the
/// running CPU reports (the same runtime probes the score kernel's
/// backend detection uses).
fn host_json() -> String {
    let num_cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let simd_features = detected_simd_features().join("\", \"");
    let simd_features = if simd_features.is_empty() {
        String::new()
    } else {
        format!("\"{simd_features}\"")
    };
    format!(
        "{{\"num_cpus\": {num_cpus}, \"arch\": \"{}\", \"simd_features\": [{simd_features}]}}",
        std::env::consts::ARCH
    )
}

/// SIMD extensions detected on the running CPU, coarsest-first.
fn detected_simd_features() -> Vec<&'static str> {
    let mut features = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        for (name, present) in [
            ("sse2", is_x86_feature_detected!("sse2")),
            ("sse4.2", is_x86_feature_detected!("sse4.2")),
            ("avx", is_x86_feature_detected!("avx")),
            ("avx2", is_x86_feature_detected!("avx2")),
            ("fma", is_x86_feature_detected!("fma")),
            ("avx512f", is_x86_feature_detected!("avx512f")),
        ] {
            if present {
                features.push(name);
            }
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            features.push("neon");
        }
    }
    features
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement duration budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates subsequent benches with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.to_string(), |b| f(b));
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(id.0.clone(), |b| f(b, input));
        self
    }

    fn run_one(&mut self, bench: String, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut bencher);
        let Some((mean_ns, median_ns, iterations, samples)) = bencher.result else {
            return;
        };
        let label = format!("{}/{}", self.name, bench);
        if self.criterion.test_mode {
            eprintln!("{label}: ok (smoke)");
        } else {
            eprintln!(
                "{label}: {:>12} per iter ({iterations} iters, {samples} samples)",
                fmt_ns(median_ns)
            );
        }
        self.criterion.results.push(Measurement {
            group: self.name.clone(),
            bench,
            mean_ns,
            median_ns,
            iterations,
            samples,
            throughput_elements: match self.throughput {
                Some(Throughput::Elements(n)) => Some(n),
                _ => None,
            },
            throughput_bytes: match self.throughput {
                Some(Throughput::Bytes(n)) => Some(n),
                _ => None,
            },
        });
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Times a closure inside a benchmark body.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    /// `(mean_ns, median_ns, total_iterations, samples)`.
    result: Option<(f64, f64, u64, usize)>,
}

impl Bencher {
    /// Runs the closure under the configured sampling plan and records the
    /// per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.result = Some((0.0, 0.0, 1, 1));
            return;
        }
        // Warm-up, also estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        let per_sample_budget = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((per_sample_budget / est_ns).round() as u64).max(1);
        let mut sample_means = Vec::with_capacity(self.sample_size);
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            sample_means.push(elapsed / iters_per_sample as f64);
            total_iters += iters_per_sample;
        }
        let mean = sample_means.iter().sum::<f64>() / sample_means.len() as f64;
        let mut sorted = sample_means.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = sorted[sorted.len() / 2];
        self.result = Some((mean, median, total_iters, sample_means.len()));
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_measurement() {
        let mut c = Criterion {
            test_mode: false,
            json_path: None,
            results: Vec::new(),
        };
        {
            let mut group = c.benchmark_group("g");
            group
                .sample_size(3)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(5));
            group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            group.finish();
        }
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].mean_ns >= 0.0);
        assert!(c.results[0].iterations >= 3);
    }

    #[test]
    fn host_header_reports_machine() {
        let h = host_json();
        assert!(h.contains("\"num_cpus\""));
        assert!(h.contains(std::env::consts::ARCH));
        assert!(h.contains("\"simd_features\""));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(64).0, "64");
        assert_eq!(BenchmarkId::new("f", "x").0, "f/x");
    }
}
