//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships a minimal `serde` shim (see `shims/serde`) whose `Serialize` /
//! `Deserialize` traits convert through an owned JSON-like
//! [`serde::Value`] data model. This crate derives those traits with the
//! raw [`proc_macro`] API — no `syn`, no `quote` — for the shapes the
//! workspace actually uses:
//!
//! * structs with named fields (and unit structs);
//! * enums with unit, tuple and struct variants.
//!
//! Generics, `#[serde(...)]` attributes and tuple structs are not
//! supported and produce a compile error naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or an enum variant.
enum Fields {
    Unit,
    /// Tuple fields, by arity.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

/// The parsed shape of the derive input.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes_and_visibility(&tokens, &mut i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected an item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generics (on `{name}`)");
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    panic!("serde shim derive does not support tuple structs (`{name}`)")
                }
                other => panic!("unexpected struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("unexpected enum body for `{name}`: {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive serde traits for `{other}` items"),
    }
}

/// Advances `i` past `#[...]` attributes and a `pub` / `pub(...)`
/// visibility qualifier.
fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Splits a named-field body into field names. Commas inside angle
/// brackets (`Vec<(String, f64)>`) and inside groups are not separators.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        names.push(id.to_string());
        // Skip to the next top-level comma (type text may contain nested
        // commas inside `<...>`).
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

/// Counts the top-level comma-separated types of a tuple-variant payload.
fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for (k, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if k + 1 == tokens.len() {
                    trailing_comma = true;
                } else {
                    arity += 1;
                }
            }
            _ => {}
        }
    }
    let _ = trailing_comma;
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant and the separating comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Map(::std::vec::Vec::new())".to_string(),
                Fields::Named(names) => named_fields_to_map(names, |f| format!("&self.{f}")),
                Fields::Tuple(_) => unreachable!("tuple structs are rejected during parsing"),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),\n"
                    )),
                    Fields::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::serialize(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{v}\"), {payload})]),\n",
                            binds = binders.join(", ")
                        ));
                    }
                    Fields::Named(names) => {
                        let payload = named_fields_to_map(names, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{v}\"), {payload})]),\n",
                            binds = names.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    }
}

/// Builds a `Value::Map` expression over named fields, with `access`
/// producing the expression for each field binding.
fn named_fields_to_map(names: &[String], access: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = names
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize({}))",
                access(f)
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::deserialize(\
                                     ::serde::map_field(__v, \"{f}\", \"{name}\")?)?"
                            )
                        })
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(_) => unreachable!("tuple structs are rejected during parsing"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => return ::std::result::Result::Ok({name}::{v}),\n"
                    )),
                    Fields::Tuple(arity) => {
                        if *arity == 1 {
                            tagged_arms.push_str(&format!(
                                "\"{v}\" => return ::std::result::Result::Ok(\
                                     {name}::{v}(::serde::Deserialize::deserialize(__payload)?)),\n"
                            ));
                        } else {
                            let elems: Vec<String> = (0..*arity)
                                .map(|k| {
                                    format!(
                                        "::serde::Deserialize::deserialize(\
                                             ::serde::seq_item(__payload, {k}, \"{name}::{v}\")?)?"
                                    )
                                })
                                .collect();
                            tagged_arms.push_str(&format!(
                                "\"{v}\" => return ::std::result::Result::Ok(\
                                     {name}::{v}({})),\n",
                                elems.join(", ")
                            ));
                        }
                    }
                    Fields::Named(names) => {
                        let inits: Vec<String> = names
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::deserialize(\
                                         ::serde::map_field(__payload, \"{f}\", \"{name}::{v}\")?)?"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => return ::std::result::Result::Ok(\
                                 {name}::{v} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                             match __s {{ {unit_arms} _ => {{}} }}\n\
                         }}\n\
                         if let ::std::option::Option::Some((__tag, __payload)) = __v.as_tagged() {{\n\
                             match __tag {{ {tagged_arms} _ => {{}} }}\n\
                         }}\n\
                         ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"invalid value for enum {name}: {{:?}}\", __v)))\n\
                     }}\n\
                 }}"
            )
        }
    }
}
