//! Offline stand-in for `rand`.
//!
//! Provides the exact API surface the workspace uses — [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`]
//! and [`seq::SliceRandom::shuffle`] — with the same deterministic-seed
//! discipline as the real crate. All randomness flows through
//! [`RngCore::next_u64`], implemented by concrete generators such as the
//! `rand_chacha` shim's `ChaCha8Rng`.

/// The core source of randomness.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type samplable uniformly from an RNG's raw bits (the shim analogue of
/// sampling from rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Uniform integer in `[0, span)` via 128-bit widening multiply.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange for std::ops::Range<$ty> {
            type Output = $ty;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty gen_range range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $ty
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$ty> {
            type Output = $ty;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $ty
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8, isize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<Range: SampleRange>(&mut self, range: Range) -> Range::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded, like
    /// the real crate).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step, used to expand small seeds into full key material.
pub fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Slice utilities.
pub mod seq {
    use super::{uniform_below, Rng};

    /// In-place random permutations.
    pub trait SliceRandom {
        /// Shuffles the slice with a Fisher–Yates pass.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// A small self-contained generator for shim-internal tests.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 generator (test helper; real code uses `rand_chacha`).
    pub struct SmallRng(u64);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            super::split_mix64(&mut self.0)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(seed)
        }
    }
}

/// Commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::rngs::SmallRng;

    #[test]
    fn f64_samples_lie_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let a = rng.gen_range(3..10usize);
            assert!((3..10).contains(&a));
            let b = rng.gen_range(5..=6u32);
            assert!((5..=6).contains(&b));
            let c = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&c));
            let d = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&d));
        }
    }

    #[test]
    fn shuffle_permutes_deterministically() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        let mut r1 = SmallRng::seed_from_u64(3);
        let mut r2 = SmallRng::seed_from_u64(3);
        a.shuffle(&mut r1);
        b.shuffle(&mut r2);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "50 elements virtually never shuffle to identity");
    }
}
