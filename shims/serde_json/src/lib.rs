//! Offline stand-in for `serde_json`.
//!
//! Renders the workspace serde shim's [`Value`] model to JSON text and
//! parses JSON text back. Covers the surface the workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], plus [`Value`] and
//! [`Error`] re-exports. Numbers are parsed as `f64`; floats print with
//! Rust's shortest round-trip formatting so persisted trees reload
//! bit-for-bit.

pub use serde::Value;

use serde::{Deserialize, Serialize};

/// JSON serialization/parsing error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error(message.into())
    }

    /// Line number of the error. The shim does not track positions, so
    /// this is always 0; provided for API compatibility.
    pub fn line(&self) -> usize {
        0
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into any deserializable value.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::deserialize(&value)?)
}

// -------------------------------------------------------------- printing

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => write_container(
            items.iter(),
            '[',
            ']',
            indent,
            depth,
            out,
            |item, out, d| write_value(item, indent, d, out),
        ),
        Value::Map(entries) => write_container(
            entries.iter(),
            '{',
            '}',
            indent,
            depth,
            out,
            |(k, item), out, d| {
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, d, out);
            },
        ),
    }
}

fn write_container<I: ExactSizeIterator>(
    items: I,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut write_item: impl FnMut(I::Item, &mut String, usize),
) {
    if items.len() == 0 {
        out.push(open);
        out.push(close);
        return;
    }
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(item, out, depth + 1);
        if i + 1 != len {
            out.push(',');
        }
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; serde_json writes null.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{:?}` is Rust's shortest round-trip float formatting.
        out.push_str(&format!("{n:?}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic_values() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("tree \"x\"\n".into())),
            ("score".into(), Value::Num(0.1 + 0.2)),
            ("count".into(), Value::Num(42.0)),
            (
                "flags".into(),
                Value::Seq(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let compact = to_string(&v).unwrap();
        let parsed: Value = from_str(&compact).unwrap();
        assert_eq!(parsed, v);
        let pretty = to_string_pretty(&v).unwrap();
        let parsed: Value = from_str(&pretty).unwrap();
        assert_eq!(parsed, v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn floats_roundtrip_bit_for_bit() {
        for x in [1.0e-300, std::f64::consts::PI, -0.000123456789, 1e20, 0.3] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{broken").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
