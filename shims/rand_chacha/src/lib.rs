//! Offline stand-in for `rand_chacha`.
//!
//! Implements a genuine ChaCha8 keystream generator (the same core as the
//! real crate, without the SIMD paths) so that seeded experiments keep the
//! statistical quality the workspace's moment-based tests assert. Stream
//! positions and word order follow RFC 7539's state layout; seeds are
//! expanded from a `u64` with SplitMix64, so identical seeds always
//! reproduce identical datasets — the only property callers rely on.

use rand::{split_mix64, RngCore, SeedableRng};

/// Number of ChaCha double-rounds (ChaCha8 = 4 double-rounds).
const DOUBLE_ROUNDS: usize = 4;

/// A ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words 0..8, counter, nonce words — the RFC 7539 state minus the
    /// constants.
    key: [u32; 8],
    nonce: [u32; 3],
    counter: u32,
    /// Keystream block buffered as sixteen 32-bit words.
    block: [u32; 16],
    /// Next unread word index in `block` (16 = exhausted).
    cursor: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter;
        state[13..16].copy_from_slice(&self.nonce);
        let mut working = state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = split_mix64(&mut state);
            pair[0] = word as u32;
            if pair.len() > 1 {
                pair[1] = (word >> 32) as u32;
            }
        }
        ChaCha8Rng {
            key,
            nonce: [0; 3],
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_f64_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "variance {var}");
    }
}
