//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this shim provides
//! the subset of serde the workspace uses: [`Serialize`] / [`Deserialize`]
//! traits that convert through an owned JSON-like [`Value`] data model,
//! plus derive macros (re-exported from the `serde_derive` shim). The
//! sibling `serde_json` shim renders [`Value`] to JSON text and parses it
//! back.
//!
//! The data model follows serde's JSON conventions so that persisted
//! artifacts look exactly like ordinary serde_json output:
//!
//! * structs and struct variants serialize to maps;
//! * unit enum variants serialize to strings;
//! * newtype variants serialize to `{"Variant": value}`;
//! * sequences serialize to arrays, numbers to f64.

pub use serde_derive::{Deserialize, Serialize};

/// An owned, JSON-shaped value — the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the string content when the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the elements when the value is an array.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key when the value is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Views a single-entry object as an externally tagged enum payload.
    pub fn as_tagged(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Map(entries) if entries.len() == 1 => {
                Some((entries[0].0.as_str(), &entries[0].1))
            }
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error carrying the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Converts a value into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into the data model.
    fn serialize(&self) -> Value;
}

/// Reconstructs a value from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes from the data model.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Fetches a named struct field from a map value (derive helper).
pub fn map_field<'a>(v: &'a Value, key: &str, ty: &str) -> Result<&'a Value, Error> {
    v.get(key)
        .ok_or_else(|| Error::custom(format!("missing field `{key}` for `{ty}`")))
}

/// Fetches an element of a sequence value (derive helper).
pub fn seq_item<'a>(v: &'a Value, index: usize, ty: &str) -> Result<&'a Value, Error> {
    v.as_seq()
        .and_then(|s| s.get(index))
        .ok_or_else(|| Error::custom(format!("missing element {index} for `{ty}`")))
}

// ------------------------------------------------------------ primitives

macro_rules! impl_num {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => Ok(*n as $ty),
                    other => Err(Error::custom(format!(
                        "expected a number for {}, found {other:?}",
                        stringify!($ty)
                    ))),
                }
            }
        }
    )*};
}

impl_num!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected a bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected a string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Deserialize for &'static str {
    /// Deserializes by leaking the parsed string. Only static metadata
    /// structs (dataset specs) carry `&'static str` fields, and they are
    /// deserialized at most a handful of times per process.
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::custom(format!("expected a string, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!("expected an array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let items = v.as_seq().ok_or_else(|| {
                    Error::custom(format!("expected a tuple array, found {v:?}"))
                })?;
                Ok(($($name::deserialize(
                    items.get($idx).ok_or_else(|| {
                        Error::custom(format!("missing tuple element {}", $idx))
                    })?,
                )?,)+))
            }
        }
    )*};
}

impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
