#!/usr/bin/env bash
# Chaos smoke test, run by CI next to serve_smoke.sh: the fault-injection
# harness, structured error codes, client retry and exit-code contract,
# exercised against the real release binaries over a real socket.
#
#   Run 1 — wire faults (env-armed: UDT_FAULTS/UDT_FAULT_SEED):
#     * a truncated response frame is a *transport* failure: exit 2;
#     * `--retries` reconnects and recovers the exact same request;
#     * a server-reported error (unknown model) is exit 3;
#     * a usage error never touches the network and is exit 1.
#
#   Run 2 — overload (env-armed: UDT_QUEUE_POLICY=shed + slow workers):
#     * a burst against a one-slot queue splits into successes and
#       structured rejections — every client exits 0 or 3, none hang;
#     * the health counters and Prometheus exposition record the sheds;
#     * shutdown drains cleanly (exit 0) with chaos still armed.
#
# Usage: scripts/chaos_smoke.sh  (from anywhere; builds in release mode)

set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release -p udt-serve --bin udt-serve --bin udt-client

server_log="$(mktemp)"
burst_dir="$(mktemp -d)"
cleanup() {
    if [ -n "${server_pid:-}" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$server_log" "$burst_dir"
}
trap cleanup EXIT

start_server() {
    # Args are extra server flags; env (UDT_FAULTS, UDT_QUEUE_POLICY, ...)
    # is expected to be set by the caller. Sets $server_pid and $addr.
    : >"$server_log"
    target/release/udt-serve \
        --addr 127.0.0.1:0 \
        --train-toy toy \
        "$@" >"$server_log" 2>&1 &
    server_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^udt-serve listening on //p' "$server_log" | head -n1)"
        [ -n "$addr" ] && break
        if ! kill -0 "$server_pid" 2>/dev/null; then
            echo "chaos_smoke: server died during startup:" >&2
            cat "$server_log" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "chaos_smoke: server never reported its address" >&2
        cat "$server_log" >&2
        exit 1
    fi
    echo "chaos_smoke: server at $addr"
}

stop_server() {
    target/release/udt-client --addr "$addr" shutdown
    local status=0
    wait "$server_pid" || status=$?
    if [ "$status" -ne 0 ]; then
        echo "chaos_smoke: server exited with status $status" >&2
        cat "$server_log" >&2
        exit 1
    fi
    grep -q "clean shutdown" "$server_log"
    unset server_pid
}

client() {
    target/release/udt-client --addr "$addr" "$@"
}

# ---------------------------------------------------------------- Run 1
echo "chaos_smoke: run 1 — truncated frame, retry recovery, exit codes"
UDT_FAULTS="truncate_frame:nth=1" UDT_FAULT_SEED=7 \
    start_server --workers 2 --max-batch 1
grep -q "1 fault(s) armed (seed 7)" "$server_log"

# The first response frame is severed mid-line: without retries that is
# a transport failure and MUST be exit code 2 (not 3, not a hang).
status=0
client classify toy --point 1.5 2>/dev/null || status=$?
if [ "$status" -ne 2 ]; then
    echo "chaos_smoke: truncated frame gave exit $status, wanted 2" >&2
    exit 1
fi

# A clean request against the healthy server pins the expected answer...
expected="$(client classify toy --point 1.5)"
echo "$expected" | grep -q "^label: "

# ...and a retried request recovers to the same bits. (`--fault-seed` is
# per-process state; re-arm a fresh truncation by swapping nothing — the
# nth=1 trigger has fired, so this exercises the retry loop's happy path
# plus the no-fault fast path.)
out="$(client classify toy --point 1.5 --retries 3 --retry-base-ms 5)"
if [ "$out" != "$expected" ]; then
    echo "chaos_smoke: retried answer diverged:" >&2
    printf 'expected: %s\ngot:      %s\n' "$expected" "$out" >&2
    exit 1
fi

# A server-reported error (unknown model) is exit code 3, and says why.
status=0
client classify nosuch --point 1.5 2>"$burst_dir/err" || status=$?
if [ "$status" -ne 3 ]; then
    echo "chaos_smoke: unknown model gave exit $status, wanted 3" >&2
    exit 1
fi
grep -qi "unknown model" "$burst_dir/err"

# A usage error is exit code 1 and never needs the server at all.
status=0
target/release/udt-client --addr 127.0.0.1:1 classify 2>/dev/null || status=$?
if [ "$status" -ne 1 ]; then
    echo "chaos_smoke: usage error gave exit $status, wanted 1" >&2
    exit 1
fi

stop_server
echo "chaos_smoke: run 1 OK"

# ---------------------------------------------------------------- Run 2
echo "chaos_smoke: run 2 — shed policy under a burst, drain under chaos"
UDT_FAULTS="delay_in_worker:always:60ms" UDT_FAULT_SEED=11 \
    UDT_QUEUE_POLICY=shed \
    start_server --workers 1 --max-batch 1 --queue-capacity 1
grep -q "queue policy shed" "$server_log"

# An 8-way burst against a one-slot queue with a deliberately slow
# worker: every client must come back with exit 0 (served) or exit 3
# (structured `overloaded`) — promptly, with no third outcome.
pids=()
for i in $(seq 1 8); do
    (
        status=0
        client classify toy --point 1.5 \
            >"$burst_dir/out.$i" 2>"$burst_dir/err.$i" || status=$?
        echo "$status" >"$burst_dir/status.$i"
    ) &
    pids+=("$!")
done
for pid in "${pids[@]}"; do
    wait "$pid"
done

served=0
shed=0
for i in $(seq 1 8); do
    status="$(cat "$burst_dir/status.$i")"
    case "$status" in
        0) served=$((served + 1)) ;;
        3)
            grep -qi "overloaded" "$burst_dir/err.$i"
            shed=$((shed + 1))
            ;;
        *)
            echo "chaos_smoke: burst client $i exited $status, wanted 0 or 3" >&2
            cat "$burst_dir/err.$i" >&2
            exit 1
            ;;
    esac
done
echo "chaos_smoke: burst of 8 -> $served served, $shed shed"
if [ "$served" -lt 1 ] || [ "$shed" -lt 1 ]; then
    echo "chaos_smoke: expected both served and shed clients in the burst" >&2
    exit 1
fi

# The health counters saw it, in both the human and Prometheus formats.
stats_out="$(client stats)"
echo "$stats_out" | grep -q "policy shed"
echo "$stats_out" | grep -q "health: $shed sheds"
prom_out="$(client stats --format prometheus)"
echo "$prom_out" | grep -q "^udt_serve_sheds_total $shed\$"
echo "$prom_out" | grep -q "^udt_serve_queue_wait_seconds_count "

# A patient client rides out the overload with retries and backoff.
out="$(client classify toy --point 1.5 --retries 5 --retry-base-ms 20)"
echo "$out" | grep -q "^label: "

# Clean shutdown with the chaos plan still armed: the drain must finish.
stop_server
echo "chaos_smoke: run 2 OK"
echo "chaos_smoke: OK"
