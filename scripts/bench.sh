#!/usr/bin/env bash
# Runs the split-search, classification, partition-traffic, serving and
# thread-scaling benchmarks and writes the measurement trajectories to
# BENCH_split.json, BENCH_classify.json, BENCH_partition.json,
# BENCH_serve.json and BENCH_scaling.json at the repository root.
#
# The criterion shim (shims/criterion) emits one JSON record per
# benchmark when CRITERION_JSON names a file (under a "host" header
# recording cpu count / arch / detected SIMD features); this script
# points it at the respective output file and prints the headline
# numbers afterwards: naive-vs-columnar and scalar-vs-simd-kernel for
# split search, single-vs-batch for classification, owned-vs-view
# wall-clock + bytes-allocated for partitioning, and batched-vs-single-
# request socket throughput for serving.
#
# Usage: scripts/bench.sh [extra cargo bench args...]

set -euo pipefail

cd "$(dirname "$0")/.."

# Absolute paths: cargo runs bench binaries with the package directory as
# their working directory.
split_out="$(pwd)/BENCH_split.json"
classify_out="$(pwd)/BENCH_classify.json"
partition_out="$(pwd)/BENCH_partition.json"
serve_out="$(pwd)/BENCH_serve.json"
scaling_out="$(pwd)/BENCH_scaling.json"
CRITERION_JSON="$split_out" cargo bench -p udt-bench --bench split_algorithms "$@"
CRITERION_JSON="$classify_out" cargo bench -p udt-bench --bench classify_throughput "$@"
CRITERION_JSON="$partition_out" cargo bench -p udt-bench --bench partition "$@"
CRITERION_JSON="$serve_out" cargo bench -p udt-bench --bench serve "$@"
CRITERION_JSON="$scaling_out" cargo bench -p udt-bench --bench scaling "$@"

echo
echo "== $split_out =="
python3 - "$split_out" <<'EOF'
import json
import sys

data = json.load(open(sys.argv[1]))
host = data.get("host", {})
results = data["results"]
if host:
    feats = ",".join(host.get("simd_features", [])) or "none"
    print(f"host: {host.get('num_cpus')} cpus, {host.get('arch')}, simd: {feats}")
by_key = {(r["group"], r["bench"]): r["median_ns"] for r in results}

def speedup(group, naive, fast):
    a = by_key.get((group, naive))
    b = by_key.get((group, fast))
    if a and b:
        print(f"{group}: {naive} / {fast} = {a / b:.2f}x")

speedup("node_search_step", "es_naive_rebuild", "es_columnar")
speedup("node_search_step", "exhaustive_naive_rebuild", "exhaustive_columnar")
speedup("node_search_step", "es_columnar", "es_columnar_simd")
speedup("node_search_step", "es_columnar", "es_columnar_simd_f32")
speedup("score_kernel", "scalar_f64", "simd_f64")
speedup("score_kernel", "scalar_f64", "simd_f32")
speedup("columnar_vs_naive", "udt_es_naive_rebuild", "udt_es_columnar")
speedup("columnar_vs_naive", "udt_exhaustive_naive_rebuild", "udt_exhaustive_columnar")
EOF

echo
echo "== $classify_out =="
python3 - "$classify_out" <<'EOF'
import json
import sys

results = json.load(open(sys.argv[1]))["results"]
by_key = {(r["group"], r["bench"]): r["median_ns"] for r in results}

def speedup(group, single, batch):
    a = by_key.get((group, single))
    b = by_key.get((group, batch))
    if a and b:
        print(f"{group}: {single} / {batch} = {a / b:.2f}x batch throughput")

speedup("classify_throughput", "single_uncertain", "batch_uncertain")
speedup("classify_throughput", "single_point", "batch_point")
EOF

echo
echo "== $partition_out =="
python3 - "$partition_out" <<'EOF'
import json
import sys

results = json.load(open(sys.argv[1]))["results"]
by_bench = {r["bench"]: r for r in results if r["group"] == "partition_traffic"}

for depth in ("04", "08", "12"):
    owned = by_bench.get(f"depth{depth}_owned")
    view = by_bench.get(f"depth{depth}_view")
    if not owned or not view:
        continue
    line = f"depth {int(depth)}: "
    ob, vb = owned.get("throughput_bytes"), view.get("throughput_bytes")
    if ob and vb:
        line += f"partition bytes owned/view = {ob}/{vb} = {ob / vb:.2f}x"
    if owned["median_ns"] and view["median_ns"]:
        line += f", wall-clock owned/view = {owned['median_ns'] / view['median_ns']:.2f}x"
    print(line)
EOF

echo
echo "== $serve_out =="
python3 - "$serve_out" <<'EOF'
import json
import sys

results = json.load(open(sys.argv[1]))["results"]
by_key = {(r["group"], r["bench"]): r["median_ns"] for r in results}

def speedup(group, single, batch):
    a = by_key.get((group, single))
    b = by_key.get((group, batch))
    if a and b:
        print(f"{group}: {single} / {batch} = {a / b:.2f}x micro-batched throughput")

speedup("serve_throughput", "single_uncertain", "batch_uncertain")
speedup("serve_throughput", "single_point", "batch_point")

direct = by_key.get(("serve_failover", "direct_point"))
replica = by_key.get(("serve_failover", "replica_set_point"))
if direct and replica:
    overhead = (replica / direct - 1.0) * 100.0
    print(f"serve_failover: replica_set_point / direct_point = {overhead:+.2f}% breaker overhead")
EOF

echo
echo "== $scaling_out =="
python3 - "$scaling_out" <<'EOF'
import json
import os
import sys

results = json.load(open(sys.argv[1]))["results"]
by_key = {(r["group"], r["bench"]): r["median_ns"] for r in results}

cores = os.cpu_count() or 1
print(f"host cores: {cores} (speedup is bounded by the host; ~1x expected on 1 core)")
for group in ("scaling_build", "scaling_presort"):
    base = by_key.get((group, "threads01"))
    if not base:
        continue
    for t in (2, 4, 8):
        v = by_key.get((group, f"threads{t:02}"))
        if v:
            print(f"{group}: threads01 / threads{t:02} = {base / v:.2f}x")
EOF
