#!/usr/bin/env bash
# Runs the split-search benchmarks and writes the measurement trajectory
# to BENCH_split.json at the repository root.
#
# The criterion shim (shims/criterion) emits one JSON record per
# benchmark when CRITERION_JSON names a file; this script points it at
# BENCH_split.json and prints the naive-vs-columnar speedups afterwards.
#
# Usage: scripts/bench.sh [extra cargo bench args...]

set -euo pipefail

cd "$(dirname "$0")/.."

# Absolute path: cargo runs bench binaries with the package directory as
# their working directory.
out="$(pwd)/BENCH_split.json"
CRITERION_JSON="$out" cargo bench -p udt-bench --bench split_algorithms "$@"

echo
echo "== $out =="
python3 - "$out" <<'EOF'
import json
import sys

results = json.load(open(sys.argv[1]))
by_key = {(r["group"], r["bench"]): r["median_ns"] for r in results}

def speedup(group, naive, fast):
    a = by_key.get((group, naive))
    b = by_key.get((group, fast))
    if a and b:
        print(f"{group}: {naive} / {fast} = {a / b:.2f}x")

speedup("node_search_step", "es_naive_rebuild", "es_columnar")
speedup("node_search_step", "exhaustive_naive_rebuild", "exhaustive_columnar")
speedup("columnar_vs_naive", "udt_es_naive_rebuild", "udt_es_columnar")
speedup("columnar_vs_naive", "udt_exhaustive_naive_rebuild", "udt_exhaustive_columnar")
EOF
