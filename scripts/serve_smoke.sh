#!/usr/bin/env bash
# End-to-end serving smoke test, run by CI:
#
#   1. train a toy model and persist it (the quickstart example);
#   2. start `udt-serve` on an ephemeral loopback port, loading that
#      model file and additionally training an in-process toy model;
#   3. classify a certain (point) tuple and an uncertain (uniform-pdf)
#      tuple over the socket with `udt-client`;
#   4. hot-swap the disk model and check `stats` reflects the bump;
#   5. shut the server down cleanly and require a zero exit status.
#
# Usage: scripts/serve_smoke.sh  (from anywhere; builds in release mode)

set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release -p udt-serve --bin udt-serve --bin udt-client
cargo run --release --example quickstart >/dev/null
test -s results/table1_model.json

server_log="$(mktemp)"
cleanup() {
    if [ -n "${server_pid:-}" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill "$server_pid" 2>/dev/null || true
    fi
    rm -f "$server_log"
}
trap cleanup EXIT

# Port 0: the server prints the ephemeral address on stdout.
target/release/udt-serve \
    --addr 127.0.0.1:0 \
    --model disk=results/table1_model.json \
    --train-toy toy \
    --workers 2 >"$server_log" 2>&1 &
server_pid=$!

addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^udt-serve listening on //p' "$server_log" | head -n1)"
    [ -n "$addr" ] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "serve_smoke: server died during startup:" >&2
        cat "$server_log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve_smoke: server never reported its address" >&2
    cat "$server_log" >&2
    exit 1
fi
echo "serve_smoke: server at $addr"

client() {
    target/release/udt-client --addr "$addr" "$@"
}

# A certain point tuple and an uncertain uniform-pdf tuple, against both
# the disk-loaded and the in-process-trained model. (Outputs are captured
# before grepping: grep -q on a live pipe would close it early and kill
# the client with a broken pipe.)
out="$(client classify disk --point 1.5)"
echo "$out"
echo "$out" | grep -q "^label: "
out="$(client classify toy --point -2.0)"
echo "$out" | grep -q "^label: "
out="$(client classify toy --uniform -2.5,2,20)"
echo "$out"
echo "$out" | grep -q "^label: "

# Stats must list both models and the traffic we just generated.
stats_out="$(client stats)"
echo "$stats_out"
echo "$stats_out" | grep -q "model disk (gen 1)"
echo "$stats_out" | grep -q "model toy (gen 1)"
echo "$stats_out" | grep -q "traffic toy: 2 requests"

# The same counters render as a Prometheus text exposition.
prom_out="$(client stats --format prometheus)"
echo "$prom_out" | head -n 4
echo "$prom_out" | grep -q '^udt_serve_requests_total{model="toy"} 2$'
echo "$prom_out" | grep -q '^udt_serve_model_generation{model="disk"} 1$'
echo "$prom_out" | grep -q 'udt_serve_request_latency_seconds_bucket{model="toy",le="+Inf"} 2'

# Hot-swap the disk model in place and verify the generation bump.
out="$(client swap disk results/table1_model.json)"
echo "$out" | grep -q "gen 2"
stats_out="$(client stats)"
echo "$stats_out" | grep -q "model disk (gen 2)"
out="$(client classify disk --uniform -2.5,2)"
echo "$out" | grep -q "^label: "

# Clean shutdown: the client call succeeds and the server process exits 0.
# (`|| status=$?` keeps set -e from aborting before the diagnostics run.)
client shutdown
status=0
wait "$server_pid" || status=$?
if [ "$status" -ne 0 ]; then
    echo "serve_smoke: server exited with status $status" >&2
    cat "$server_log" >&2
    exit 1
fi
grep -q "clean shutdown" "$server_log"
echo "serve_smoke: OK"
