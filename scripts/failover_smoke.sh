#!/usr/bin/env bash
# Replica-set failover smoke test, run by CI next to chaos_smoke.sh:
# two real replicas on ephemeral ports, a classify stream driven through
# the ReplicaSet client, and a SIGKILL of the preferred replica
# mid-stream. The contract:
#
#   * the client exits 0 — the stream survives the kill;
#   * `replies: N/N` — zero lost or duplicated replies;
#   * `failovers:` is nonzero — the rerouting actually happened;
#   * the survivor still answers `health` ready and serves the exact
#     same distribution as before the kill.
#
# Usage: scripts/failover_smoke.sh  (from anywhere; builds release mode)

set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release -p udt-serve --bin udt-serve --bin udt-client

log_a="$(mktemp)"
log_b="$(mktemp)"
out_dir="$(mktemp -d)"
cleanup() {
    for pid in "${pid_a:-}" "${pid_b:-}"; do
        if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$log_a" "$log_b" "$out_dir"
}
trap cleanup EXIT

wait_for_addr() {
    # $1 = log file, $2 = pid; prints the address.
    local addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^udt-serve listening on //p' "$1" | head -n1)"
        [ -n "$addr" ] && break
        if ! kill -0 "$2" 2>/dev/null; then
            echo "failover_smoke: server died during startup:" >&2
            cat "$1" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "failover_smoke: server never reported its address" >&2
        cat "$1" >&2
        exit 1
    fi
    echo "$addr"
}

# Replica A: the preferred endpoint, slowed to ~2 ms per classify so the
# stream is still in flight when the SIGKILL lands. Replica B: clean.
UDT_FAULTS="delay_in_worker:always:2ms" UDT_FAULT_SEED=3 \
    target/release/udt-serve --addr 127.0.0.1:0 --train-toy toy \
    --workers 1 --max-batch 1 >"$log_a" 2>&1 &
pid_a=$!
target/release/udt-serve --addr 127.0.0.1:0 --train-toy toy \
    >"$log_b" 2>&1 &
pid_b=$!
addr_a="$(wait_for_addr "$log_a" "$pid_a")"
addr_b="$(wait_for_addr "$log_b" "$pid_b")"
echo "failover_smoke: replica A at $addr_a (slowed), replica B at $addr_b"

# Pin the expected answer against the survivor-to-be.
expected_label="$(target/release/udt-client --addr "$addr_b" classify toy --point 1.5 \
    | sed -n 's/^label: //p')"
expected_dist="$(target/release/udt-client --addr "$addr_b" classify toy --point 1.5 \
    | grep '^P(class ')"

# Stream classifies through the replica set; kill A mid-stream.
N=4000
(
    status=0
    target/release/udt-client \
        --replicas "$addr_a,$addr_b" --timeout-ms 5000 \
        classify toy --point 1.5 --repeat "$N" \
        >"$out_dir/stream.out" 2>"$out_dir/stream.err" || status=$?
    echo "$status" >"$out_dir/stream.status"
) &
stream_pid=$!

sleep 0.5
if ! kill -0 "$pid_a" 2>/dev/null; then
    echo "failover_smoke: replica A died before the kill?" >&2
    exit 1
fi
kill -9 "$pid_a"
wait "$pid_a" 2>/dev/null || true
unset pid_a
echo "failover_smoke: replica A SIGKILLed mid-stream"

wait "$stream_pid"
status="$(cat "$out_dir/stream.status")"
if [ "$status" -ne 0 ]; then
    echo "failover_smoke: stream client exited $status, wanted 0" >&2
    cat "$out_dir/stream.err" >&2
    exit 1
fi

# Zero lost or duplicated replies, and the rerouting is visible.
grep -q "^replies: $N/$N\$" "$out_dir/stream.out" || {
    echo "failover_smoke: reply accounting is off:" >&2
    cat "$out_dir/stream.out" >&2
    exit 1
}
failovers="$(sed -n 's/^failovers: //p' "$out_dir/stream.out")"
if [ -z "$failovers" ] || [ "$failovers" -lt 1 ]; then
    echo "failover_smoke: expected a nonzero failover count, got '$failovers'" >&2
    cat "$out_dir/stream.out" >&2
    exit 1
fi
echo "failover_smoke: $N/$N replies, $failovers failover(s)"

# The final answer matches the survivor's direct answer, bit for bit.
grep -q "^label: $expected_label\$" "$out_dir/stream.out"
if [ "$(grep '^P(class ' "$out_dir/stream.out")" != "$expected_dist" ]; then
    echo "failover_smoke: post-failover distribution diverged" >&2
    exit 1
fi

# The survivor is still ready (exit 0), and a probe through the replica
# set — dead endpoint first — also lands on it.
target/release/udt-client --addr "$addr_b" health >"$out_dir/health.out"
grep -q "^ready: true\$" "$out_dir/health.out"
target/release/udt-client --replicas "$addr_a,$addr_b" --timeout-ms 2000 health \
    >/dev/null

# Clean shutdown of the survivor.
target/release/udt-client --addr "$addr_b" shutdown >/dev/null
status=0
wait "$pid_b" || status=$?
unset pid_b
if [ "$status" -ne 0 ]; then
    echo "failover_smoke: survivor exited $status" >&2
    cat "$log_b" >&2
    exit 1
fi
grep -q "clean shutdown" "$log_b"
echo "failover_smoke: OK"
