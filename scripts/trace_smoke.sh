#!/usr/bin/env bash
# Chrome-trace export smoke test, run by CI:
#
#   1. run a UDT-ES build with tracing enabled through the builder API
#      (`profile_split --trace`) and through the `UDT_TRACE` /
#      `UDT_TRACE_DEPTH` environment knobs;
#   2. validate both trace files with `validate_trace`: well-formed
#      JSON, complete `X` events only, spans well-nested per thread —
#      i.e. the file Perfetto will actually load.
#
# Usage: scripts/trace_smoke.sh  (from anywhere; builds in release mode)

set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release -p udt-bench --bin profile_split --bin validate_trace

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

# Builder API path: --trace goes through `TreeBuilder::with_trace`.
target/release/profile_split 20 --trace "$out/api.json" >/dev/null
test -s "$out/api.json"
target/release/validate_trace "$out/api.json"

# Environment path: every build sees `UDT_TRACE`; the deepest node
# spans are gated off by `UDT_TRACE_DEPTH`.
UDT_TRACE="$out/env.json" UDT_TRACE_DEPTH=3 \
    target/release/profile_split 10 >/dev/null
test -s "$out/env.json"
target/release/validate_trace "$out/env.json"

echo "trace smoke OK"
