//! Smoke tests of the experiment harness: every table/figure experiment
//! runs end to end at a tiny scale and produces rows with the qualitative
//! shape the paper reports.

use udt_eval::experiments::settings::Settings;
use udt_eval::experiments::{ablation, efficiency, fig4, sweeps, table2};

fn smoke() -> Settings {
    Settings {
        scale: 0.2,
        s: 10,
        folds: 3,
        seed: 41,
        datasets: vec!["Iris".to_string()],
    }
}

#[test]
fn table2_inventory_matches_published_shapes() {
    let rows = table2::run(&Settings::smoke()).unwrap();
    assert!(!rows.is_empty());
    for r in &rows {
        assert!(r.generated_tuples > 0);
        assert!(r.attributes > 0 && r.classes >= 2);
        assert!(r.generated_tuples <= r.published_tuples);
    }
}

#[test]
fn efficiency_experiment_reproduces_fig6_and_fig7_shape() {
    let rows = efficiency::run(&smoke(), &[]).unwrap();
    assert_eq!(rows.len(), 6);
    let get = |name: &str| rows.iter().find(|r| r.algorithm == name).unwrap();
    // Fig. 7 shape: AVG < pruned algorithms < UDT in entropy-like work.
    assert!(get("AVG").entropy_like_calculations < get("UDT").entropy_like_calculations);
    assert!(get("UDT-GP").entropy_like_calculations <= get("UDT").entropy_like_calculations);
    assert!(get("UDT-ES").entropy_like_calculations <= get("UDT").entropy_like_calculations);
    // All algorithms build usable trees.
    assert!(rows.iter().all(|r| r.tree_size >= 1));
    // Text renderings exist for both figures.
    assert!(efficiency::render_time(&rows).contains("Fig. 6"));
    assert!(efficiency::render_pruning(&rows).contains("Fig. 7"));
}

#[test]
fn sweep_s_shows_work_growing_with_s() {
    let rows = sweeps::sweep_s(&smoke(), &[8, 24, 48]).unwrap();
    assert_eq!(rows.len(), 3);
    // Fig. 8 shape: entropy-like work grows with s.
    assert!(rows[0].entropy_like_calculations < rows[2].entropy_like_calculations);
}

#[test]
fn sweep_w_runs_for_every_width() {
    let rows = sweeps::sweep_w(&smoke(), &[0.05, 0.3]).unwrap();
    assert_eq!(rows.len(), 2);
    assert!(rows.iter().all(|r| r.entropy_like_calculations > 0));
}

#[test]
fn fig4_grid_has_its_best_accuracy_at_positive_w() {
    let mut settings = smoke();
    settings.scale = 0.35;
    settings.s = 12;
    let result = fig4::run(&settings, "Iris").unwrap();
    // Fig. 4 shape: some uncertainty-modelling width w > 0 does at least as
    // well as the AVG baseline (w = 0) for the noisier curves.
    let noisy_u = fig4::U_VALUES[fig4::U_VALUES.len() - 1];
    let avg_at_noisy_u = result
        .points
        .iter()
        .find(|p| p.u == noisy_u && p.w == 0.0)
        .unwrap()
        .accuracy;
    let best_udt_at_noisy_u = result
        .points
        .iter()
        .filter(|p| p.u == noisy_u && p.w > 0.0)
        .map(|p| p.accuracy)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        best_udt_at_noisy_u + 0.02 >= avg_at_noisy_u,
        "best UDT accuracy {best_udt_at_noisy_u:.3} should not trail AVG {avg_at_noisy_u:.3}"
    );
}

#[test]
fn measure_ablation_produces_comparable_accuracies() {
    let rows = ablation::run(&smoke()).unwrap();
    assert_eq!(rows.len(), 6);
    // Every measure yields a working classifier (well above chance for the
    // 3-class Iris stand-in).
    assert!(rows.iter().all(|r| r.accuracy > 0.4), "{rows:?}");
}
