//! Integration test reproducing the paper's worked example (Table 1,
//! Figs. 1–3): Averaging cannot separate the six example tuples, the
//! distribution-based tree classifies them all correctly, and the
//! classification of an uncertain test tuple is a proper distribution that
//! splits 30 / 70 at the root.

use udt_data::toy;
use udt_eval::accuracy::evaluate;
use udt_tree::{Algorithm, Node, TreeBuilder, UdtConfig};

fn build(algorithm: Algorithm) -> udt_tree::BuildReport {
    TreeBuilder::new(
        UdtConfig::new(algorithm)
            .with_postprune(false)
            .with_min_node_weight(0.0),
    )
    .build(&toy::table1_dataset().expect("example data"))
    .expect("build succeeds")
}

#[test]
fn averaging_is_stuck_at_two_thirds_accuracy() {
    // §4.1: with every mean equal to ±2 there is only one way to partition
    // the six tuples, and at least two of them are misclassified.
    let data = toy::table1_dataset().unwrap();
    let report = build(Algorithm::Avg);
    let result = evaluate(&report.tree, &data);
    assert!(result.accuracy() <= 2.0 / 3.0 + 1e-9);
    // The Averaging tree is the stump of Fig. 2a: a root with two leaves.
    assert!(report.tree.size() <= 3);
}

#[test]
fn distribution_based_tree_classifies_every_example_tuple() {
    // §4.2: using the full pdfs, all six training tuples are classified
    // correctly (the Fig. 3 tree before post-pruning).
    let data = toy::table1_dataset().unwrap();
    for algorithm in [Algorithm::Udt, Algorithm::UdtEs] {
        let report = build(algorithm);
        let result = evaluate(&report.tree, &data);
        assert_eq!(result.accuracy(), 1.0, "{algorithm:?}");
        assert!(
            report.tree.size() > 3,
            "{algorithm:?} uses more than a stump"
        );
    }
}

#[test]
fn every_leaf_distribution_is_normalised() {
    let report = build(Algorithm::Udt);
    fn check(node: &Node) {
        match node {
            Node::Leaf { distribution, .. } => {
                assert!((distribution.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            }
            Node::Split { left, right, .. } => {
                check(left);
                check(right);
            }
            Node::CategoricalSplit { children, .. } => children.iter().for_each(check),
        }
    }
    let root = report.tree.root_node();
    check(&root);
}

#[test]
fn fig1_test_tuple_classification_is_a_distribution() {
    let data = toy::table1_dataset().unwrap();
    let tree = build(Algorithm::UdtEs).tree;
    let test = toy::fig1_test_tuple().unwrap();
    let dist = tree.predict_distribution(&test).expect("tree has classes");
    assert_eq!(dist.len(), data.n_classes());
    assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    assert!(dist.iter().all(|&p| (0.0..=1.0).contains(&p)));
    // The root weight split of Fig. 1: 30 % of the tuple's mass lies at or
    // below −1.
    let pdf = test.value(0).as_numeric().unwrap();
    assert!((pdf.prob_le(-1.0) - 0.3).abs() < 1e-12);
}

#[test]
fn post_pruning_shrinks_the_example_tree_without_destroying_it() {
    let data = toy::table1_dataset().unwrap();
    let unpruned = build(Algorithm::Udt);
    let pruned = TreeBuilder::new(
        UdtConfig::new(Algorithm::Udt)
            .with_postprune(true)
            .with_min_node_weight(0.0),
    )
    .build(&data)
    .unwrap();
    assert!(pruned.tree.size() <= unpruned.tree.size());
    assert!(pruned.tree.size() >= 1);
}
