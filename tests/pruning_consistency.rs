//! Cross-crate integration tests of the paper's §5 claims: all pruning
//! algorithms build the same trees as exhaustive UDT on realistic
//! (generated + injected) data, while doing progressively less work.

use udt_data::repository::by_name;
use udt_data::uncertainty::{inject_uncertainty, UncertaintySpec};
use udt_prob::ErrorModel;
use udt_tree::{Algorithm, TreeBuilder, UdtConfig};

fn uncertain_iris(s: usize) -> udt_data::Dataset {
    let point = by_name("Iris").unwrap().generate(0.4).unwrap();
    inject_uncertainty(
        &point,
        &UncertaintySpec {
            w: 0.10,
            s,
            model: ErrorModel::Gaussian,
        },
    )
    .unwrap()
}

#[test]
fn pruned_algorithms_build_identical_trees_on_injected_data() {
    let data = uncertain_iris(24);
    let reference = TreeBuilder::new(UdtConfig::new(Algorithm::Udt))
        .build(&data)
        .unwrap();
    for algorithm in [
        Algorithm::UdtBp,
        Algorithm::UdtLp,
        Algorithm::UdtGp,
        Algorithm::UdtEs,
    ] {
        let report = TreeBuilder::new(UdtConfig::new(algorithm))
            .build(&data)
            .unwrap();
        assert_eq!(
            report.tree, reference.tree,
            "{algorithm:?} must build the same tree as exhaustive UDT"
        );
    }
}

#[test]
fn work_decreases_along_the_papers_algorithm_ordering() {
    let data = uncertain_iris(32);
    let mut calcs = Vec::new();
    for algorithm in [
        Algorithm::Udt,
        Algorithm::UdtBp,
        Algorithm::UdtLp,
        Algorithm::UdtGp,
        Algorithm::UdtEs,
    ] {
        let report = TreeBuilder::new(UdtConfig::new(algorithm))
            .build(&data)
            .unwrap();
        calcs.push((algorithm, report.stats.entropy_like_calculations()));
    }
    let udt = calcs[0].1;
    // Every pruned algorithm does less entropy-like work than exhaustive
    // UDT on this Gaussian workload (Fig. 7's headline), and the global
    // threshold never does more than the local one.
    for &(algorithm, c) in &calcs[1..] {
        assert!(c < udt, "{algorithm:?}: {c} should be below UDT's {udt}");
    }
    let lp = calcs[2].1;
    let gp = calcs[3].1;
    assert!(gp <= lp, "UDT-GP ({gp}) should not exceed UDT-LP ({lp})");
}

#[test]
fn avg_is_cheapest_but_less_informed() {
    let data = uncertain_iris(32);
    let avg = TreeBuilder::new(UdtConfig::new(Algorithm::Avg))
        .build(&data)
        .unwrap();
    let es = TreeBuilder::new(UdtConfig::new(Algorithm::UdtEs))
        .build(&data)
        .unwrap();
    // AVG looks at one value per pdf, so its candidate pool is s times
    // smaller (§4.2) and its work strictly lower.
    assert!(avg.stats.candidate_points < es.stats.candidate_points);
    assert!(avg.stats.entropy_like_calculations() < es.stats.entropy_like_calculations());
}

#[test]
fn uniform_error_model_profits_from_the_theorem3_hint() {
    // With uniform pdfs, Theorem 3 lets UDT-BP consider end points only.
    let point = by_name("Vehicle").unwrap().generate(0.1).unwrap();
    let data = inject_uncertainty(
        &point,
        &UncertaintySpec {
            w: 0.10,
            s: 20,
            model: ErrorModel::Uniform,
        },
    )
    .unwrap();
    let plain = TreeBuilder::new(UdtConfig::new(Algorithm::UdtBp))
        .build(&data)
        .unwrap();
    let hinted = TreeBuilder::new(UdtConfig::new(Algorithm::UdtBp).with_uniform_pdf_hint(true))
        .build(&data)
        .unwrap();
    assert!(
        hinted.stats.entropy_like_calculations() <= plain.stats.entropy_like_calculations(),
        "the hint must not increase the work"
    );
}
