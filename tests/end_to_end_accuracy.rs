//! End-to-end accuracy integration tests: the paper's Table 3 and Fig. 4
//! claims, checked in *shape* on the scaled synthetic workloads.

use udt_data::noise::perturb;
use udt_data::repository::by_name;
use udt_data::uncertainty::{inject_uncertainty, UncertaintySpec};
use udt_eval::crossval::cross_validate;
use udt_eval::experiments::settings::Settings;
use udt_eval::experiments::table3;
use udt_prob::ErrorModel;
use udt_tree::{Algorithm, UdtConfig};

fn smoke() -> Settings {
    Settings {
        scale: 0.3,
        s: 20,
        folds: 4,
        seed: 13,
        datasets: vec!["Iris".to_string()],
    }
}

/// Table 3's headline claim: on noisy data whose error is modelled by the
/// injected uncertainty, the distribution-based tree is at least as
/// accurate as Averaging (and usually better).
#[test]
fn distribution_based_matches_or_beats_averaging_under_matched_noise() {
    let spec = by_name("Iris").unwrap();
    let clean = spec.generate(0.4).unwrap();
    // Perturb the point data (the "real" measurement error)…
    let noisy = perturb(&clean, 0.15, 5).unwrap();
    // …and model exactly that error as the injected uncertainty.
    let uncertain = inject_uncertainty(
        &noisy,
        &UncertaintySpec {
            w: 0.15,
            s: 40,
            model: ErrorModel::Gaussian,
        },
    )
    .unwrap();
    let avg = cross_validate(&uncertain, &UdtConfig::new(Algorithm::Avg), 5, 3, true).unwrap();
    let udt = cross_validate(&uncertain, &UdtConfig::new(Algorithm::UdtGp), 5, 3, true).unwrap();
    assert!(
        udt.pooled.accuracy() + 0.02 >= avg.pooled.accuracy(),
        "UDT {:.3} should not trail AVG {:.3} by more than noise",
        udt.pooled.accuracy(),
        avg.pooled.accuracy()
    );
}

/// The Table 3 experiment runs end to end at smoke scale and produces
/// plausible accuracies for every row.
#[test]
fn table3_smoke_run_produces_full_sweep() {
    let rows = table3::run(&smoke()).unwrap();
    assert_eq!(rows.len(), table3::W_VALUES.len());
    for r in &rows {
        assert!(
            r.avg_accuracy > 0.3,
            "AVG should beat chance, got {}",
            r.avg_accuracy
        );
        assert!(
            r.udt_accuracy > 0.3,
            "UDT should beat chance, got {}",
            r.udt_accuracy
        );
    }
    let summary = table3::summarise(&rows);
    assert_eq!(summary.len(), 1);
    assert!(summary[0].udt_best_accuracy >= summary[0].udt_accuracy - 1e-12);
}

/// The JapaneseVowel-style raw-measurement path: pdfs built from repeated
/// measurements carry usable information, so the distribution-based tree
/// reaches a sensible accuracy on held-out data.
#[test]
fn raw_measurement_dataset_is_learnable() {
    let data = udt_data::repository::japanese_vowel(0.25).unwrap();
    let cv = cross_validate(&data, &UdtConfig::new(Algorithm::UdtEs), 4, 17, true).unwrap();
    // 9 classes → chance is ~11 %; the classifier must do much better.
    assert!(
        cv.pooled.accuracy() > 0.5,
        "accuracy {:.3} barely above chance",
        cv.pooled.accuracy()
    );
}

/// The §4.4 shape: with artificial perturbation u and a matching modelled
/// width w, accuracy at w ≈ u is at least as good as accuracy with a badly
/// overestimated w.
#[test]
fn matched_uncertainty_width_is_not_worse_than_a_gross_overestimate() {
    let spec = by_name("Glass").unwrap();
    let clean = spec.generate(0.5).unwrap();
    let noisy = perturb(&clean, 0.10, 23).unwrap();
    let accuracy_at = |w: f64| {
        let data = inject_uncertainty(
            &noisy,
            &UncertaintySpec {
                w,
                s: 24,
                model: ErrorModel::Gaussian,
            },
        )
        .unwrap();
        cross_validate(&data, &UdtConfig::new(Algorithm::UdtGp), 4, 29, true)
            .unwrap()
            .pooled
            .accuracy()
    };
    let matched = accuracy_at(0.10);
    let overestimated = accuracy_at(0.60);
    // On the synthetic stand-in the classes are separable enough that even a
    // grossly overestimated width still classifies well, so the assertion is
    // on the *shape* only: the matched width must stay within a modest band
    // of the overestimate rather than collapse.
    assert!(
        matched + 0.10 >= overestimated,
        "matched-w accuracy {matched:.3} should not be clearly below overestimated-w {overestimated:.3}"
    );
}
