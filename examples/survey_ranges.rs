//! Survey answers given as ranges, plus an uncertain categorical attribute
//! (§1.3 and §7.2 of the paper).
//!
//! Respondents answer "how many hours of TV do you watch per week?" with a
//! range ("6–8 hours") rather than a number, and their favourite content
//! category is known only as a distribution inferred from viewing logs.
//! The task is to predict whether a respondent subscribes to a streaming
//! service. Ranges become uniform pdfs; the categorical attribute is an
//! uncertain discrete distribution — both handled natively by the
//! distribution-based tree.
//!
//! Run with: `cargo run --release -p udt-eval --example survey_ranges`

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use udt_data::{Attribute, Dataset, Schema, Tuple, UncertainValue};
use udt_eval::crossval::cross_validate;
use udt_prob::{DiscreteDist, SampledPdf};
use udt_tree::{Algorithm, UdtConfig};

/// Builds a uniform pdf over `[lo, hi]` with `s` sample points (a range
/// answer such as "6–8 hours").
fn range_answer(lo: f64, hi: f64, s: usize) -> UncertainValue {
    if hi <= lo {
        return UncertainValue::point(lo);
    }
    let points: Vec<f64> = (0..s)
        .map(|i| lo + (hi - lo) * i as f64 / (s - 1) as f64)
        .collect();
    UncertainValue::Numeric(SampledPdf::new(points, vec![1.0; s]).expect("valid pdf"))
}

fn main() {
    const CATEGORIES: usize = 4; // news, sport, drama, documentaries
    let schema = Schema::new(vec![
        Attribute::numerical("tv_hours_per_week"),
        Attribute::numerical("age"),
        Attribute::categorical("favourite_genre", CATEGORIES),
    ]);
    let mut data = Dataset::new(
        schema,
        vec!["no-subscription".to_string(), "subscription".to_string()],
    );

    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    for _ in 0..600 {
        // Ground truth: heavy drama/documentary watchers with more viewing
        // hours tend to subscribe.
        let hours: f64 = rng.gen_range(0.0..30.0);
        let age: f64 = rng.gen_range(16.0..80.0);
        let genre_pref = rng.gen_range(0..CATEGORIES);
        let subscribes =
            (hours > 12.0 && (genre_pref == 2 || genre_pref == 3)) || (hours > 22.0 && age < 35.0);

        // What the survey actually records: a coarse range for hours, the
        // exact age, and a noisy genre distribution from viewing logs.
        let bucket = 4.0;
        let lo = (hours / bucket).floor() * bucket;
        let mut genre_weights = vec![1.0; CATEGORIES];
        genre_weights[genre_pref] += 6.0;
        let tuple = Tuple::new(
            vec![
                range_answer(lo, lo + bucket, 20),
                UncertainValue::point(age),
                UncertainValue::Categorical(
                    DiscreteDist::new(genre_weights).expect("valid distribution"),
                ),
            ],
            usize::from(subscribes),
        );
        data.push(tuple).expect("tuple matches schema");
    }

    println!(
        "survey respondents: {}   subscribed: {}",
        data.len(),
        data.class_counts()[1]
    );

    for algorithm in [Algorithm::Avg, Algorithm::UdtGp] {
        let cv = cross_validate(&data, &UdtConfig::new(algorithm), 5, 3, true)
            .expect("cross validation succeeds");
        println!(
            "{:<7}  accuracy {:>6.2}%   mean tree size {:>5.1}   entropy calcs {}",
            algorithm.name(),
            cv.pooled.accuracy() * 100.0,
            cv.mean_tree_size,
            cv.stats.entropy_like_calculations(),
        );
    }
    println!(
        "\n(range answers are uniform pdfs — the quantisation-noise case of §4.3 —\n\
         and the favourite-genre attribute is an uncertain categorical value as in §7.2)"
    );
}
