//! Sensor calibration scenario (§1.1 of the paper): measurement error.
//!
//! A fleet of thermometers reports body temperatures with a known
//! calibration error (the paper's ±0.2 °C ear-thermometer example). The
//! readings are point values, but the error is well modelled by a Gaussian
//! whose width we control. This example shows the paper's central claim on
//! such data: modelling the measurement error as a pdf (the
//! Distribution-based approach) yields a more accurate classifier than
//! using the raw point readings (Averaging), and the gap grows with the
//! measurement noise.
//!
//! Run with: `cargo run --release -p udt-eval --example sensor_calibration`

use udt_data::noise::perturb;
use udt_data::synthetic::SyntheticSpec;
use udt_data::uncertainty::{inject_uncertainty, UncertaintySpec};
use udt_eval::crossval::cross_validate;
use udt_prob::ErrorModel;
use udt_tree::{Algorithm, UdtConfig};

fn main() {
    // A synthetic "patient triage" task: three numeric vitals, three
    // classes (healthy / feverish / severe), 400 patients.
    let spec = SyntheticSpec {
        name: "triage".to_string(),
        tuples: 400,
        attributes: 3,
        classes: 3,
        clusters_per_class: 2,
        cluster_spread: 0.06,
        integer_domain: false,
        range_width: 40.0, // e.g. temperatures 34–40 °C scaled
        seed: 7,
    };
    let clean = spec.generate().expect("generation succeeds");

    println!("measurement-noise sweep (5-fold cross validation):\n");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "noise u", "AVG", "UDT (w=u)", "gain"
    );
    for &u in &[0.05, 0.10, 0.20] {
        // The sensors add Gaussian noise of relative magnitude u.
        let noisy = perturb(&clean, u, 99).expect("perturbation succeeds");

        // Averaging: train directly on the noisy point readings.
        let avg = cross_validate(&noisy, &UdtConfig::new(Algorithm::Avg), 5, 1, true)
            .expect("cross validation succeeds");

        // Distribution-based: model the known calibration error as a
        // Gaussian pdf of width w = u around every reading (equation (2)
        // with no latent error), then train UDT-ES on the pdfs.
        let uncertain = inject_uncertainty(
            &noisy,
            &UncertaintySpec {
                w: u,
                s: 60,
                model: ErrorModel::Gaussian,
            },
        )
        .expect("uncertainty injection succeeds");
        let udt = cross_validate(&uncertain, &UdtConfig::new(Algorithm::UdtEs), 5, 1, true)
            .expect("cross validation succeeds");

        let a = avg.pooled.accuracy();
        let d = udt.pooled.accuracy();
        println!(
            "{:>9.0}% {:>11.2}% {:>11.2}% {:>+11.2}%",
            u * 100.0,
            a * 100.0,
            d * 100.0,
            (d - a) * 100.0
        );
    }
    println!("\n(the Distribution-based column models the sensor error explicitly;");
    println!(" the paper's §4.4 hypothesis predicts it matches or beats Averaging,");
    println!(" with the largest gains at higher noise levels)");
}
