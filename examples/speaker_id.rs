//! Speaker identification from repeated measurements (the paper's
//! "JapaneseVowel" scenario, §1.3 and §4.3).
//!
//! Each utterance yields 7–29 raw samples of every LPC coefficient. Rather
//! than averaging them away, the Distribution-based approach builds a pdf
//! per coefficient from the raw samples (a histogram) and trains the tree
//! on those pdfs. This example compares that against Averaging on a
//! synthetic 9-speaker data set with the same shape as the paper's.
//!
//! Run with: `cargo run --release -p udt-eval --example speaker_id`

use udt_data::repository::japanese_vowel;
use udt_data::split::train_test_split;
use udt_eval::accuracy::evaluate;
use udt_tree::{Algorithm, TreeBuilder, UdtConfig};

fn main() {
    // A 9-speaker, 12-coefficient data set with 7–29 raw samples per value
    // (scale 0.5 ≈ 320 utterances, enough to be interesting and quick).
    let data = japanese_vowel(0.5).expect("generation succeeds");
    println!(
        "speakers: {}   utterances: {}   coefficients: {}",
        data.n_classes(),
        data.len(),
        data.n_attributes()
    );

    // The paper's protocol for this data set: a provided train/test split.
    let tt = train_test_split(&data, 0.7, 11).expect("split succeeds");

    for algorithm in [Algorithm::Avg, Algorithm::UdtEs] {
        let report = TreeBuilder::new(UdtConfig::new(algorithm))
            .build(&tt.train)
            .expect("training succeeds");
        let result = evaluate(&report.tree, &tt.test);
        println!(
            "\n{:<7}  accuracy {:>6.2}%   tree size {:>3} nodes   build {:>7.3}s   entropy calcs {}",
            report.algorithm.name(),
            result.accuracy() * 100.0,
            report.tree.size(),
            report.elapsed.as_secs_f64(),
            report.stats.entropy_like_calculations(),
        );
        // Show the per-speaker recall for the distribution-based tree.
        if algorithm == Algorithm::UdtEs {
            print!("per-speaker recall:");
            for c in 0..data.n_classes() {
                if let Some(r) = result.recall(c) {
                    print!("  {}={:.0}%", data.class_names()[c], r * 100.0);
                }
            }
            println!();
        }
    }
    println!(
        "\n(the paper reports 81.89% → 87.30% on the real JapaneseVowel data;\n\
         the synthetic stand-in preserves the shape of that comparison, not the\n\
         absolute numbers)"
    );
}
