//! Quickstart: build a decision tree over uncertain data and classify an
//! uncertain test tuple.
//!
//! This walks through the paper's running example (Table 1 / Figs. 1–3):
//! six training tuples whose means are indistinguishable but whose
//! distributions are not, the Averaging tree that fails on them, the
//! distribution-based tree that succeeds, and the fractional classification
//! of an uncertain test tuple.
//!
//! Run with: `cargo run --release -p udt-eval --example quickstart`

use udt_data::toy;
use udt_eval::accuracy::evaluate;
use udt_tree::{classify_batch, persist, Algorithm, BatchScratch, TreeBuilder, UdtConfig};

fn main() {
    // 1. The Table 1 training data: one uncertain numerical attribute, two
    //    classes "A" and "B", every mean equal to +2 or −2.
    let data = toy::table1_dataset().expect("example data is valid");
    println!("training tuples:");
    for (i, t) in data.tuples().iter().enumerate() {
        let pdf = t.value(0).as_numeric().expect("numerical attribute");
        println!(
            "  tuple {}: class {}  mean {:+.1}  domain [{:+.1}, {:+.1}]  ({} sample points)",
            i + 1,
            data.class_names()[t.label()],
            pdf.mean(),
            pdf.lo(),
            pdf.hi(),
            pdf.len()
        );
    }

    // 2. The Averaging baseline (§4.1): collapse every pdf to its mean.
    let avg = TreeBuilder::new(UdtConfig::new(Algorithm::Avg).with_postprune(false))
        .build(&data)
        .expect("build succeeds");
    println!("\nAveraging tree (AVG):\n{}", avg.tree.render());
    println!(
        "AVG training accuracy: {:.1}%",
        evaluate(&avg.tree, &data).accuracy() * 100.0
    );

    // 3. The distribution-based tree (§4.2), built with the fastest safe
    //    pruning algorithm, UDT-ES.
    let udt = TreeBuilder::new(
        UdtConfig::new(Algorithm::UdtEs)
            .with_postprune(false)
            .with_min_node_weight(0.0),
    )
    .build(&data)
    .expect("build succeeds");
    println!("distribution-based tree (UDT-ES):\n{}", udt.tree.render());
    println!(
        "UDT training accuracy: {:.1}%",
        evaluate(&udt.tree, &data).accuracy() * 100.0
    );
    println!(
        "split-point evaluations: {} (of {} candidates)",
        udt.stats.entropy_like_calculations(),
        udt.stats.candidate_points
    );

    // 4. Classify the uncertain test tuple of Fig. 1: the result is a
    //    probability distribution over the class labels, obtained by
    //    fractionally propagating the tuple's pdf down the tree.
    let test = toy::fig1_test_tuple().expect("example tuple is valid");
    let dist = udt
        .tree
        .predict_distribution(&test)
        .expect("tree has classes");
    println!("\nclassifying the Fig. 1 test tuple (pdf over [-2.5, 2]):");
    for (c, p) in dist.iter().enumerate() {
        println!("  P({}) = {:.3}", data.class_names()[c], p);
    }
    println!(
        "predicted class: {}",
        data.class_names()[udt.tree.predict(&test).expect("tree has classes")]
    );

    // 5. Serving: classify whole batches through the arena engine. One
    //    BatchScratch is reused across every call, so steady-state
    //    classification does not allocate per tuple — this is the path a
    //    server handling classification traffic should use.
    let mut scratch = BatchScratch::new();
    let batch = classify_batch(&udt.tree, data.tuples(), &mut scratch).expect("tree has classes");
    let n_classes = udt.tree.n_classes();
    println!(
        "\nbatch classification of all {} training tuples:",
        data.len()
    );
    for (i, dist) in batch.chunks(n_classes).enumerate() {
        let probs: Vec<String> = dist.iter().map(|p| format!("{p:.3}")).collect();
        println!("  tuple {}: [{}]", i + 1, probs.join(", "));
    }

    // 6. Persist the trained model (format v2: the validated flat arena).
    //    `udt-serve` loads exactly this file — see the README's Serving
    //    walkthrough:
    //      udt-serve --addr 127.0.0.1:7878 --model toy=results/table1_model.json
    let model_path = std::path::Path::new("results/table1_model.json");
    if let Some(dir) = model_path.parent() {
        std::fs::create_dir_all(dir).expect("results directory is writable");
    }
    persist::save(&udt.tree, model_path).expect("model file is writable");
    println!(
        "\nsaved the UDT-ES model to {} ({} nodes, {} bytes of arena) — \
         ready for `udt-serve --model toy={}`",
        model_path.display(),
        udt.tree.size(),
        udt.tree.flat().heap_bytes(),
        model_path.display()
    );
}
