//! Workspace facade for the UDT reproduction (Tsang, Kao, Yip, Ho, Lee —
//! *Decision Trees for Uncertain Data*, ICDE 2009).
//!
//! This crate only re-exports the member crates so that the
//! workspace-level integration tests under `tests/` and the examples
//! under `examples/` have a single dependency root. The real code lives
//! in:
//!
//! * [`udt_prob`] — pdf representation and probability helpers;
//! * [`udt_data`] — datasets, uncertainty injection, synthetic generators;
//! * [`udt_tree`] — the decision-tree builder and the UDT split-search
//!   family (including the columnar split engine);
//! * [`udt_serve`] — the serving subsystem (hot-swap model registry,
//!   micro-batching scheduler, NDJSON-over-TCP server/client);
//! * [`udt_eval`] — the paper's experiments (tables and figures).

pub use udt_data;
pub use udt_eval;
pub use udt_prob;
pub use udt_serve;
pub use udt_tree;
