//! # udt-serve — a batched, multi-threaded serving layer for UDT models
//!
//! The training side of this workspace produces [`udt_tree::DecisionTree`]
//! arenas that classify fastest when driven through
//! [`udt_tree::classify_batch`] with a long-lived
//! [`udt_tree::BatchScratch`]. This crate turns that calling convention
//! into a long-lived service:
//!
//! * [`registry::ModelRegistry`] — loads persisted (format v2 or legacy)
//!   models by name, validates them, and hands out `Arc<DecisionTree>`
//!   snapshots. Hot-swapping a model atomically replaces the `Arc`;
//!   in-flight batches keep classifying against the snapshot they took,
//!   so a reload never drops or corrupts outstanding requests.
//! * [`batcher::Batcher`] — a bounded MPSC queue whose worker loops run
//!   as long-lived tasks on a dedicated [`udt_tree::WorkerPool`] (the
//!   same execution substrate the tree builder's parallel phases use).
//!   Concurrent classification requests are coalesced into
//!   micro-batches (flushed when `max_batch_tuples` accumulate or
//!   `max_delay` elapses since the first queued job) and each worker owns
//!   one `BatchScratch` for its whole lifetime, so steady-state serving
//!   performs no per-request allocation in the classification engine.
//! * [`server::Server`] / [`client::Client`] — a newline-delimited-JSON
//!   protocol over plain `std::net` TCP ([`protocol`]): `classify`,
//!   `classify_batch`, `load_model`, `swap`, `stats` and `shutdown`
//!   requests, one JSON object per line in each direction. The build
//!   environment is offline and std-only, so there is deliberately no
//!   async runtime — threads block on sockets and condvars.
//! * [`metrics::ServeMetrics`] — per-model request/tuple/error counters
//!   and log-bucketed latency histograms (p50/p95/p99), surfaced through
//!   the `stats` response together with each model's arena footprint
//!   ([`udt_tree::FlatTree::heap_bytes`]), and renderable as a
//!   Prometheus text exposition (`stats` with `"format":"prometheus"`,
//!   `udt-client stats --format prometheus`).
//!
//! * [`faults`] — a deterministic fault-injection harness (seeded,
//!   env/flag-driven) that the chaos suite uses to prove the survival
//!   properties below; disabled injectors cost one branch per check.
//! * [`client::ReplicaSet`] — a client over N replica endpoints with
//!   per-endpoint circuit breakers (closed/open/half-open, seeded-jitter
//!   cooldowns), transparent failover on transient failures, and
//!   optional hedged point classifies; the `health` request separates
//!   liveness from readiness so probes and load balancers can tell a
//!   draining server from a dead one.
//!
//! Two binaries wrap the library: `udt-serve` (the server; see
//! [`config::ServeConfig`] for its flags) and `udt-client` (a small CLI
//! used by the CI smoke test and the README walkthrough).
//!
//! ## Overload and failure behaviour
//!
//! The serving stack is built to degrade loudly and predictably rather
//! than wedge: admission control at the queue ([`batcher::QueuePolicy`]
//! — block with a bounded wait, or shed with a structured `overloaded`
//! error), per-request deadlines enforced again at dequeue
//! (`deadline_exceeded`), a connection-count gate at accept, per-job
//! panic isolation in the workers (a poisoned request gets an `internal`
//! error; its batch companions and the server live on), and a graceful
//! drain with a deadline at shutdown. Every such event is counted in
//! [`protocol::HealthStats`] and the Prometheus exposition.
//!
//! ## Guarantees
//!
//! Served classifications are **bit-for-bit identical** to calling
//! [`udt_tree::classify_batch`] directly on the same tuples: the wire
//! format round-trips `f64`s through Rust's shortest round-trip float
//! formatting, and the scheduler never reorders the tuples *within* a
//! request. The integration tests lock this in over a real socket.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batcher;
pub mod client;
pub mod config;
pub mod error;
pub mod faults;
pub mod metrics;
pub mod protocol;
pub mod registry;
pub mod server;

pub use batcher::{BatchOptions, Batcher, QueuePolicy};
pub use client::{
    BreakerPolicy, BreakerSnapshot, BreakerState, Client, ReplicaSet, ReplicaSetOptions,
    RetryPolicy,
};
pub use config::ServeConfig;
pub use error::ServeError;
pub use faults::{FaultInjector, FaultPlan, FaultPoint};
pub use metrics::ServeMetrics;
pub use protocol::{
    HealthReport, HealthStats, ModelInfo, Request, Response, StatsFormat, StatsReport,
};
pub use registry::ModelRegistry;
pub use server::Server;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServeError>;
