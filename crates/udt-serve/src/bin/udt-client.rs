//! The `udt-client` CLI.
//!
//! ```text
//! udt-client --addr HOST:PORT classify MODEL --point V1,V2,...
//! udt-client --addr HOST:PORT classify MODEL --uniform LO,HI[,SAMPLES]
//! udt-client --addr HOST:PORT stats [--format json|prometheus]
//! udt-client --addr HOST:PORT stats --watch SECS [--samples N]
//! udt-client --addr HOST:PORT load NAME PATH
//! udt-client --addr HOST:PORT swap NAME PATH
//! udt-client --addr HOST:PORT health
//! udt-client --addr HOST:PORT shutdown
//! udt-client --replicas H1:P1,H2:P2 [--hedge-ms MS] classify MODEL --point ... [--repeat N]
//! ```
//!
//! `--point` sends a certain (point-valued) tuple; `--uniform` sends a
//! single-attribute *uncertain* tuple whose pdf is uniform over
//! `[LO, HI]` with `SAMPLES` sample points (default 16) — enough for the
//! CI smoke test to exercise the fractional classification path over the
//! wire.
//!
//! ## Robustness flags and exit codes
//!
//! `--timeout-ms MS` bounds the connect and every socket read/write;
//! `--retries N` re-runs the command up to `N` extra times on
//! *transient* failures (sheds, deadline drops, worker panics, transport
//! errors) with exponential backoff and seeded jitter
//! (`--retry-base-ms`, `--retry-seed`). Exit codes tell scripts **what
//! kind** of failure survived the retries: `0` success, `1` usage /
//! local errors, `2` transport errors (could not reach or keep the
//! connection), `3` server-reported errors.
//!
//! ## Watch mode
//!
//! `stats --watch SECS` re-polls the server every `SECS` seconds and
//! prints **delta rates** for the monotone counters (requests, tuples,
//! errors, sheds, deadline drops) between consecutive samples — a
//! poor-man's `top` for a serving box with no Prometheus scraper
//! around. `--samples N` stops after `N` polls (handy for scripts and
//! the CI smoke); without it the loop runs until interrupted or the
//! server goes away. The exit-code contract is unchanged: a transport
//! failure that survives the retries exits 2, a server error 3.
//!
//! ## Replica sets, hedging and health
//!
//! `--replicas H1:P1,H2:P2,...` (env `UDT_REPLICAS`; the flag wins)
//! routes `classify` and `health` through a
//! [`udt_serve::client::ReplicaSet`]: per-endpoint circuit breakers,
//! failover to the next healthy replica on transient failures, and —
//! with `--hedge-ms MS` (env `UDT_HEDGE_MS`, `0` disables) — a hedged
//! second attempt for point classifies that have not answered in time.
//! `--repeat N` streams `N` classifies through the same replica set and
//! reports `replies: N/N` plus the failover/hedge counters, which the
//! failover smoke test asserts on. `health` prints the liveness /
//! readiness report and exits `0` when the server is ready, `3` when it
//! is live but not ready (draining, empty registry, wedged scheduler),
//! `2` when it cannot be reached at all — exactly the trichotomy a load
//! balancer probe wants.

// `!(hi > lo)` is a deliberate NaN guard (same convention as udt-tree):
// a NaN bound must take the rejection branch.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

use std::fmt::Write as _;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use udt_data::{Tuple, UncertainValue};
use udt_prob::SampledPdf;
use udt_serve::client::{ReplicaSet, ReplicaSetOptions, RetryPolicy};
use udt_serve::{Client, HealthReport, ServeError, StatsFormat, StatsReport};

/// What failed, for the exit code.
enum CliError {
    /// Bad flags or arguments (exit 1).
    Usage(String),
    /// Could not reach the server or lost the connection (exit 2).
    Transport(String),
    /// The server answered with an error (exit 3).
    Server(String),
}

/// A fully validated command — every usage error is caught before the
/// first connection attempt, so the retry loop only ever sees transport
/// and server failures.
enum Command {
    Classify {
        model: String,
        tuple: Tuple,
    },
    Stats {
        format: StatsFormat,
    },
    /// `stats --watch SECS [--samples N]`: periodic re-poll with delta
    /// rates; `samples: None` polls until interrupted.
    StatsWatch {
        period: Duration,
        samples: Option<u64>,
    },
    Load {
        name: String,
        path: String,
    },
    Swap {
        name: String,
        path: String,
    },
    /// `health`: liveness/readiness probe — exit 0 when ready, 3 when
    /// live but not ready, 2 when unreachable.
    Health,
    Shutdown,
}

fn main() -> ExitCode {
    match run() {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("udt-client: {msg}");
            ExitCode::from(1)
        }
        Err(CliError::Transport(msg)) => {
            eprintln!("udt-client: transport error: {msg}");
            ExitCode::from(2)
        }
        Err(CliError::Server(msg)) => {
            eprintln!("udt-client: server error: {msg}");
            ExitCode::from(3)
        }
    }
}

fn run() -> Result<String, CliError> {
    let usage = |msg: String| CliError::Usage(msg);
    let mut args = std::env::args().skip(1);
    let mut addr = "127.0.0.1:7878".to_string();
    let mut timeout: Option<Duration> = None;
    let mut policy = RetryPolicy {
        attempts: 1,
        ..RetryPolicy::default()
    };
    let mut replicas: Option<String> = None;
    let mut hedge_ms: Option<u64> = None;
    let mut repeat: u64 = 1;
    let mut command: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        let mut value_for = |flag: &str| {
            args.next()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--addr" => addr = value_for("--addr")?,
            "--timeout-ms" => {
                let ms: u64 = value_for("--timeout-ms")?
                    .parse()
                    .ok()
                    .filter(|&ms| ms > 0)
                    .ok_or_else(|| usage("--timeout-ms wants a positive integer".into()))?;
                timeout = Some(Duration::from_millis(ms));
            }
            "--retries" => {
                let n: u32 = value_for("--retries")?
                    .parse()
                    .map_err(|_| usage("--retries wants an integer >= 0".into()))?;
                policy.attempts = n + 1;
            }
            "--retry-base-ms" => {
                let ms: u64 = value_for("--retry-base-ms")?
                    .parse()
                    .ok()
                    .filter(|&ms| ms > 0)
                    .ok_or_else(|| usage("--retry-base-ms wants a positive integer".into()))?;
                policy.base_backoff = Duration::from_millis(ms);
            }
            "--retry-seed" => {
                policy.seed = value_for("--retry-seed")?
                    .parse()
                    .map_err(|_| usage("--retry-seed wants an integer".into()))?;
            }
            "--replicas" => replicas = Some(value_for("--replicas")?),
            "--hedge-ms" => {
                let ms: u64 = value_for("--hedge-ms")?
                    .parse()
                    .map_err(|_| usage("--hedge-ms wants an integer >= 0".into()))?;
                hedge_ms = Some(ms);
            }
            "--repeat" => {
                repeat = value_for("--repeat")?
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| usage("--repeat wants a positive integer".into()))?;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: udt-client [--addr HOST:PORT] [--timeout-ms MS] \
                     [--retries N] [--retry-base-ms MS] [--retry-seed N] \
                     [--replicas H1:P1,H2:P2,...] [--hedge-ms MS] [--repeat N] \
                     <classify MODEL (--point CSV | --uniform LO,HI[,SAMPLES]) | \
                     stats [--format json|prometheus] [--watch SECS [--samples N]] | \
                     load NAME PATH | swap NAME PATH | health | shutdown>"
                );
                return Ok(String::new());
            }
            other => command.push(other.to_string()),
        }
    }
    let command = parse_command(&command).map_err(CliError::Usage)?;
    // Flags win over env for the replica knobs, matching udt-serve.
    let replicas = replicas.or_else(|| std::env::var("UDT_REPLICAS").ok());
    let hedge_ms = match hedge_ms {
        Some(ms) => Some(ms),
        None => match std::env::var("UDT_HEDGE_MS") {
            Ok(raw) => Some(
                raw.trim()
                    .parse()
                    .map_err(|_| usage(format!("UDT_HEDGE_MS: `{raw}` is not an integer")))?,
            ),
            Err(_) => None,
        },
    };
    let endpoints: Vec<String> = match &replicas {
        Some(raw) => {
            let list: Vec<String> = raw
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
            if list.is_empty() {
                return Err(usage(
                    "--replicas wants a comma-separated endpoint list".into(),
                ));
            }
            list
        }
        None => vec![addr.clone()],
    };
    let replicated = matches!(command, Command::Classify { .. } | Command::Health);
    if !replicated {
        if replicas.is_some() {
            return Err(usage(
                "--replicas only applies to classify and health".into(),
            ));
        }
        if repeat != 1 {
            return Err(usage("--repeat only applies to classify".into()));
        }
    }
    if replicated {
        let options = ReplicaSetOptions {
            timeout,
            hedge: hedge_ms.filter(|&ms| ms > 0).map(Duration::from_millis),
            seed: policy.seed,
            ..ReplicaSetOptions::default()
        };
        return match command {
            Command::Classify { model, tuple } => {
                run_classify(endpoints, options, &policy, &model, &tuple, repeat)
            }
            Command::Health => run_health(endpoints, options, &policy),
            _ => unreachable!("replicated commands are classify and health"),
        };
    }
    if let Command::StatsWatch { period, samples } = command {
        return run_watch(&addr, timeout, &policy, period, samples);
    }
    // Each attempt gets a fresh connection: after a transport failure or
    // a shed, the old socket proves nothing about the next try.
    let result = policy.run(|attempt| {
        if attempt > 0 {
            eprintln!(
                "udt-client: transient failure, retry {attempt}/{}",
                policy.attempts - 1
            );
        }
        let mut client = match timeout {
            Some(t) => Client::connect_with_timeout(&addr, t),
            None => Client::connect(&addr),
        }
        .map_err(|e| ServeError::Io(format!("cannot connect to {addr}: {e}")))?;
        execute(&mut client, &command)
    });
    result.map_err(classify_error)
}

/// Streams `repeat` classifies through one replica set (so breaker
/// state, failover decisions and connections persist across requests)
/// and renders the last reply plus a delivery/failover summary. Every
/// reply is accounted for: the loop aborts on the first undelivered
/// request, so `replies: N/N` on stdout means nothing was lost.
fn run_classify(
    endpoints: Vec<String>,
    options: ReplicaSetOptions,
    policy: &RetryPolicy,
    model: &str,
    tuple: &Tuple,
    repeat: u64,
) -> Result<String, CliError> {
    let mut set = ReplicaSet::new(endpoints, options)
        .map_err(|e| CliError::Usage(format!("bad replica set: {e}")))?;
    let mut last = None;
    let mut replies = 0u64;
    for _ in 0..repeat {
        let result = policy
            .run(|attempt| {
                if attempt > 0 {
                    eprintln!(
                        "udt-client: transient failure, retry {attempt}/{}",
                        policy.attempts - 1
                    );
                }
                set.classify(model, tuple)
            })
            .map_err(classify_error)?;
        replies += 1;
        last = Some(result);
    }
    let (distribution, label) = last.expect("repeat >= 1 is enforced at parse time");
    let mut out = String::new();
    let _ = writeln!(out, "label: {label}");
    for (c, p) in distribution.iter().enumerate() {
        let _ = writeln!(out, "P(class {c}) = {p:.6}");
    }
    let _ = writeln!(out, "replies: {replies}/{repeat}");
    let obs = udt_obs::catalog::serve::FAILOVERS.get();
    let _ = writeln!(out, "failovers: {obs}");
    let _ = writeln!(
        out,
        "hedges: launched {}, won {}",
        udt_obs::catalog::serve::HEDGES_LAUNCHED.get(),
        udt_obs::catalog::serve::HEDGES_WON.get()
    );
    Ok(out)
}

/// The `health` command: prints the report and maps readiness onto the
/// exit-code taxonomy (ready ⇒ 0, live-but-not-ready ⇒ 3 via a server
/// error, unreachable ⇒ 2 via a transport error).
fn run_health(
    endpoints: Vec<String>,
    options: ReplicaSetOptions,
    policy: &RetryPolicy,
) -> Result<String, CliError> {
    let mut set = ReplicaSet::new(endpoints, options)
        .map_err(|e| CliError::Usage(format!("bad replica set: {e}")))?;
    let report = policy.run(|_| set.health()).map_err(classify_error)?;
    let text = render_health(&report);
    if report.ready {
        Ok(text)
    } else {
        // The report still lands on stdout for the operator; the exit
        // code carries the verdict for scripts and probes.
        print!("{text}");
        Err(CliError::Server("server is live but not ready".into()))
    }
}

fn render_health(report: &HealthReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "live: {}", report.live);
    let _ = writeln!(out, "ready: {}", report.ready);
    let _ = writeln!(out, "models: {}", report.models);
    let _ = writeln!(out, "accepting: {}", report.accepting);
    let _ = writeln!(out, "draining: {}", report.draining);
    let _ = writeln!(out, "quarantined: {}", report.quarantined);
    out
}

/// Maps a post-validation serve error onto the exit-code taxonomy.
/// Usage-shaped problems were rejected before the first connect, so an
/// error here is the wire's fault or the server's word.
fn classify_error(e: ServeError) -> CliError {
    match e {
        ServeError::Io(_) | ServeError::Protocol(_) => CliError::Transport(e.to_string()),
        other => CliError::Server(other.to_string()),
    }
}

/// The `stats --watch` loop: polls the server every `period`, printing
/// each sample as it lands (absolute values first, then deltas and
/// per-second rates against the previous sample). Every poll opens a
/// fresh connection under the same retry policy as one-shot commands,
/// so a restarting server only kills the watch once the retries are
/// exhausted.
fn run_watch(
    addr: &str,
    timeout: Option<Duration>,
    policy: &RetryPolicy,
    period: Duration,
    samples: Option<u64>,
) -> Result<String, CliError> {
    let mut prev: Option<(Instant, StatsReport)> = None;
    let mut tick = 0u64;
    loop {
        let report = policy
            .run(|attempt| {
                if attempt > 0 {
                    eprintln!(
                        "udt-client: transient failure, retry {attempt}/{}",
                        policy.attempts - 1
                    );
                }
                let mut client = match timeout {
                    Some(t) => Client::connect_with_timeout(addr, t),
                    None => Client::connect(addr),
                }
                .map_err(|e| ServeError::Io(format!("cannot connect to {addr}: {e}")))?;
                client.stats()
            })
            .map_err(classify_error)?;
        let now = Instant::now();
        let delta = prev
            .as_ref()
            .map(|(at, report)| (now.duration_since(*at), report));
        print!("{}", render_watch_sample(tick, &report, delta));
        let _ = std::io::stdout().flush();
        prev = Some((now, report));
        tick += 1;
        if samples.is_some_and(|n| tick >= n) {
            return Ok(String::new());
        }
        std::thread::sleep(period);
    }
}

/// Renders one watch sample. The first sample shows absolute counter
/// values; later samples show the increment since the previous one and
/// its per-second rate. Counters are compared with saturating
/// subtraction so a server restart (counters reset to zero) renders as
/// a quiet sample instead of an underflow.
fn render_watch_sample(
    tick: u64,
    report: &StatsReport,
    prev: Option<(Duration, &StatsReport)>,
) -> String {
    let mut out = String::new();
    match prev {
        None => {
            let _ = writeln!(
                out,
                "sample {tick}: uptime {:.1}s, queue {}/{}, {} sheds, {} deadline drops, \
                 {} worker panics",
                report.uptime_seconds,
                report.queue.depth,
                report.queue.capacity,
                report.health.sheds,
                report.health.deadline_drops,
                report.health.worker_panics
            );
            for m in &report.metrics {
                let _ = writeln!(
                    out,
                    "  {}: {} requests, {} tuples, {} errors, p99 {:.1} us",
                    m.model, m.requests, m.tuples, m.errors, m.p99_us
                );
            }
        }
        Some((dt, old)) => {
            let secs = dt.as_secs_f64().max(1e-9);
            let _ = writeln!(
                out,
                "sample {tick} (+{:.1}s): queue {}/{}, +{} sheds, +{} deadline drops, \
                 +{} worker panics",
                dt.as_secs_f64(),
                report.queue.depth,
                report.queue.capacity,
                report.health.sheds.saturating_sub(old.health.sheds),
                report
                    .health
                    .deadline_drops
                    .saturating_sub(old.health.deadline_drops),
                report
                    .health
                    .worker_panics
                    .saturating_sub(old.health.worker_panics)
            );
            for m in &report.metrics {
                // A model first seen this sample diffs against zero.
                let (requests, tuples, errors) = old
                    .metrics
                    .iter()
                    .find(|o| o.model == m.model)
                    .map_or((0, 0, 0), |o| (o.requests, o.tuples, o.errors));
                let d_requests = m.requests.saturating_sub(requests);
                let d_tuples = m.tuples.saturating_sub(tuples);
                let _ = writeln!(
                    out,
                    "  {}: +{} requests ({:.1}/s), +{} tuples ({:.1}/s), +{} errors, \
                     p99 {:.1} us",
                    m.model,
                    d_requests,
                    d_requests as f64 / secs,
                    d_tuples,
                    d_tuples as f64 / secs,
                    m.errors.saturating_sub(errors),
                    m.p99_us
                );
            }
        }
    }
    out
}

/// Validates the positional arguments into a [`Command`].
fn parse_command(command: &[String]) -> Result<Command, String> {
    match command.first().map(String::as_str) {
        Some("classify") => {
            let model = command
                .get(1)
                .ok_or("classify needs a MODEL name")?
                .to_string();
            let tuple = parse_tuple(&command[2..])?;
            Ok(Command::Classify { model, tuple })
        }
        Some("stats") => {
            // `stats [--format json|prometheus] [--watch SECS
            // [--samples N]]`; the format is parsed by the canonical
            // `StatsFormat` parser the wire field shares.
            let mut format: Option<StatsFormat> = None;
            let mut watch: Option<Duration> = None;
            let mut samples: Option<u64> = None;
            let mut rest = command[1..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--format" => {
                        let raw = rest.next().ok_or("--format needs a value")?;
                        format = Some(raw.parse().map_err(|e| format!("{e}"))?);
                    }
                    "--watch" => {
                        let secs: u64 = rest
                            .next()
                            .ok_or("--watch needs a period in seconds")?
                            .parse()
                            .ok()
                            .filter(|&s| s > 0)
                            .ok_or("--watch wants a positive integer of seconds")?;
                        watch = Some(Duration::from_secs(secs));
                    }
                    "--samples" => {
                        let n: u64 = rest
                            .next()
                            .ok_or("--samples needs a value")?
                            .parse()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or("--samples wants a positive integer")?;
                        samples = Some(n);
                    }
                    other => return Err(format!("unknown stats argument `{other}`")),
                }
            }
            match watch {
                Some(period) => {
                    // Watch renders human-readable delta rates; the raw
                    // expositions don't fit a rolling display.
                    if format.is_some() && format != Some(StatsFormat::Json) {
                        return Err("stats --watch only supports the json format".into());
                    }
                    Ok(Command::StatsWatch { period, samples })
                }
                None => {
                    if samples.is_some() {
                        return Err("--samples only makes sense with --watch".into());
                    }
                    Ok(Command::Stats {
                        format: format.unwrap_or(StatsFormat::Json),
                    })
                }
            }
        }
        Some("load") | Some("swap") => {
            let name = command.get(1).ok_or("load/swap needs NAME PATH")?.clone();
            let path = command.get(2).ok_or("load/swap needs NAME PATH")?.clone();
            if command[0] == "load" {
                Ok(Command::Load { name, path })
            } else {
                Ok(Command::Swap { name, path })
            }
        }
        Some("health") => Ok(Command::Health),
        Some("shutdown") => Ok(Command::Shutdown),
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("no command given (try --help)".to_string()),
    }
}

/// Runs one validated command over a connected client and renders its
/// output (printed only after the retry loop settles on success).
fn execute(client: &mut Client, command: &Command) -> udt_serve::Result<String> {
    let mut out = String::new();
    match command {
        Command::Stats { format } => {
            if *format == StatsFormat::Prometheus {
                let _ = write!(out, "{}", client.stats_prometheus()?);
                return Ok(out);
            }
            let stats = client.stats()?;
            let _ = writeln!(out, "uptime: {:.1}s", stats.uptime_seconds);
            let _ = writeln!(
                out,
                "queue: {} workers, depth {}/{} jobs, flush at {} tuples or {} us, \
                 policy {}, deadline {}",
                stats.queue.workers,
                stats.queue.depth,
                stats.queue.capacity,
                stats.queue.max_batch_tuples,
                stats.queue.max_delay_us,
                stats.queue.policy,
                if stats.queue.deadline_ms == 0 {
                    "none".to_string()
                } else {
                    format!("{} ms", stats.queue.deadline_ms)
                }
            );
            let _ = writeln!(
                out,
                "health: {} sheds, {} deadline drops, {} worker panics, \
                 {} rejected connections, queue wait p50 {:.1} us p99 {:.1} us",
                stats.health.sheds,
                stats.health.deadline_drops,
                stats.health.worker_panics,
                stats.health.rejected_connections,
                stats.health.queue_wait_p50_us,
                stats.health.queue_wait_p99_us
            );
            for m in &stats.models {
                let _ = writeln!(
                    out,
                    "model {} (gen {}): {} nodes, {} leaves, depth {}, {} classes, {} bytes",
                    m.name, m.generation, m.nodes, m.leaves, m.depth, m.n_classes, m.heap_bytes
                );
            }
            for s in &stats.metrics {
                let _ = writeln!(
                    out,
                    "traffic {}: {} requests, {} tuples, {} errors, \
                     p50 {:.1} us, p95 {:.1} us, p99 {:.1} us",
                    s.model, s.requests, s.tuples, s.errors, s.p50_us, s.p95_us, s.p99_us
                );
            }
        }
        Command::Load { name, path } => {
            let info = client.load_model(name, path)?;
            let _ = writeln!(
                out,
                "model {} (gen {}): {} nodes, {} bytes",
                info.name, info.generation, info.nodes, info.heap_bytes
            );
        }
        Command::Swap { name, path } => {
            let info = client.swap(name, path)?;
            let _ = writeln!(
                out,
                "model {} (gen {}): {} nodes, {} bytes",
                info.name, info.generation, info.nodes, info.heap_bytes
            );
        }
        Command::Shutdown => {
            client.shutdown()?;
            let _ = writeln!(out, "server shutting down");
        }
        // Watch, classify and health never reach the one-shot path:
        // `run` dispatches them right after parsing (the latter two via
        // the replica-set path, even with a single endpoint).
        Command::StatsWatch { .. } => unreachable!("watch is handled before the retry loop"),
        Command::Classify { .. } | Command::Health => {
            unreachable!("replicated commands are handled before the retry loop")
        }
    }
    Ok(out)
}

/// Parses `--point CSV` or `--uniform LO,HI[,SAMPLES]` into a tuple.
fn parse_tuple(spec: &[String]) -> Result<Tuple, String> {
    match spec.first().map(String::as_str) {
        Some("--point") => {
            let csv = spec.get(1).ok_or("--point needs comma-separated values")?;
            let values: Result<Vec<f64>, _> =
                csv.split(',').map(str::trim).map(str::parse).collect();
            let values = values.map_err(|_| format!("--point: `{csv}` is not numeric CSV"))?;
            if values.is_empty() {
                return Err("--point needs at least one value".into());
            }
            Ok(Tuple::from_points(&values, 0))
        }
        Some("--uniform") => {
            let csv = spec.get(1).ok_or("--uniform needs LO,HI[,SAMPLES]")?;
            let parts: Vec<&str> = csv.split(',').map(str::trim).collect();
            if parts.len() < 2 || parts.len() > 3 {
                return Err(format!("--uniform: `{csv}` is not LO,HI[,SAMPLES]"));
            }
            let lo: f64 = parts[0]
                .parse()
                .map_err(|_| format!("--uniform: bad LO `{}`", parts[0]))?;
            let hi: f64 = parts[1]
                .parse()
                .map_err(|_| format!("--uniform: bad HI `{}`", parts[1]))?;
            let samples: usize = match parts.get(2) {
                Some(s) => s
                    .parse()
                    .map_err(|_| format!("--uniform: bad SAMPLES `{s}`"))?,
                None => 16,
            };
            if samples < 2 || !(hi > lo) {
                return Err("--uniform needs HI > LO and SAMPLES >= 2".into());
            }
            let step = (hi - lo) / (samples - 1) as f64;
            let points: Vec<f64> = (0..samples).map(|i| lo + step * i as f64).collect();
            let mass = vec![1.0 / samples as f64; samples];
            let pdf = SampledPdf::new(points, mass)
                .map_err(|e| format!("--uniform: invalid pdf: {e}"))?;
            Ok(Tuple::new(vec![UncertainValue::Numeric(pdf)], 0))
        }
        _ => Err("classify needs --point CSV or --uniform LO,HI[,SAMPLES]".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udt_serve::protocol::{HealthStats, ModelMetricsSnapshot, QueueStats};

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn stats_watch_arguments_parse() {
        match parse_command(&argv(&["stats", "--watch", "2"])).unwrap() {
            Command::StatsWatch { period, samples } => {
                assert_eq!(period, Duration::from_secs(2));
                assert_eq!(samples, None);
            }
            _ => panic!("expected watch mode"),
        }
        match parse_command(&argv(&["stats", "--watch", "1", "--samples", "3"])).unwrap() {
            Command::StatsWatch { period, samples } => {
                assert_eq!(period, Duration::from_secs(1));
                assert_eq!(samples, Some(3));
            }
            _ => panic!("expected watch mode"),
        }
        // Order does not matter, and an explicit json format is fine.
        assert!(matches!(
            parse_command(&argv(&[
                "stats",
                "--samples",
                "2",
                "--format",
                "json",
                "--watch",
                "5"
            ]))
            .unwrap(),
            Command::StatsWatch { .. }
        ));
    }

    #[test]
    fn bad_watch_combinations_are_usage_errors() {
        assert!(parse_command(&argv(&["stats", "--watch"])).is_err());
        assert!(parse_command(&argv(&["stats", "--watch", "0"])).is_err());
        assert!(parse_command(&argv(&["stats", "--watch", "nope"])).is_err());
        assert!(parse_command(&argv(&["stats", "--samples", "2"])).is_err());
        assert!(
            parse_command(&argv(&["stats", "--watch", "1", "--format", "prometheus"])).is_err()
        );
        // The plain forms still parse.
        assert!(matches!(
            parse_command(&argv(&["stats"])).unwrap(),
            Command::Stats {
                format: StatsFormat::Json
            }
        ));
        assert!(matches!(
            parse_command(&argv(&["stats", "--format", "prometheus"])).unwrap(),
            Command::Stats {
                format: StatsFormat::Prometheus
            }
        ));
    }

    fn report(requests: u64, tuples: u64, errors: u64, sheds: u64) -> StatsReport {
        StatsReport {
            uptime_seconds: 10.0,
            models: Vec::new(),
            metrics: vec![ModelMetricsSnapshot {
                model: "toy".into(),
                requests,
                tuples,
                errors,
                mean_us: 5.0,
                p50_us: 4.0,
                p95_us: 8.0,
                p99_us: 9.0,
            }],
            queue: QueueStats {
                workers: 2,
                capacity: 64,
                depth: 1,
                max_batch_tuples: 32,
                max_delay_us: 500,
                policy: "block".into(),
                deadline_ms: 0,
            },
            health: HealthStats {
                sheds,
                deadline_drops: 0,
                worker_panics: 0,
                rejected_connections: 0,
                queue_wait_count: requests,
                queue_wait_p50_us: 1.0,
                queue_wait_p99_us: 2.0,
            },
        }
    }

    #[test]
    fn first_watch_sample_is_absolute() {
        let text = render_watch_sample(0, &report(3, 12, 1, 0), None);
        assert!(text.contains("sample 0: uptime 10.0s, queue 1/64"));
        assert!(text.contains("toy: 3 requests, 12 tuples, 1 errors"));
    }

    #[test]
    fn later_watch_samples_show_deltas_and_rates() {
        let old = report(3, 12, 1, 0);
        let new = report(7, 32, 1, 2);
        let text = render_watch_sample(1, &new, Some((Duration::from_secs(2), &old)));
        assert!(text.contains("sample 1 (+2.0s)"), "{text}");
        assert!(text.contains("+2 sheds"), "{text}");
        assert!(text.contains("toy: +4 requests (2.0/s), +20 tuples (10.0/s), +0 errors"));
    }

    #[test]
    fn counter_resets_render_as_quiet_samples() {
        // The server restarted: counters went backwards. Saturating
        // deltas keep the output sane.
        let old = report(100, 400, 5, 9);
        let new = report(2, 8, 0, 0);
        let text = render_watch_sample(2, &new, Some((Duration::from_secs(1), &old)));
        assert!(text.contains("+0 sheds"), "{text}");
        assert!(text.contains("toy: +0 requests (0.0/s), +0 tuples (0.0/s), +0 errors"));
    }
}
