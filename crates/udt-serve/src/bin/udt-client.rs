//! The `udt-client` CLI.
//!
//! ```text
//! udt-client --addr HOST:PORT classify MODEL --point V1,V2,...
//! udt-client --addr HOST:PORT classify MODEL --uniform LO,HI[,SAMPLES]
//! udt-client --addr HOST:PORT stats [--format json|prometheus]
//! udt-client --addr HOST:PORT load NAME PATH
//! udt-client --addr HOST:PORT swap NAME PATH
//! udt-client --addr HOST:PORT shutdown
//! ```
//!
//! `--point` sends a certain (point-valued) tuple; `--uniform` sends a
//! single-attribute *uncertain* tuple whose pdf is uniform over
//! `[LO, HI]` with `SAMPLES` sample points (default 16) — enough for the
//! CI smoke test to exercise the fractional classification path over the
//! wire. Exit code is non-zero on any error, including server-reported
//! ones.

// `!(hi > lo)` is a deliberate NaN guard (same convention as udt-tree):
// a NaN bound must take the rejection branch.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

use std::process::ExitCode;

use udt_data::{Tuple, UncertainValue};
use udt_prob::SampledPdf;
use udt_serve::Client;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("udt-client: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let mut addr = "127.0.0.1:7878".to_string();
    let mut command: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().ok_or("--addr needs a value")?,
            "--help" | "-h" => {
                eprintln!(
                    "usage: udt-client [--addr HOST:PORT] <classify MODEL \
                     (--point CSV | --uniform LO,HI[,SAMPLES]) | \
                     stats [--format json|prometheus] | \
                     load NAME PATH | swap NAME PATH | shutdown>"
                );
                return Ok(());
            }
            other => command.push(other.to_string()),
        }
    }
    let mut client =
        Client::connect(&addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    match command.first().map(String::as_str) {
        Some("classify") => {
            let model = command.get(1).ok_or("classify needs a MODEL name")?;
            let tuple = parse_tuple(&command[2..])?;
            let (distribution, label) =
                client.classify(model, &tuple).map_err(|e| e.to_string())?;
            println!("label: {label}");
            for (c, p) in distribution.iter().enumerate() {
                println!("P(class {c}) = {p:.6}");
            }
            Ok(())
        }
        Some("stats") => {
            // `stats [--format json|prometheus]`, parsed by the
            // canonical `StatsFormat` parser the wire field shares.
            let format = match command.get(1).map(String::as_str) {
                None => udt_serve::StatsFormat::Json,
                Some("--format") => {
                    let raw = command.get(2).ok_or("--format needs a value")?;
                    raw.parse().map_err(|e| format!("{e}"))?
                }
                Some(other) => return Err(format!("unknown stats argument `{other}`")),
            };
            if format == udt_serve::StatsFormat::Prometheus {
                print!("{}", client.stats_prometheus().map_err(|e| e.to_string())?);
                return Ok(());
            }
            let stats = client.stats().map_err(|e| e.to_string())?;
            println!("uptime: {:.1}s", stats.uptime_seconds);
            println!(
                "queue: {} workers, depth {}/{} jobs, flush at {} tuples or {} us",
                stats.queue.workers,
                stats.queue.depth,
                stats.queue.capacity,
                stats.queue.max_batch_tuples,
                stats.queue.max_delay_us
            );
            for m in &stats.models {
                println!(
                    "model {} (gen {}): {} nodes, {} leaves, depth {}, {} classes, {} bytes",
                    m.name, m.generation, m.nodes, m.leaves, m.depth, m.n_classes, m.heap_bytes
                );
            }
            for s in &stats.metrics {
                println!(
                    "traffic {}: {} requests, {} tuples, {} errors, \
                     p50 {:.1} us, p95 {:.1} us, p99 {:.1} us",
                    s.model, s.requests, s.tuples, s.errors, s.p50_us, s.p95_us, s.p99_us
                );
            }
            Ok(())
        }
        Some("load") | Some("swap") => {
            let cmd = command[0].as_str();
            let name = command.get(1).ok_or("load/swap needs NAME PATH")?;
            let path = command.get(2).ok_or("load/swap needs NAME PATH")?;
            let info = if cmd == "load" {
                client.load_model(name, path)
            } else {
                client.swap(name, path)
            }
            .map_err(|e| e.to_string())?;
            println!(
                "model {} (gen {}): {} nodes, {} bytes",
                info.name, info.generation, info.nodes, info.heap_bytes
            );
            Ok(())
        }
        Some("shutdown") => {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("server shutting down");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("no command given (try --help)".to_string()),
    }
}

/// Parses `--point CSV` or `--uniform LO,HI[,SAMPLES]` into a tuple.
fn parse_tuple(spec: &[String]) -> Result<Tuple, String> {
    match spec.first().map(String::as_str) {
        Some("--point") => {
            let csv = spec.get(1).ok_or("--point needs comma-separated values")?;
            let values: Result<Vec<f64>, _> =
                csv.split(',').map(str::trim).map(str::parse).collect();
            let values = values.map_err(|_| format!("--point: `{csv}` is not numeric CSV"))?;
            if values.is_empty() {
                return Err("--point needs at least one value".into());
            }
            Ok(Tuple::from_points(&values, 0))
        }
        Some("--uniform") => {
            let csv = spec.get(1).ok_or("--uniform needs LO,HI[,SAMPLES]")?;
            let parts: Vec<&str> = csv.split(',').map(str::trim).collect();
            if parts.len() < 2 || parts.len() > 3 {
                return Err(format!("--uniform: `{csv}` is not LO,HI[,SAMPLES]"));
            }
            let lo: f64 = parts[0]
                .parse()
                .map_err(|_| format!("--uniform: bad LO `{}`", parts[0]))?;
            let hi: f64 = parts[1]
                .parse()
                .map_err(|_| format!("--uniform: bad HI `{}`", parts[1]))?;
            let samples: usize = match parts.get(2) {
                Some(s) => s
                    .parse()
                    .map_err(|_| format!("--uniform: bad SAMPLES `{s}`"))?,
                None => 16,
            };
            if samples < 2 || !(hi > lo) {
                return Err("--uniform needs HI > LO and SAMPLES >= 2".into());
            }
            let step = (hi - lo) / (samples - 1) as f64;
            let points: Vec<f64> = (0..samples).map(|i| lo + step * i as f64).collect();
            let mass = vec![1.0 / samples as f64; samples];
            let pdf = SampledPdf::new(points, mass)
                .map_err(|e| format!("--uniform: invalid pdf: {e}"))?;
            Ok(Tuple::new(vec![UncertainValue::Numeric(pdf)], 0))
        }
        _ => Err("classify needs --point CSV or --uniform LO,HI[,SAMPLES]".into()),
    }
}
