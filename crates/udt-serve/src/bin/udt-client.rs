//! The `udt-client` CLI.
//!
//! ```text
//! udt-client --addr HOST:PORT classify MODEL --point V1,V2,...
//! udt-client --addr HOST:PORT classify MODEL --uniform LO,HI[,SAMPLES]
//! udt-client --addr HOST:PORT stats [--format json|prometheus]
//! udt-client --addr HOST:PORT load NAME PATH
//! udt-client --addr HOST:PORT swap NAME PATH
//! udt-client --addr HOST:PORT shutdown
//! ```
//!
//! `--point` sends a certain (point-valued) tuple; `--uniform` sends a
//! single-attribute *uncertain* tuple whose pdf is uniform over
//! `[LO, HI]` with `SAMPLES` sample points (default 16) — enough for the
//! CI smoke test to exercise the fractional classification path over the
//! wire.
//!
//! ## Robustness flags and exit codes
//!
//! `--timeout-ms MS` bounds the connect and every socket read/write;
//! `--retries N` re-runs the command up to `N` extra times on
//! *transient* failures (sheds, deadline drops, worker panics, transport
//! errors) with exponential backoff and seeded jitter
//! (`--retry-base-ms`, `--retry-seed`). Exit codes tell scripts **what
//! kind** of failure survived the retries: `0` success, `1` usage /
//! local errors, `2` transport errors (could not reach or keep the
//! connection), `3` server-reported errors.

// `!(hi > lo)` is a deliberate NaN guard (same convention as udt-tree):
// a NaN bound must take the rejection branch.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Duration;

use udt_data::{Tuple, UncertainValue};
use udt_prob::SampledPdf;
use udt_serve::client::RetryPolicy;
use udt_serve::{Client, ServeError, StatsFormat};

/// What failed, for the exit code.
enum CliError {
    /// Bad flags or arguments (exit 1).
    Usage(String),
    /// Could not reach the server or lost the connection (exit 2).
    Transport(String),
    /// The server answered with an error (exit 3).
    Server(String),
}

/// A fully validated command — every usage error is caught before the
/// first connection attempt, so the retry loop only ever sees transport
/// and server failures.
enum Command {
    Classify { model: String, tuple: Tuple },
    Stats { format: StatsFormat },
    Load { name: String, path: String },
    Swap { name: String, path: String },
    Shutdown,
}

fn main() -> ExitCode {
    match run() {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("udt-client: {msg}");
            ExitCode::from(1)
        }
        Err(CliError::Transport(msg)) => {
            eprintln!("udt-client: transport error: {msg}");
            ExitCode::from(2)
        }
        Err(CliError::Server(msg)) => {
            eprintln!("udt-client: server error: {msg}");
            ExitCode::from(3)
        }
    }
}

fn run() -> Result<String, CliError> {
    let usage = |msg: String| CliError::Usage(msg);
    let mut args = std::env::args().skip(1);
    let mut addr = "127.0.0.1:7878".to_string();
    let mut timeout: Option<Duration> = None;
    let mut policy = RetryPolicy {
        attempts: 1,
        ..RetryPolicy::default()
    };
    let mut command: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        let mut value_for = |flag: &str| {
            args.next()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--addr" => addr = value_for("--addr")?,
            "--timeout-ms" => {
                let ms: u64 = value_for("--timeout-ms")?
                    .parse()
                    .ok()
                    .filter(|&ms| ms > 0)
                    .ok_or_else(|| usage("--timeout-ms wants a positive integer".into()))?;
                timeout = Some(Duration::from_millis(ms));
            }
            "--retries" => {
                let n: u32 = value_for("--retries")?
                    .parse()
                    .map_err(|_| usage("--retries wants an integer >= 0".into()))?;
                policy.attempts = n + 1;
            }
            "--retry-base-ms" => {
                let ms: u64 = value_for("--retry-base-ms")?
                    .parse()
                    .ok()
                    .filter(|&ms| ms > 0)
                    .ok_or_else(|| usage("--retry-base-ms wants a positive integer".into()))?;
                policy.base_backoff = Duration::from_millis(ms);
            }
            "--retry-seed" => {
                policy.seed = value_for("--retry-seed")?
                    .parse()
                    .map_err(|_| usage("--retry-seed wants an integer".into()))?;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: udt-client [--addr HOST:PORT] [--timeout-ms MS] \
                     [--retries N] [--retry-base-ms MS] [--retry-seed N] \
                     <classify MODEL (--point CSV | --uniform LO,HI[,SAMPLES]) | \
                     stats [--format json|prometheus] | \
                     load NAME PATH | swap NAME PATH | shutdown>"
                );
                return Ok(String::new());
            }
            other => command.push(other.to_string()),
        }
    }
    let command = parse_command(&command).map_err(CliError::Usage)?;
    // Each attempt gets a fresh connection: after a transport failure or
    // a shed, the old socket proves nothing about the next try.
    let result = policy.run(|attempt| {
        if attempt > 0 {
            eprintln!(
                "udt-client: transient failure, retry {attempt}/{}",
                policy.attempts - 1
            );
        }
        let mut client = match timeout {
            Some(t) => Client::connect_with_timeout(&addr, t),
            None => Client::connect(&addr),
        }
        .map_err(|e| ServeError::Io(format!("cannot connect to {addr}: {e}")))?;
        execute(&mut client, &command)
    });
    result.map_err(|e| match e {
        // Usage-shaped problems were rejected before the first connect,
        // so an error here is the wire's fault or the server's word.
        ServeError::Io(_) | ServeError::Protocol(_) => CliError::Transport(e.to_string()),
        other => CliError::Server(other.to_string()),
    })
}

/// Validates the positional arguments into a [`Command`].
fn parse_command(command: &[String]) -> Result<Command, String> {
    match command.first().map(String::as_str) {
        Some("classify") => {
            let model = command
                .get(1)
                .ok_or("classify needs a MODEL name")?
                .to_string();
            let tuple = parse_tuple(&command[2..])?;
            Ok(Command::Classify { model, tuple })
        }
        Some("stats") => {
            // `stats [--format json|prometheus]`, parsed by the
            // canonical `StatsFormat` parser the wire field shares.
            let format = match command.get(1).map(String::as_str) {
                None => StatsFormat::Json,
                Some("--format") => {
                    let raw = command.get(2).ok_or("--format needs a value")?;
                    raw.parse().map_err(|e| format!("{e}"))?
                }
                Some(other) => return Err(format!("unknown stats argument `{other}`")),
            };
            Ok(Command::Stats { format })
        }
        Some("load") | Some("swap") => {
            let name = command.get(1).ok_or("load/swap needs NAME PATH")?.clone();
            let path = command.get(2).ok_or("load/swap needs NAME PATH")?.clone();
            if command[0] == "load" {
                Ok(Command::Load { name, path })
            } else {
                Ok(Command::Swap { name, path })
            }
        }
        Some("shutdown") => Ok(Command::Shutdown),
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("no command given (try --help)".to_string()),
    }
}

/// Runs one validated command over a connected client and renders its
/// output (printed only after the retry loop settles on success).
fn execute(client: &mut Client, command: &Command) -> udt_serve::Result<String> {
    let mut out = String::new();
    match command {
        Command::Classify { model, tuple } => {
            let (distribution, label) = client.classify(model, tuple)?;
            let _ = writeln!(out, "label: {label}");
            for (c, p) in distribution.iter().enumerate() {
                let _ = writeln!(out, "P(class {c}) = {p:.6}");
            }
        }
        Command::Stats { format } => {
            if *format == StatsFormat::Prometheus {
                let _ = write!(out, "{}", client.stats_prometheus()?);
                return Ok(out);
            }
            let stats = client.stats()?;
            let _ = writeln!(out, "uptime: {:.1}s", stats.uptime_seconds);
            let _ = writeln!(
                out,
                "queue: {} workers, depth {}/{} jobs, flush at {} tuples or {} us, \
                 policy {}, deadline {}",
                stats.queue.workers,
                stats.queue.depth,
                stats.queue.capacity,
                stats.queue.max_batch_tuples,
                stats.queue.max_delay_us,
                stats.queue.policy,
                if stats.queue.deadline_ms == 0 {
                    "none".to_string()
                } else {
                    format!("{} ms", stats.queue.deadline_ms)
                }
            );
            let _ = writeln!(
                out,
                "health: {} sheds, {} deadline drops, {} worker panics, \
                 {} rejected connections, queue wait p50 {:.1} us p99 {:.1} us",
                stats.health.sheds,
                stats.health.deadline_drops,
                stats.health.worker_panics,
                stats.health.rejected_connections,
                stats.health.queue_wait_p50_us,
                stats.health.queue_wait_p99_us
            );
            for m in &stats.models {
                let _ = writeln!(
                    out,
                    "model {} (gen {}): {} nodes, {} leaves, depth {}, {} classes, {} bytes",
                    m.name, m.generation, m.nodes, m.leaves, m.depth, m.n_classes, m.heap_bytes
                );
            }
            for s in &stats.metrics {
                let _ = writeln!(
                    out,
                    "traffic {}: {} requests, {} tuples, {} errors, \
                     p50 {:.1} us, p95 {:.1} us, p99 {:.1} us",
                    s.model, s.requests, s.tuples, s.errors, s.p50_us, s.p95_us, s.p99_us
                );
            }
        }
        Command::Load { name, path } => {
            let info = client.load_model(name, path)?;
            let _ = writeln!(
                out,
                "model {} (gen {}): {} nodes, {} bytes",
                info.name, info.generation, info.nodes, info.heap_bytes
            );
        }
        Command::Swap { name, path } => {
            let info = client.swap(name, path)?;
            let _ = writeln!(
                out,
                "model {} (gen {}): {} nodes, {} bytes",
                info.name, info.generation, info.nodes, info.heap_bytes
            );
        }
        Command::Shutdown => {
            client.shutdown()?;
            let _ = writeln!(out, "server shutting down");
        }
    }
    Ok(out)
}

/// Parses `--point CSV` or `--uniform LO,HI[,SAMPLES]` into a tuple.
fn parse_tuple(spec: &[String]) -> Result<Tuple, String> {
    match spec.first().map(String::as_str) {
        Some("--point") => {
            let csv = spec.get(1).ok_or("--point needs comma-separated values")?;
            let values: Result<Vec<f64>, _> =
                csv.split(',').map(str::trim).map(str::parse).collect();
            let values = values.map_err(|_| format!("--point: `{csv}` is not numeric CSV"))?;
            if values.is_empty() {
                return Err("--point needs at least one value".into());
            }
            Ok(Tuple::from_points(&values, 0))
        }
        Some("--uniform") => {
            let csv = spec.get(1).ok_or("--uniform needs LO,HI[,SAMPLES]")?;
            let parts: Vec<&str> = csv.split(',').map(str::trim).collect();
            if parts.len() < 2 || parts.len() > 3 {
                return Err(format!("--uniform: `{csv}` is not LO,HI[,SAMPLES]"));
            }
            let lo: f64 = parts[0]
                .parse()
                .map_err(|_| format!("--uniform: bad LO `{}`", parts[0]))?;
            let hi: f64 = parts[1]
                .parse()
                .map_err(|_| format!("--uniform: bad HI `{}`", parts[1]))?;
            let samples: usize = match parts.get(2) {
                Some(s) => s
                    .parse()
                    .map_err(|_| format!("--uniform: bad SAMPLES `{s}`"))?,
                None => 16,
            };
            if samples < 2 || !(hi > lo) {
                return Err("--uniform needs HI > LO and SAMPLES >= 2".into());
            }
            let step = (hi - lo) / (samples - 1) as f64;
            let points: Vec<f64> = (0..samples).map(|i| lo + step * i as f64).collect();
            let mass = vec![1.0 / samples as f64; samples];
            let pdf = SampledPdf::new(points, mass)
                .map_err(|e| format!("--uniform: invalid pdf: {e}"))?;
            Ok(Tuple::new(vec![UncertainValue::Numeric(pdf)], 0))
        }
        _ => Err("classify needs --point CSV or --uniform LO,HI[,SAMPLES]".into()),
    }
}
