//! The `udt-serve` server binary.
//!
//! ```text
//! udt-serve [--addr HOST:PORT] [--workers N] [--max-batch TUPLES]
//!           [--max-delay-us MICROS] [--queue-capacity JOBS]
//!           [--queue-policy block|shed] [--request-deadline-ms MS]
//!           [--drain-deadline-ms MS] [--max-connections N]
//!           [--idle-timeout-ms MS] [--write-timeout-ms MS]
//!           [--faults SPEC] [--fault-seed N]
//!           [--model NAME=PATH]... [--preload NAME=PATH]...
//!           [--train-toy NAME]
//!           [--partition-mode owned|view] [--threads auto|N]
//! ```
//!
//! Loads every `--model` file into the registry (refusing to start on a
//! corrupt model — better to fail loud at boot than at first request),
//! loads every `--preload` file best-effort (a corrupt or unreadable
//! file is *quarantined*: counted, logged, surfaced by the `health`
//! request — and the server starts without it, so one bad artifact in a
//! model directory cannot take a whole replica down), optionally trains
//! the paper's Table 1 toy model in-process, prints one
//! `udt-serve listening on ADDR` line (scripts wait for it), and
//! serves until a `shutdown` request arrives. The robustness knobs are
//! also env-settable (`UDT_QUEUE_POLICY`, `UDT_REQUEST_DEADLINE_MS`,
//! `UDT_DRAIN_DEADLINE_MS`, `UDT_FAULTS`, `UDT_FAULT_SEED`); flags win.

use std::io::Write;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use udt_serve::{ModelRegistry, ServeConfig};
use udt_tree::{Algorithm, TreeBuilder, UdtConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: udt-serve [--addr HOST:PORT] [--workers N] [--max-batch TUPLES] \
             [--max-delay-us MICROS] [--queue-capacity JOBS] \
             [--queue-policy block|shed] [--request-deadline-ms MS] \
             [--drain-deadline-ms MS] [--max-connections N] [--idle-timeout-ms MS] \
             [--write-timeout-ms MS] [--faults SPEC] [--fault-seed N] \
             [--model NAME=PATH]... [--preload NAME=PATH]... \
             [--train-toy NAME] [--partition-mode owned|view] [--threads auto|N]"
        );
        return ExitCode::SUCCESS;
    }
    let config = match ServeConfig::from_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("udt-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "udt-serve: queue policy {}, request deadline {}, max {} connections",
        config.queue_policy.name(),
        config
            .request_deadline
            .map(|d| format!("{} ms", d.as_millis()))
            .unwrap_or_else(|| "none".to_string()),
        config.max_connections
    );
    if !config.faults.is_empty() {
        eprintln!(
            "udt-serve: WARNING: {} fault(s) armed (seed {}) — chaos testing mode",
            config.faults.specs.len(),
            config.faults.seed
        );
    }

    let registry = Arc::new(ModelRegistry::new());
    for (name, path) in &config.models {
        match registry.load(name, Path::new(path)) {
            Ok(info) => eprintln!(
                "udt-serve: loaded model {name} from {} ({} nodes, {} bytes)",
                path.display(),
                info.nodes,
                info.heap_bytes
            ),
            Err(e) => {
                eprintln!(
                    "udt-serve: could not load {name} from {}: {e}",
                    path.display()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    for (name, path) in &config.preload {
        match registry.load(name, Path::new(path)) {
            Ok(info) => eprintln!(
                "udt-serve: preloaded model {name} from {} ({} nodes, {} bytes)",
                path.display(),
                info.nodes,
                info.heap_bytes
            ),
            Err(e) => {
                // Best-effort by contract: quarantine the file and keep
                // booting so one corrupt artifact cannot down a replica.
                registry.record_quarantined();
                eprintln!(
                    "udt-serve: quarantined {name} from {}: {e} (starting without it)",
                    path.display()
                );
            }
        }
    }
    if let Some(name) = &config.train_toy {
        let data = match udt_data::toy::table1_dataset() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("udt-serve: toy data failed to build: {e}");
                return ExitCode::FAILURE;
            }
        };
        let built = TreeBuilder::new(
            UdtConfig::new(Algorithm::UdtEs)
                .with_postprune(false)
                .with_min_node_weight(0.0)
                .with_partition_mode(config.partition_mode)
                .with_threads(config.threads),
        )
        .build(&data);
        match built {
            Ok(report) => match registry.insert_tree(name, report.tree) {
                Ok(info) => eprintln!(
                    "udt-serve: trained toy model {name} ({} nodes, partition mode {})",
                    info.nodes,
                    config.partition_mode.name()
                ),
                Err(e) => {
                    eprintln!("udt-serve: could not register toy model {name}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("udt-serve: toy model training failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    match udt_serve::server::serve_until_shutdown(&config, registry, |addr| {
        // Stdout, flushed: the smoke script parses this line to learn
        // the ephemeral port.
        println!("udt-serve listening on {addr}");
        let _ = std::io::stdout().flush();
    }) {
        Ok(()) => {
            eprintln!("udt-serve: clean shutdown");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("udt-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
