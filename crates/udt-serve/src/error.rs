//! Error type for the serving subsystem.

use udt_tree::TreeError;

/// Errors produced by the serving layer.
///
/// I/O errors are carried as rendered strings rather than
/// [`std::io::Error`] values so the type stays `Clone + PartialEq` —
/// responses cross thread and socket boundaries, and the wire protocol
/// flattens every error to a message anyway.
#[derive(Debug, Clone, PartialEq, thiserror::Error)]
pub enum ServeError {
    /// A socket or file operation failed.
    #[error("i/o error: {0}")]
    Io(String),

    /// A request or response line was not valid protocol JSON.
    #[error("protocol error: {0}")]
    Protocol(String),

    /// A request referenced a model name the registry does not hold.
    #[error("unknown model {0}")]
    UnknownModel(String),

    /// `load_model` targeted a name that is already bound (use `swap`).
    #[error("model {0} is already loaded; use swap to replace it")]
    ModelExists(String),

    /// The micro-batching queue has been shut down.
    #[error("the serving queue is shut down")]
    QueueClosed,

    /// The server reported an error for a request (client side).
    #[error("server error: {0}")]
    Remote(String),

    /// The server configuration was invalid.
    #[error("invalid serve configuration: {0}")]
    Config(String),

    /// An error bubbled up from the tree layer (model loading,
    /// classification).
    #[error("tree error: {0}")]
    Tree(#[from] TreeError),
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        assert!(ServeError::UnknownModel("iris".into())
            .to_string()
            .contains("iris"));
        assert!(ServeError::ModelExists("iris".into())
            .to_string()
            .contains("swap"));
        let io: ServeError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
        let tree: ServeError = TreeError::NoClasses.into();
        assert!(tree.to_string().contains("classes"));
    }
}
