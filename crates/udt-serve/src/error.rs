//! Error type for the serving subsystem.

use udt_tree::TreeError;

/// Errors produced by the serving layer.
///
/// I/O errors are carried as rendered strings rather than
/// [`std::io::Error`] values so the type stays `Clone + PartialEq` —
/// responses cross thread and socket boundaries, and the wire protocol
/// flattens every error to a message anyway.
#[derive(Debug, Clone, PartialEq, thiserror::Error)]
pub enum ServeError {
    /// A socket or file operation failed.
    #[error("i/o error: {0}")]
    Io(String),

    /// A request or response line was not valid protocol JSON.
    #[error("protocol error: {0}")]
    Protocol(String),

    /// A request referenced a model name the registry does not hold.
    #[error("unknown model {0}")]
    UnknownModel(String),

    /// `load_model` targeted a name that is already bound (use `swap`).
    #[error("model {0} is already loaded; use swap to replace it")]
    ModelExists(String),

    /// The micro-batching queue has been shut down.
    #[error("the serving queue is shut down")]
    QueueClosed,

    /// The request queue was at capacity and the shed policy (or a
    /// bounded submit wait) rejected the request instead of blocking.
    #[error("server overloaded: the request queue is at capacity")]
    Overloaded,

    /// The request sat in the queue past its deadline and was dropped at
    /// dequeue without being classified.
    #[error("deadline exceeded: the request expired in the serving queue")]
    DeadlineExceeded,

    /// A worker panicked while serving the micro-batch containing this
    /// request. The panic is caught per job; the rest of the batch and
    /// the server keep serving.
    #[error("a serving worker panicked: {0}")]
    WorkerPanic(String),

    /// The server reported an error for a request (client side). Carries
    /// the structured wire code alongside the message so callers can
    /// classify failures they do not map to a typed variant.
    #[error("server error ({code}): {message}")]
    Remote {
        /// The structured error code from the wire (`"error"` when the
        /// server predates codes).
        code: String,
        /// Human-readable failure description.
        message: String,
    },

    /// The server configuration was invalid.
    #[error("invalid serve configuration: {0}")]
    Config(String),

    /// An error bubbled up from the tree layer (model loading,
    /// classification).
    #[error("tree error: {0}")]
    Tree(#[from] TreeError),
}

impl ServeError {
    /// The structured wire code for this error, carried in the `"code"`
    /// field of error responses so clients can react to the *kind* of
    /// failure (shed vs. deadline vs. bad request) without parsing
    /// message text.
    pub fn code(&self) -> &str {
        match self {
            ServeError::Io(_) => "io",
            ServeError::Protocol(_) => "bad_request",
            ServeError::UnknownModel(_) => "unknown_model",
            ServeError::ModelExists(_) => "model_exists",
            ServeError::QueueClosed => "shutting_down",
            ServeError::Overloaded => "overloaded",
            ServeError::DeadlineExceeded => "deadline_exceeded",
            ServeError::WorkerPanic(_) => "internal",
            ServeError::Remote { code, .. } => code,
            ServeError::Config(_) => "config",
            ServeError::Tree(_) => "model",
        }
    }

    /// Whether a retry (on a fresh connection) has a reasonable chance
    /// of succeeding: transport failures and transient server states.
    /// Bad requests, unknown models and config errors are permanent and
    /// retrying them only adds load.
    pub fn is_transient(&self) -> bool {
        match self {
            ServeError::Io(_)
            | ServeError::Overloaded
            | ServeError::DeadlineExceeded
            | ServeError::WorkerPanic(_)
            | ServeError::QueueClosed => true,
            ServeError::Remote { code, .. } => {
                matches!(
                    code.as_str(),
                    "overloaded" | "deadline_exceeded" | "internal" | "shutting_down"
                )
            }
            _ => false,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        assert!(ServeError::UnknownModel("iris".into())
            .to_string()
            .contains("iris"));
        assert!(ServeError::ModelExists("iris".into())
            .to_string()
            .contains("swap"));
        let io: ServeError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
        let tree: ServeError = TreeError::NoClasses.into();
        assert!(tree.to_string().contains("classes"));
    }

    #[test]
    fn codes_and_transience_classify_the_failure_modes() {
        assert_eq!(ServeError::Overloaded.code(), "overloaded");
        assert_eq!(ServeError::DeadlineExceeded.code(), "deadline_exceeded");
        assert_eq!(ServeError::WorkerPanic("boom".into()).code(), "internal");
        assert_eq!(ServeError::UnknownModel("x".into()).code(), "unknown_model");
        assert_eq!(ServeError::QueueClosed.code(), "shutting_down");

        // Transient: worth a retry on a fresh connection.
        assert!(ServeError::Overloaded.is_transient());
        assert!(ServeError::DeadlineExceeded.is_transient());
        assert!(ServeError::Io("reset".into()).is_transient());
        assert!(ServeError::WorkerPanic("boom".into()).is_transient());
        let remote = ServeError::Remote {
            code: "overloaded".into(),
            message: "queue full".into(),
        };
        assert!(remote.is_transient());
        assert!(remote.to_string().contains("overloaded"));

        // Permanent: retrying only adds load.
        assert!(!ServeError::UnknownModel("x".into()).is_transient());
        assert!(!ServeError::Protocol("bad".into()).is_transient());
        assert!(!ServeError::Remote {
            code: "unknown_model".into(),
            message: "nope".into()
        }
        .is_transient());
    }
}
