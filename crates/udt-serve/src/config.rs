//! Server configuration and flag parsing for the `udt-serve` binary.

use std::path::PathBuf;
use std::time::Duration;

use udt_tree::{PartitionMode, ThreadCount};

use crate::batcher::BatchOptions;
use crate::error::ServeError;
use crate::Result;

/// Configuration for a serving process.
///
/// Built either programmatically (tests, benches) or from CLI flags via
/// [`ServeConfig::from_args`]:
///
/// ```text
/// udt-serve [--addr HOST:PORT] [--workers N] [--max-batch TUPLES]
///           [--max-delay-us MICROS] [--queue-capacity JOBS]
///           [--model NAME=PATH]... [--train-toy NAME]
///           [--partition-mode owned|view] [--threads auto|N]
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Listen address (`127.0.0.1:7878` by default; port 0 asks the OS
    /// for an ephemeral port, which the binary prints on startup).
    pub addr: String,
    /// Scheduler worker threads.
    pub workers: usize,
    /// Micro-batch flush threshold in tuples.
    pub max_batch_tuples: usize,
    /// Micro-batch flush threshold in time.
    pub max_delay: Duration,
    /// Bounded queue capacity in jobs.
    pub queue_capacity: usize,
    /// Models to load at startup, as `(name, path)` pairs.
    pub models: Vec<(String, PathBuf)>,
    /// When set, train the paper's Table 1 toy model in-process at
    /// startup and serve it under this name — lets the smoke test and
    /// walkthrough start a useful server with no model file at hand.
    pub train_toy: Option<String>,
    /// Partition mode used when training startup models (`--train-toy`);
    /// parsed by the canonical [`PartitionMode`] `FromStr` impl, the same
    /// parser `UDT_PARTITION_MODE` goes through.
    pub partition_mode: PartitionMode,
    /// Build-pool thread budget used when training startup models;
    /// parsed by the canonical [`ThreadCount`] `FromStr` impl, the same
    /// parser `UDT_THREADS` goes through (which also supplies the
    /// default).
    pub threads: ThreadCount,
}

impl Default for ServeConfig {
    fn default() -> Self {
        // The scheduler defaults have one source of truth:
        // `BatchOptions::default()`.
        let batch = BatchOptions::default();
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: batch.workers,
            max_batch_tuples: batch.max_batch_tuples,
            max_delay: batch.max_delay,
            queue_capacity: batch.queue_capacity,
            models: Vec::new(),
            train_toy: None,
            partition_mode: PartitionMode::from_env(),
            threads: ThreadCount::from_env(),
        }
    }
}

impl ServeConfig {
    /// The scheduler options this configuration implies.
    pub fn batch_options(&self) -> BatchOptions {
        BatchOptions {
            workers: self.workers,
            max_batch_tuples: self.max_batch_tuples,
            max_delay: self.max_delay,
            queue_capacity: self.queue_capacity,
        }
    }

    /// Parses CLI flags (everything after the program name). Unknown
    /// flags, missing values and malformed numbers are configuration
    /// errors naming the offending flag.
    pub fn from_args<I, S>(args: I) -> Result<ServeConfig>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut config = ServeConfig::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let arg = arg.as_ref();
            let mut value_for = |flag: &str| -> Result<String> {
                args.next()
                    .map(|v| v.as_ref().to_string())
                    .ok_or_else(|| ServeError::Config(format!("{flag} needs a value")))
            };
            match arg {
                "--addr" => config.addr = value_for("--addr")?,
                "--workers" => config.workers = parse_num(&value_for("--workers")?, "--workers")?,
                "--max-batch" => {
                    config.max_batch_tuples = parse_num(&value_for("--max-batch")?, "--max-batch")?
                }
                "--max-delay-us" => {
                    let us: u64 = parse_num(&value_for("--max-delay-us")?, "--max-delay-us")?;
                    config.max_delay = Duration::from_micros(us);
                }
                "--queue-capacity" => {
                    config.queue_capacity =
                        parse_num(&value_for("--queue-capacity")?, "--queue-capacity")?
                }
                "--model" => {
                    let spec = value_for("--model")?;
                    let (name, path) = spec.split_once('=').ok_or_else(|| {
                        ServeError::Config(format!("--model expects NAME=PATH, got `{spec}`"))
                    })?;
                    if name.is_empty() || path.is_empty() {
                        return Err(ServeError::Config(format!(
                            "--model expects NAME=PATH, got `{spec}`"
                        )));
                    }
                    config.models.push((name.to_string(), PathBuf::from(path)));
                }
                "--train-toy" => config.train_toy = Some(value_for("--train-toy")?),
                "--partition-mode" => {
                    let raw = value_for("--partition-mode")?;
                    // The one canonical parser (shared with
                    // `UDT_PARTITION_MODE`): satellite of ISSUE 4.
                    config.partition_mode = raw.parse().map_err(|_| {
                        ServeError::Config(format!(
                            "--partition-mode must be `owned` or `view`, got `{raw}`"
                        ))
                    })?;
                }
                "--threads" => {
                    let raw = value_for("--threads")?;
                    // The one canonical parser (shared with
                    // `UDT_THREADS`).
                    config.threads = raw.parse().map_err(|_| {
                        ServeError::Config(format!(
                            "--threads must be `auto` or an integer >= 1, got `{raw}`"
                        ))
                    })?;
                }
                other => {
                    return Err(ServeError::Config(format!("unknown flag `{other}`")));
                }
            }
        }
        if config.workers == 0 {
            return Err(ServeError::Config("--workers must be at least 1".into()));
        }
        if config.max_batch_tuples == 0 {
            return Err(ServeError::Config("--max-batch must be at least 1".into()));
        }
        if config.queue_capacity == 0 {
            return Err(ServeError::Config(
                "--queue-capacity must be at least 1".into(),
            ));
        }
        Ok(config)
    }
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T> {
    raw.parse()
        .map_err(|_| ServeError::Config(format!("{flag}: `{raw}` is not a valid number")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::default();
        assert_eq!(c.workers, 2);
        assert!(c.max_batch_tuples > 0);
        assert!(c.queue_capacity > 0);
        assert!(c.models.is_empty());
        let b = c.batch_options();
        assert_eq!(b.workers, c.workers);
        assert_eq!(b.max_batch_tuples, c.max_batch_tuples);
    }

    #[test]
    fn full_flag_set_parses() {
        let c = ServeConfig::from_args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "4",
            "--max-batch",
            "128",
            "--max-delay-us",
            "250",
            "--queue-capacity",
            "64",
            "--model",
            "iris=models/iris.json",
            "--model",
            "toy=models/toy.json",
            "--train-toy",
            "demo",
            "--partition-mode",
            "OWNED",
            "--threads",
            "4",
        ])
        .unwrap();
        assert_eq!(c.addr, "127.0.0.1:0");
        assert_eq!(c.workers, 4);
        assert_eq!(c.max_batch_tuples, 128);
        assert_eq!(c.max_delay, Duration::from_micros(250));
        assert_eq!(c.queue_capacity, 64);
        assert_eq!(c.models.len(), 2);
        assert_eq!(c.models[0].0, "iris");
        assert_eq!(c.models[1].1, PathBuf::from("models/toy.json"));
        assert_eq!(c.train_toy.as_deref(), Some("demo"));
        assert_eq!(c.partition_mode, PartitionMode::Owned);
        assert_eq!(c.threads, ThreadCount::fixed(4));
    }

    #[test]
    fn threads_flag_accepts_auto_and_rejects_bad_values() {
        let c = ServeConfig::from_args(["--threads", "auto"]).unwrap();
        assert!(c.threads.is_auto());
        for bad in ["0", "many"] {
            let err = ServeConfig::from_args(["--threads", bad]).unwrap_err();
            assert!(
                err.to_string().contains("--threads"),
                "{bad:?} should name the flag, got: {err}"
            );
        }
    }

    #[test]
    fn bad_flags_name_themselves() {
        for (args, needle) in [
            (vec!["--frobnicate"], "--frobnicate"),
            (vec!["--workers"], "--workers"),
            (vec!["--workers", "many"], "--workers"),
            (vec!["--workers", "0"], "--workers"),
            (vec!["--max-batch", "0"], "--max-batch"),
            (vec!["--queue-capacity", "0"], "--queue-capacity"),
            (vec!["--model", "nameonly"], "NAME=PATH"),
            (vec!["--model", "=path"], "NAME=PATH"),
            (vec!["--partition-mode", "both"], "owned"),
        ] {
            let err = ServeConfig::from_args(args.clone()).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{args:?} should mention {needle}, got: {err}"
            );
        }
    }
}
