//! Server configuration and flag parsing for the `udt-serve` binary.

use std::path::PathBuf;
use std::time::Duration;

use udt_tree::{PartitionMode, ThreadCount};

use crate::batcher::{BatchOptions, QueuePolicy};
use crate::error::ServeError;
use crate::faults::FaultPlan;
use crate::Result;

/// Configuration for a serving process.
///
/// Built either programmatically (tests, benches) or from CLI flags via
/// [`ServeConfig::from_args`]:
///
/// ```text
/// udt-serve [--addr HOST:PORT] [--workers N] [--max-batch TUPLES]
///           [--max-delay-us MICROS] [--queue-capacity JOBS]
///           [--queue-policy block|shed] [--request-deadline-ms MS]
///           [--drain-deadline-ms MS] [--max-connections N]
///           [--idle-timeout-ms MS] [--write-timeout-ms MS]
///           [--faults SPEC] [--fault-seed N]
///           [--model NAME=PATH]... [--preload NAME=PATH]...
///           [--train-toy NAME]
///           [--partition-mode owned|view] [--threads auto|N]
/// ```
///
/// `from_args` also honours the env knobs `UDT_QUEUE_POLICY`,
/// `UDT_REQUEST_DEADLINE_MS`, `UDT_DRAIN_DEADLINE_MS`, `UDT_FAULTS` and
/// `UDT_FAULT_SEED` (flags win over env).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Listen address (`127.0.0.1:7878` by default; port 0 asks the OS
    /// for an ephemeral port, which the binary prints on startup).
    pub addr: String,
    /// Scheduler worker threads.
    pub workers: usize,
    /// Micro-batch flush threshold in tuples.
    pub max_batch_tuples: usize,
    /// Micro-batch flush threshold in time.
    pub max_delay: Duration,
    /// Bounded queue capacity in jobs.
    pub queue_capacity: usize,
    /// Admission behaviour when the queue is full: block or shed.
    pub queue_policy: QueuePolicy,
    /// End-to-end request budget (submit wait + queue residence); `None`
    /// disables deadline handling.
    pub request_deadline: Option<Duration>,
    /// How long shutdown waits for in-flight connections to finish
    /// before abandoning them and draining the queue.
    pub drain_deadline: Duration,
    /// Maximum concurrently served connections; excess connections get a
    /// structured `overloaded` error and are closed immediately.
    pub max_connections: usize,
    /// Disconnect a connection after this long without a complete
    /// request (`None` = never; a stalled peer then only costs its
    /// thread).
    pub idle_timeout: Option<Duration>,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// Fault-injection plan (empty in production).
    pub faults: FaultPlan,
    /// Models to load at startup, as `(name, path)` pairs. A corrupt or
    /// unreadable file refuses startup — these models are *required*.
    pub models: Vec<(String, PathBuf)>,
    /// Best-effort startup models: a corrupt or unreadable file is
    /// quarantined (counted, logged, surfaced by `health`) and the
    /// server starts without it instead of dying.
    pub preload: Vec<(String, PathBuf)>,
    /// When set, train the paper's Table 1 toy model in-process at
    /// startup and serve it under this name — lets the smoke test and
    /// walkthrough start a useful server with no model file at hand.
    pub train_toy: Option<String>,
    /// Partition mode used when training startup models (`--train-toy`);
    /// parsed by the canonical [`PartitionMode`] `FromStr` impl, the same
    /// parser `UDT_PARTITION_MODE` goes through.
    pub partition_mode: PartitionMode,
    /// Build-pool thread budget used when training startup models;
    /// parsed by the canonical [`ThreadCount`] `FromStr` impl, the same
    /// parser `UDT_THREADS` goes through (which also supplies the
    /// default).
    pub threads: ThreadCount,
}

impl Default for ServeConfig {
    fn default() -> Self {
        // The scheduler defaults have one source of truth:
        // `BatchOptions::default()`.
        let batch = BatchOptions::default();
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: batch.workers,
            max_batch_tuples: batch.max_batch_tuples,
            max_delay: batch.max_delay,
            queue_capacity: batch.queue_capacity,
            queue_policy: batch.queue_policy,
            request_deadline: batch.request_deadline,
            drain_deadline: Duration::from_millis(5_000),
            max_connections: 256,
            idle_timeout: None,
            write_timeout: Duration::from_secs(10),
            faults: FaultPlan::default(),
            models: Vec::new(),
            preload: Vec::new(),
            train_toy: None,
            partition_mode: PartitionMode::from_env(),
            threads: ThreadCount::from_env(),
        }
    }
}

impl ServeConfig {
    /// The scheduler options this configuration implies. The fault
    /// injector stays disabled here — the server arms one injector from
    /// the plan and shares it across the batcher and the connection
    /// layer, so counters do not split.
    pub fn batch_options(&self) -> BatchOptions {
        BatchOptions {
            workers: self.workers,
            max_batch_tuples: self.max_batch_tuples,
            max_delay: self.max_delay,
            queue_capacity: self.queue_capacity,
            queue_policy: self.queue_policy,
            request_deadline: self.request_deadline,
            ..BatchOptions::default()
        }
    }

    /// Applies the serving env knobs (`UDT_QUEUE_POLICY`,
    /// `UDT_REQUEST_DEADLINE_MS`, `UDT_DRAIN_DEADLINE_MS`, `UDT_FAULTS`,
    /// `UDT_FAULT_SEED`). Malformed values are configuration errors —
    /// refusing to start beats silently serving with the wrong policy.
    pub fn apply_env(&mut self) -> Result<()> {
        if let Ok(raw) = std::env::var("UDT_QUEUE_POLICY") {
            self.queue_policy = raw.parse().map_err(|_| {
                ServeError::Config(format!(
                    "UDT_QUEUE_POLICY must be `block` or `shed`, got `{raw}`"
                ))
            })?;
        }
        if let Ok(raw) = std::env::var("UDT_REQUEST_DEADLINE_MS") {
            let ms: u64 = raw.trim().parse().map_err(|_| {
                ServeError::Config(format!(
                    "UDT_REQUEST_DEADLINE_MS: `{raw}` is not an integer"
                ))
            })?;
            self.request_deadline = (ms > 0).then(|| Duration::from_millis(ms));
        }
        if let Ok(raw) = std::env::var("UDT_DRAIN_DEADLINE_MS") {
            let ms: u64 = raw.trim().parse().map_err(|_| {
                ServeError::Config(format!("UDT_DRAIN_DEADLINE_MS: `{raw}` is not an integer"))
            })?;
            self.drain_deadline = Duration::from_millis(ms);
        }
        self.faults = FaultPlan::from_env()?;
        Ok(())
    }

    /// Parses CLI flags (everything after the program name). Unknown
    /// flags, missing values and malformed numbers are configuration
    /// errors naming the offending flag.
    pub fn from_args<I, S>(args: I) -> Result<ServeConfig>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut config = ServeConfig::default();
        config.apply_env()?;
        let mut fault_seed: Option<u64> = None;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let arg = arg.as_ref();
            let mut value_for = |flag: &str| -> Result<String> {
                args.next()
                    .map(|v| v.as_ref().to_string())
                    .ok_or_else(|| ServeError::Config(format!("{flag} needs a value")))
            };
            match arg {
                "--addr" => config.addr = value_for("--addr")?,
                "--workers" => config.workers = parse_num(&value_for("--workers")?, "--workers")?,
                "--max-batch" => {
                    config.max_batch_tuples = parse_num(&value_for("--max-batch")?, "--max-batch")?
                }
                "--max-delay-us" => {
                    let us: u64 = parse_num(&value_for("--max-delay-us")?, "--max-delay-us")?;
                    config.max_delay = Duration::from_micros(us);
                }
                "--queue-capacity" => {
                    config.queue_capacity =
                        parse_num(&value_for("--queue-capacity")?, "--queue-capacity")?
                }
                "--queue-policy" => {
                    let raw = value_for("--queue-policy")?;
                    config.queue_policy = raw.parse().map_err(|_| {
                        ServeError::Config(format!(
                            "--queue-policy must be `block` or `shed`, got `{raw}`"
                        ))
                    })?;
                }
                "--request-deadline-ms" => {
                    let ms: u64 = parse_num(
                        &value_for("--request-deadline-ms")?,
                        "--request-deadline-ms",
                    )?;
                    // 0 disables, so scripts can override an env deadline
                    // away without unsetting the var.
                    config.request_deadline = (ms > 0).then(|| Duration::from_millis(ms));
                }
                "--drain-deadline-ms" => {
                    let ms: u64 =
                        parse_num(&value_for("--drain-deadline-ms")?, "--drain-deadline-ms")?;
                    config.drain_deadline = Duration::from_millis(ms);
                }
                "--max-connections" => {
                    config.max_connections =
                        parse_num(&value_for("--max-connections")?, "--max-connections")?
                }
                "--idle-timeout-ms" => {
                    let ms: u64 = parse_num(&value_for("--idle-timeout-ms")?, "--idle-timeout-ms")?;
                    config.idle_timeout = (ms > 0).then(|| Duration::from_millis(ms));
                }
                "--write-timeout-ms" => {
                    let ms: u64 =
                        parse_num(&value_for("--write-timeout-ms")?, "--write-timeout-ms")?;
                    if ms == 0 {
                        return Err(ServeError::Config(
                            "--write-timeout-ms must be at least 1".into(),
                        ));
                    }
                    config.write_timeout = Duration::from_millis(ms);
                }
                "--faults" => {
                    let spec = value_for("--faults")?;
                    config.faults = FaultPlan::parse(&spec, config.faults.seed)?;
                }
                "--fault-seed" => {
                    fault_seed = Some(parse_num(&value_for("--fault-seed")?, "--fault-seed")?);
                }
                "--model" => {
                    let spec = value_for("--model")?;
                    config.models.push(parse_model_spec(&spec, "--model")?);
                }
                "--preload" => {
                    let spec = value_for("--preload")?;
                    config.preload.push(parse_model_spec(&spec, "--preload")?);
                }
                "--train-toy" => config.train_toy = Some(value_for("--train-toy")?),
                "--partition-mode" => {
                    let raw = value_for("--partition-mode")?;
                    // The one canonical parser (shared with
                    // `UDT_PARTITION_MODE`): satellite of ISSUE 4.
                    config.partition_mode = raw.parse().map_err(|_| {
                        ServeError::Config(format!(
                            "--partition-mode must be `owned` or `view`, got `{raw}`"
                        ))
                    })?;
                }
                "--threads" => {
                    let raw = value_for("--threads")?;
                    // The one canonical parser (shared with
                    // `UDT_THREADS`).
                    config.threads = raw.parse().map_err(|_| {
                        ServeError::Config(format!(
                            "--threads must be `auto` or an integer >= 1, got `{raw}`"
                        ))
                    })?;
                }
                other => {
                    return Err(ServeError::Config(format!("unknown flag `{other}`")));
                }
            }
        }
        if config.workers == 0 {
            return Err(ServeError::Config("--workers must be at least 1".into()));
        }
        if config.max_batch_tuples == 0 {
            return Err(ServeError::Config("--max-batch must be at least 1".into()));
        }
        if config.queue_capacity == 0 {
            return Err(ServeError::Config(
                "--queue-capacity must be at least 1".into(),
            ));
        }
        if config.max_connections == 0 {
            return Err(ServeError::Config(
                "--max-connections must be at least 1".into(),
            ));
        }
        if let Some(seed) = fault_seed {
            // `--fault-seed` may appear before or after `--faults`.
            config.faults.seed = seed;
        }
        Ok(config)
    }
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T> {
    raw.parse()
        .map_err(|_| ServeError::Config(format!("{flag}: `{raw}` is not a valid number")))
}

fn parse_model_spec(spec: &str, flag: &str) -> Result<(String, PathBuf)> {
    let (name, path) = spec
        .split_once('=')
        .filter(|(name, path)| !name.is_empty() && !path.is_empty())
        .ok_or_else(|| ServeError::Config(format!("{flag} expects NAME=PATH, got `{spec}`")))?;
    Ok((name.to_string(), PathBuf::from(path)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::default();
        assert_eq!(c.workers, 2);
        assert!(c.max_batch_tuples > 0);
        assert!(c.queue_capacity > 0);
        assert!(c.models.is_empty());
        let b = c.batch_options();
        assert_eq!(b.workers, c.workers);
        assert_eq!(b.max_batch_tuples, c.max_batch_tuples);
    }

    #[test]
    fn full_flag_set_parses() {
        let c = ServeConfig::from_args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "4",
            "--max-batch",
            "128",
            "--max-delay-us",
            "250",
            "--queue-capacity",
            "64",
            "--model",
            "iris=models/iris.json",
            "--model",
            "toy=models/toy.json",
            "--preload",
            "extra=models/extra.json",
            "--train-toy",
            "demo",
            "--partition-mode",
            "OWNED",
            "--threads",
            "4",
        ])
        .unwrap();
        assert_eq!(c.addr, "127.0.0.1:0");
        assert_eq!(c.workers, 4);
        assert_eq!(c.max_batch_tuples, 128);
        assert_eq!(c.max_delay, Duration::from_micros(250));
        assert_eq!(c.queue_capacity, 64);
        assert_eq!(c.models.len(), 2);
        assert_eq!(c.models[0].0, "iris");
        assert_eq!(c.models[1].1, PathBuf::from("models/toy.json"));
        assert_eq!(
            c.preload,
            vec![("extra".to_string(), PathBuf::from("models/extra.json"))]
        );
        assert_eq!(c.train_toy.as_deref(), Some("demo"));
        assert_eq!(c.partition_mode, PartitionMode::Owned);
        assert_eq!(c.threads, ThreadCount::fixed(4));
    }

    #[test]
    fn threads_flag_accepts_auto_and_rejects_bad_values() {
        let c = ServeConfig::from_args(["--threads", "auto"]).unwrap();
        assert!(c.threads.is_auto());
        for bad in ["0", "many"] {
            let err = ServeConfig::from_args(["--threads", bad]).unwrap_err();
            assert!(
                err.to_string().contains("--threads"),
                "{bad:?} should name the flag, got: {err}"
            );
        }
    }

    #[test]
    fn robustness_flags_parse_and_zero_disables_the_optional_ones() {
        let c = ServeConfig::from_args([
            "--queue-policy",
            "shed",
            "--request-deadline-ms",
            "250",
            "--drain-deadline-ms",
            "1500",
            "--max-connections",
            "8",
            "--idle-timeout-ms",
            "30000",
            "--write-timeout-ms",
            "2000",
            "--faults",
            "panic_in_worker:nth=2",
            "--fault-seed",
            "42",
        ])
        .unwrap();
        assert_eq!(c.queue_policy, QueuePolicy::Shed);
        assert_eq!(c.request_deadline, Some(Duration::from_millis(250)));
        assert_eq!(c.drain_deadline, Duration::from_millis(1500));
        assert_eq!(c.max_connections, 8);
        assert_eq!(c.idle_timeout, Some(Duration::from_millis(30_000)));
        assert_eq!(c.write_timeout, Duration::from_millis(2000));
        assert_eq!(c.faults.specs.len(), 1);
        assert_eq!(c.faults.seed, 42);
        let b = c.batch_options();
        assert_eq!(b.queue_policy, QueuePolicy::Shed);
        assert_eq!(b.request_deadline, Some(Duration::from_millis(250)));
        assert!(
            !b.faults.active(),
            "plans are armed by the server, not here"
        );

        // Zero disables the optional deadlines.
        let c = ServeConfig::from_args(["--request-deadline-ms", "0", "--idle-timeout-ms", "0"])
            .unwrap();
        assert_eq!(c.request_deadline, None);
        assert_eq!(c.idle_timeout, None);
    }

    #[test]
    fn bad_flags_name_themselves() {
        for (args, needle) in [
            (vec!["--frobnicate"], "--frobnicate"),
            (vec!["--workers"], "--workers"),
            (vec!["--workers", "many"], "--workers"),
            (vec!["--workers", "0"], "--workers"),
            (vec!["--max-batch", "0"], "--max-batch"),
            (vec!["--queue-capacity", "0"], "--queue-capacity"),
            (vec!["--queue-policy", "drop"], "--queue-policy"),
            (
                vec!["--request-deadline-ms", "soon"],
                "--request-deadline-ms",
            ),
            (vec!["--max-connections", "0"], "--max-connections"),
            (vec!["--write-timeout-ms", "0"], "--write-timeout-ms"),
            (vec!["--faults", "frobnicate:nth=1"], "frobnicate"),
            (vec!["--fault-seed", "abc"], "--fault-seed"),
            (vec!["--model", "nameonly"], "NAME=PATH"),
            (vec!["--model", "=path"], "NAME=PATH"),
            (vec!["--preload", "nameonly"], "--preload"),
            (vec!["--partition-mode", "both"], "owned"),
        ] {
            let err = ServeConfig::from_args(args.clone()).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{args:?} should mention {needle}, got: {err}"
            );
        }
    }
}
