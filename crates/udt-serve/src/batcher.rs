//! The micro-batching scheduler.
//!
//! Classification requests from any number of connection threads enter a
//! **bounded MPSC queue** (a `Mutex<VecDeque>` + two condvars — the
//! environment is std-only) and are drained by a fixed pool of worker
//! threads. A worker that pops a job does not serve it alone: it keeps
//! collecting queued jobs until either `max_batch_tuples` tuples have
//! accumulated or `max_delay` has elapsed since the flush began, then
//! classifies the whole micro-batch with **one worker-owned
//! [`BatchScratch`]** that lives as long as the worker — the scratch
//! pool. Steady-state serving therefore performs zero allocation inside
//! the classification engine, exactly the calling convention
//! [`udt_tree::classify_batch`] was built for, and a burst of concurrent
//! single-tuple requests costs one thread wake-up instead of one per
//! request.
//!
//! Each job in a flush takes its *own* model snapshot from the registry
//! at execution time (jobs for different models can share a flush), and
//! tuples are never reordered within a job, so replies are bit-for-bit
//! what a direct `classify_batch` call would have produced.
//!
//! The worker loops run as long-lived tasks on a dedicated
//! [`udt_tree::WorkerPool`] — the same execution substrate the tree
//! builder uses — so the serving layer manages no raw `JoinHandle`s of
//! its own.
//!
//! Shutdown is graceful: [`Batcher::shutdown`] closes the queue to new
//! submissions, lets the workers drain every job already accepted, and
//! joins them (by dropping the pool) — no in-flight request is dropped.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use udt_data::Tuple;
use udt_tree::{classify_batch, BatchScratch, WorkerPool};

use crate::error::ServeError;
use crate::faults::{FaultInjector, FaultPoint};
use crate::metrics::ServeMetrics;
use crate::protocol::QueueStats;
use crate::registry::ModelRegistry;
use crate::Result;

/// What `classify` does when the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// Block the submitter until a slot frees (backpressure). With a
    /// request deadline configured the wait is bounded by it; past the
    /// deadline the request is rejected as overloaded.
    #[default]
    Block,
    /// Reject immediately with [`ServeError::Overloaded`] (load
    /// shedding) — the submitter never waits.
    Shed,
}

impl QueuePolicy {
    /// The config-grammar name (`block` / `shed`).
    pub fn name(&self) -> &'static str {
        match self {
            QueuePolicy::Block => "block",
            QueuePolicy::Shed => "shed",
        }
    }
}

impl std::str::FromStr for QueuePolicy {
    type Err = ServeError;

    fn from_str(s: &str) -> Result<QueuePolicy> {
        match s.trim().to_ascii_lowercase().as_str() {
            "block" => Ok(QueuePolicy::Block),
            "shed" => Ok(QueuePolicy::Shed),
            other => Err(ServeError::Config(format!(
                "queue policy must be `block` or `shed`, got `{other}`"
            ))),
        }
    }
}

/// Scheduler tuning knobs (see [`crate::ServeConfig`] for the CLI
/// surface and defaults).
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Worker threads draining the queue (each owns one scratch).
    pub workers: usize,
    /// Flush a micro-batch once this many tuples have accumulated.
    pub max_batch_tuples: usize,
    /// Flush a micro-batch once this long has passed since collection
    /// began, even if it is still small.
    pub max_delay: Duration,
    /// Bounded queue capacity in jobs; what happens when it is full is
    /// `queue_policy`'s call.
    pub queue_capacity: usize,
    /// Admission behaviour at capacity: block (backpressure) or shed.
    pub queue_policy: QueuePolicy,
    /// End-to-end budget for a request. Bounds the submit wait under
    /// [`QueuePolicy::Block`], and a job that has already exceeded it
    /// when a worker dequeues it is dropped with
    /// [`ServeError::DeadlineExceeded`] instead of being classified.
    /// `None` disables both.
    pub request_deadline: Option<Duration>,
    /// Fault-injection hooks (disabled injector in production).
    pub faults: Arc<FaultInjector>,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            workers: 2,
            max_batch_tuples: 64,
            max_delay: Duration::from_micros(500),
            queue_capacity: 1024,
            queue_policy: QueuePolicy::Block,
            request_deadline: None,
            faults: FaultInjector::disabled(),
        }
    }
}

/// The metrics bucket that absorbs requests for unregistered model
/// names (one bucket, not one per client-supplied string — see
/// `serve_flush`).
pub const UNKNOWN_MODEL_BUCKET: &str = "(unknown-model)";

/// The result of one classification job: row-major distributions plus
/// the class count needed to slice them.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReply {
    /// `tuples × n_classes` row-major class distributions.
    pub distributions: Vec<f64>,
    /// Stride of `distributions`.
    pub n_classes: usize,
}

struct Job {
    model: String,
    tuples: Vec<Tuple>,
    enqueued: Instant,
    reply: mpsc::SyncSender<Result<BatchReply>>,
}

struct State {
    jobs: VecDeque<Job>,
    open: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a job is pushed or the queue closes.
    not_empty: Condvar,
    /// Signalled when a job is popped or the queue closes.
    not_full: Condvar,
}

impl Shared {
    /// Locks the queue, recovering from poison. Worker panics are caught
    /// per job *outside* this lock, so poison here would mean a panic in
    /// the queue plumbing itself — the jobs are still consistent (every
    /// mutation is a single push/pop), and one wedged submitter must not
    /// take the whole server down with it.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait<'a>(&self, cv: &Condvar, guard: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        cv.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    fn wait_timeout<'a>(
        &self,
        cv: &Condvar,
        guard: MutexGuard<'a, State>,
        dur: Duration,
    ) -> (MutexGuard<'a, State>, bool) {
        match cv.wait_timeout(guard, dur) {
            Ok((g, t)) => (g, t.timed_out()),
            Err(e) => {
                let (g, t) = e.into_inner();
                (g, t.timed_out())
            }
        }
    }
}

/// The micro-batching scheduler: bounded queue + worker pool.
pub struct Batcher {
    shared: Arc<Shared>,
    options: BatchOptions,
    /// For recording admission failures (sheds) at the submit path; the
    /// workers hold their own clone for the serving-side counters.
    metrics: Arc<ServeMetrics>,
    /// Worker loops actually running (the pool may have spawned fewer
    /// threads than requested under resource pressure); this is what
    /// `queue_stats` reports.
    workers: usize,
    /// The dedicated worker pool whose threads run the batch loops.
    /// Taken (and thereby joined) by [`Batcher::shutdown`].
    pool: Mutex<Option<WorkerPool>>,
}

impl Batcher {
    /// Starts `options.workers` worker threads serving models from
    /// `registry`, recording into `metrics`. Each worker loop runs as a
    /// long-lived task on a dedicated [`WorkerPool`] sized to exactly
    /// the worker count.
    ///
    /// # Panics
    ///
    /// Panics if not a single worker thread could be spawned — a
    /// batcher with no workers would accept requests and never answer
    /// them. A *partial* spawn failure degrades to the threads that did
    /// start (the pool logs it), and only that many loops are queued so
    /// none sits queued forever behind the others.
    pub fn start(
        registry: Arc<ModelRegistry>,
        metrics: Arc<ServeMetrics>,
        options: BatchOptions,
    ) -> Batcher {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                open: true,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        let pool = WorkerPool::named(options.workers.max(1), "udt-serve-worker");
        let workers = pool.workers();
        assert!(
            workers > 0,
            "udt-serve: could not spawn any batch worker thread"
        );
        for _ in 0..workers {
            let shared = Arc::clone(&shared);
            let registry = Arc::clone(&registry);
            let metrics = Arc::clone(&metrics);
            let options = options.clone();
            pool.spawn(move || worker_loop(&shared, &registry, &metrics, &options));
        }
        Batcher {
            shared,
            options,
            metrics,
            workers,
            pool: Mutex::new(Some(pool)),
        }
    }

    /// Classifies `tuples` with the named model, blocking until a worker
    /// has served the micro-batch containing this job.
    ///
    /// Admission at a full queue follows the configured policy:
    /// [`QueuePolicy::Shed`] rejects immediately with
    /// [`ServeError::Overloaded`]; [`QueuePolicy::Block`] waits for a
    /// slot — indefinitely without a request deadline, otherwise at most
    /// the deadline before the request is shed as overloaded too. Both
    /// rejections count in the `sheds` health counter.
    pub fn classify(&self, model: &str, tuples: Vec<Tuple>) -> Result<BatchReply> {
        let (tx, rx) = mpsc::sync_channel(1);
        let enqueued = Instant::now();
        let job = Job {
            model: model.to_string(),
            tuples,
            enqueued,
            reply: tx,
        };
        {
            let mut st = self.shared.lock();
            loop {
                if !st.open {
                    return Err(ServeError::QueueClosed);
                }
                if st.jobs.len() < self.options.queue_capacity {
                    break;
                }
                match (self.options.queue_policy, self.options.request_deadline) {
                    (QueuePolicy::Shed, _) => {
                        drop(st);
                        self.metrics.record_shed();
                        return Err(ServeError::Overloaded);
                    }
                    (QueuePolicy::Block, None) => {
                        st = self.shared.wait(&self.shared.not_full, st);
                    }
                    (QueuePolicy::Block, Some(deadline)) => {
                        let Some(remaining) = deadline.checked_sub(enqueued.elapsed()) else {
                            drop(st);
                            self.metrics.record_shed();
                            return Err(ServeError::Overloaded);
                        };
                        let (guard, _timed_out) =
                            self.shared
                                .wait_timeout(&self.shared.not_full, st, remaining);
                        st = guard;
                    }
                }
            }
            st.jobs.push_back(job);
            self.shared.not_empty.notify_one();
        }
        rx.recv().map_err(|_| ServeError::QueueClosed)?
    }

    /// Whether the queue is open to new submissions — the scheduler's
    /// contribution to the `health` readiness signal. `false` once
    /// [`Batcher::shutdown`] has begun (already-accepted jobs still
    /// drain).
    pub fn is_accepting(&self) -> bool {
        self.shared.lock().open
    }

    /// Current queue occupancy and configuration, for `stats`.
    pub fn queue_stats(&self) -> QueueStats {
        let depth = self.shared.lock().jobs.len();
        QueueStats {
            workers: self.workers,
            capacity: self.options.queue_capacity,
            depth,
            max_batch_tuples: self.options.max_batch_tuples,
            max_delay_us: self.options.max_delay.as_micros() as u64,
            policy: self.options.queue_policy.name().to_string(),
            deadline_ms: self
                .options
                .request_deadline
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
        }
    }

    /// Closes the queue to new submissions, drains every accepted job and
    /// joins the workers (dropping the dedicated pool joins its threads
    /// once their loops return). Idempotent.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.lock();
            st.open = false;
            self.shared.not_empty.notify_all();
            self.shared.not_full.notify_all();
        }
        let pool = self.pool.lock().unwrap_or_else(|e| e.into_inner()).take();
        drop(pool);
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One worker: pop a seed job, collect companions until the batch is
/// full or the delay budget is spent, serve the flush with the
/// worker-owned scratch, repeat. Exits when the queue is closed *and*
/// empty.
fn worker_loop(
    shared: &Shared,
    registry: &ModelRegistry,
    metrics: &ServeMetrics,
    options: &BatchOptions,
) {
    let mut scratch = BatchScratch::new();
    loop {
        let mut flush: Vec<Job> = Vec::new();
        {
            let mut st = shared.lock();
            // Wait for a seed job (or a closed, drained queue).
            loop {
                if let Some(job) = st.jobs.pop_front() {
                    shared.not_full.notify_one();
                    flush.push(job);
                    break;
                }
                if !st.open {
                    return;
                }
                st = shared.wait(&shared.not_empty, st);
            }
            // Collect companions for up to `max_delay`, or until the
            // flush holds `max_batch_tuples` tuples.
            let deadline = Instant::now() + options.max_delay;
            let mut total: usize = flush.iter().map(|j| j.tuples.len()).sum();
            while total < options.max_batch_tuples {
                if let Some(job) = st.jobs.pop_front() {
                    shared.not_full.notify_one();
                    total += job.tuples.len();
                    flush.push(job);
                    continue;
                }
                if !st.open {
                    break;
                }
                let now = Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    break;
                };
                let (guard, timed_out) = shared.wait_timeout(&shared.not_empty, st, remaining);
                st = guard;
                if timed_out {
                    // One more opportunistic pop below, then flush.
                    if let Some(job) = st.jobs.pop_front() {
                        shared.not_full.notify_one();
                        flush.push(job);
                    }
                    break;
                }
            }
        }
        // Fault hook: a slow worker (CPU contention, paging) — makes the
        // queue grow and request deadlines expire. Injected with no lock
        // held, after the flush is popped, so the waiting jobs age.
        if let Some(delay) = options.faults.sleep_for(FaultPoint::DelayInWorker) {
            std::thread::sleep(delay);
        }
        serve_flush(flush, registry, metrics, options, &mut scratch);
    }
}

/// Renders a panic payload for the structured error (panics carry
/// `&str` or `String` in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Classifies every job of one flush. Jobs take their model snapshots
/// here — after coalescing — so a hot swap that lands between enqueue
/// and flush is honoured, and consecutive jobs for the same model reuse
/// one snapshot.
fn serve_flush(
    flush: Vec<Job>,
    registry: &ModelRegistry,
    metrics: &ServeMetrics,
    options: &BatchOptions,
    scratch: &mut BatchScratch,
) {
    let mut snapshot: Option<(String, Arc<udt_tree::DecisionTree>)> = None;
    for job in flush {
        let waited = job.enqueued.elapsed();
        metrics.record_queue_wait(waited);
        // A job that already blew its budget in the queue is dropped
        // here, unclassified: the client stopped waiting for the answer,
        // so computing it would only steal worker time from requests
        // that can still make their deadlines.
        if let Some(deadline) = options.request_deadline {
            if waited > deadline {
                metrics.record_deadline_drop();
                let _ = job.reply.send(Err(ServeError::DeadlineExceeded));
                continue;
            }
        }
        let tree = match &snapshot {
            Some((name, tree)) if *name == job.model => Ok(Arc::clone(tree)),
            _ => registry.get(&job.model),
        };
        let outcome = match tree {
            Err(e) => Err(e),
            Ok(tree) => {
                snapshot = Some((job.model.clone(), Arc::clone(&tree)));
                // The panic boundary is per *job*, not per flush: one
                // poisoned request must not take down its batch
                // companions. The queue lock is never held here, so a
                // panic cannot poison it. `AssertUnwindSafe` is sound
                // because the only state crossing the boundary — the
                // scratch — is rebuilt from scratch on the panic path.
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    if options.faults.fires(FaultPoint::PanicInWorker) {
                        panic!("injected fault: panic_in_worker");
                    }
                    let distributions = classify_batch(&tree, &job.tuples, scratch)?;
                    Ok(BatchReply {
                        distributions,
                        n_classes: tree.n_classes(),
                    })
                }));
                match attempt {
                    Ok(outcome) => outcome,
                    Err(payload) => {
                        *scratch = BatchScratch::new();
                        metrics.record_worker_panic();
                        Err(ServeError::WorkerPanic(panic_message(payload.as_ref())))
                    }
                }
            }
        };
        match &outcome {
            Ok(reply) => {
                let served = reply.distributions.len() / reply.n_classes.max(1);
                metrics.record(&job.model, served, job.enqueued.elapsed());
            }
            // Requests for names the registry does not hold share one
            // fixed bucket: keying metrics by arbitrary client-supplied
            // strings would let a misbehaving client grow the metrics
            // map (and every stats response) without bound.
            Err(ServeError::UnknownModel(_)) => metrics.record_error(UNKNOWN_MODEL_BUCKET),
            Err(_) => metrics.record_error(&job.model),
        }
        // A client that gave up (dropped receiver) is not an error.
        let _ = job.reply.send(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udt_data::toy;
    use udt_tree::{Algorithm, TreeBuilder, UdtConfig};

    fn registry_with_toy() -> Arc<ModelRegistry> {
        let tree = TreeBuilder::new(
            UdtConfig::new(Algorithm::UdtEs)
                .with_postprune(false)
                .with_min_node_weight(0.0),
        )
        .build(&toy::table1_dataset().unwrap())
        .unwrap()
        .tree;
        let reg = Arc::new(ModelRegistry::new());
        reg.insert_tree("toy", tree).unwrap();
        reg
    }

    fn batcher(reg: &Arc<ModelRegistry>, options: BatchOptions) -> (Batcher, Arc<ServeMetrics>) {
        let metrics = Arc::new(ServeMetrics::new());
        (
            Batcher::start(Arc::clone(reg), Arc::clone(&metrics), options),
            metrics,
        )
    }

    #[test]
    fn batched_replies_match_direct_classification() {
        let reg = registry_with_toy();
        let (batcher, metrics) = batcher(&reg, BatchOptions::default());
        let data = toy::table1_dataset().unwrap();
        let tree = reg.get("toy").unwrap();
        let mut scratch = BatchScratch::new();
        let direct = classify_batch(&tree, data.tuples(), &mut scratch).unwrap();

        let reply = batcher.classify("toy", data.tuples().to_vec()).unwrap();
        assert_eq!(reply.n_classes, 2);
        assert_eq!(reply.distributions.len(), direct.len());
        for (a, b) in reply.distributions.iter().zip(&direct) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].requests, 1);
        assert_eq!(snap[0].tuples, data.len() as u64);
        batcher.shutdown();
    }

    #[test]
    fn concurrent_submissions_are_coalesced_and_all_answered() {
        let reg = registry_with_toy();
        // One worker + a generous delay forces genuine coalescing.
        let (batcher, metrics) = batcher(
            &reg,
            BatchOptions {
                workers: 1,
                max_batch_tuples: 1024,
                max_delay: Duration::from_millis(5),
                queue_capacity: 64,
                ..BatchOptions::default()
            },
        );
        let data = toy::table1_dataset().unwrap();
        let tree = reg.get("toy").unwrap();
        let mut scratch = BatchScratch::new();
        let direct = classify_batch(&tree, data.tuples(), &mut scratch).unwrap();
        let n = tree.n_classes();

        std::thread::scope(|scope| {
            let handles: Vec<_> = data
                .tuples()
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let batcher = &batcher;
                    scope.spawn(move || (i, batcher.classify("toy", vec![t.clone()]).unwrap()))
                })
                .collect();
            for handle in handles {
                let (i, reply) = handle.join().unwrap();
                let expected = &direct[i * n..(i + 1) * n];
                assert_eq!(reply.distributions.len(), n);
                for (a, b) in reply.distributions.iter().zip(expected) {
                    assert_eq!(a.to_bits(), b.to_bits(), "tuple {i}");
                }
            }
        });
        let snap = metrics.snapshot();
        assert_eq!(snap[0].requests, data.len() as u64);
        assert_eq!(snap[0].tuples, data.len() as u64);
        batcher.shutdown();
    }

    #[test]
    fn unknown_models_error_without_poisoning_the_worker() {
        let reg = registry_with_toy();
        let (batcher, metrics) = batcher(&reg, BatchOptions::default());
        let t = toy::fig1_test_tuple().unwrap();
        assert!(matches!(
            batcher.classify("nope", vec![t.clone()]),
            Err(ServeError::UnknownModel(_))
        ));
        // The worker is still alive and serving.
        assert!(batcher.classify("toy", vec![t]).is_ok());
        // The bogus name lands in the shared unknown-model bucket, not a
        // per-name entry a client could grow without bound.
        let snap = metrics.snapshot();
        assert_eq!(snap.iter().map(|s| s.errors).sum::<u64>(), 1);
        let unknown = snap
            .iter()
            .find(|s| s.model == UNKNOWN_MODEL_BUCKET)
            .expect("unknown-model bucket exists");
        assert_eq!(unknown.errors, 1);
        assert!(snap.iter().all(|s| s.model != "nope"));
        batcher.shutdown();
    }

    #[test]
    fn shutdown_drains_accepted_jobs_and_rejects_new_ones() {
        let reg = registry_with_toy();
        let (batcher, _) = batcher(&reg, BatchOptions::default());
        let t = toy::fig1_test_tuple().unwrap();
        assert!(batcher.classify("toy", vec![t.clone()]).is_ok());
        batcher.shutdown();
        assert!(matches!(
            batcher.classify("toy", vec![t]),
            Err(ServeError::QueueClosed)
        ));
        // Idempotent.
        batcher.shutdown();
    }

    #[test]
    fn non_finite_models_are_rejected_before_they_can_serve() {
        // A model whose arena smuggles in an inf/NaN would panic the
        // argmax in serving threads; the registry's load-time validation
        // must refuse it instead (see FlatTree::validate).
        let reg = registry_with_toy();
        let tree = reg.get("toy").unwrap();
        let json = udt_tree::persist::to_json(&tree).unwrap();
        let evil = json.replacen("\"dists\":[", "\"dists\":[1e999,", 1);
        assert_ne!(evil, json);
        let path = std::env::temp_dir().join("udt-serve-evil-model.json");
        std::fs::write(&path, evil).unwrap();
        let err = reg.swap("evil", path.as_path()).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "got: {err}");
        assert!(reg.get("evil").is_err(), "nothing was registered");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_tuple_lists_are_served() {
        let reg = registry_with_toy();
        let (batcher, _) = batcher(&reg, BatchOptions::default());
        let reply = batcher.classify("toy", Vec::new()).unwrap();
        assert!(reply.distributions.is_empty());
        assert_eq!(reply.n_classes, 2);
        batcher.shutdown();
    }

    #[test]
    fn queue_policy_parses_and_garbage_is_a_config_error() {
        assert_eq!("block".parse::<QueuePolicy>().unwrap(), QueuePolicy::Block);
        assert_eq!(" Shed ".parse::<QueuePolicy>().unwrap(), QueuePolicy::Shed);
        assert!(matches!(
            "drop".parse::<QueuePolicy>(),
            Err(ServeError::Config(_))
        ));
    }

    #[test]
    fn shed_policy_rejects_at_capacity_and_counts_the_shed() {
        let reg = registry_with_toy();
        // Capacity 0 makes every submission find a full queue — the
        // deterministic way to exercise the admission path.
        let (batcher, metrics) = batcher(
            &reg,
            BatchOptions {
                queue_capacity: 0,
                queue_policy: QueuePolicy::Shed,
                ..BatchOptions::default()
            },
        );
        let t = toy::fig1_test_tuple().unwrap();
        assert!(matches!(
            batcher.classify("toy", vec![t.clone()]),
            Err(ServeError::Overloaded)
        ));
        assert!(matches!(
            batcher.classify("toy", vec![t]),
            Err(ServeError::Overloaded)
        ));
        let health = metrics.health_snapshot();
        assert_eq!(health.sheds, 2);
        assert_eq!(health.deadline_drops, 0);
        let stats = batcher.queue_stats();
        assert_eq!(stats.policy, "shed");
        assert_eq!(stats.deadline_ms, 0);
        batcher.shutdown();
    }

    #[test]
    fn blocked_submitters_are_shed_once_the_deadline_passes() {
        let reg = registry_with_toy();
        let (batcher, metrics) = batcher(
            &reg,
            BatchOptions {
                queue_capacity: 0,
                queue_policy: QueuePolicy::Block,
                request_deadline: Some(Duration::from_millis(5)),
                ..BatchOptions::default()
            },
        );
        let t = toy::fig1_test_tuple().unwrap();
        let start = Instant::now();
        assert!(matches!(
            batcher.classify("toy", vec![t]),
            Err(ServeError::Overloaded)
        ));
        assert!(
            start.elapsed() >= Duration::from_millis(5),
            "the submit wait is bounded, not skipped"
        );
        assert_eq!(metrics.health_snapshot().sheds, 1);
        let stats = batcher.queue_stats();
        assert_eq!(stats.policy, "block");
        assert_eq!(stats.deadline_ms, 5);
        batcher.shutdown();
    }

    #[test]
    fn expired_jobs_are_dropped_at_dequeue_not_classified() {
        let reg = registry_with_toy();
        // Every flush sleeps 30 ms before serving (injected), and the
        // request budget is 1 ms — the job is guaranteed to be expired
        // by the time a worker looks at it.
        let plan = crate::faults::FaultPlan::parse("delay_in_worker:always:30ms", 0).unwrap();
        let (batcher, metrics) = batcher(
            &reg,
            BatchOptions {
                workers: 1,
                request_deadline: Some(Duration::from_millis(1)),
                faults: FaultInjector::from_plan(&plan),
                ..BatchOptions::default()
            },
        );
        let t = toy::fig1_test_tuple().unwrap();
        assert!(matches!(
            batcher.classify("toy", vec![t]),
            Err(ServeError::DeadlineExceeded)
        ));
        let health = metrics.health_snapshot();
        assert_eq!(health.deadline_drops, 1);
        assert_eq!(health.queue_wait_count, 1, "queue wait is still recorded");
        // No model metrics: the job was never classified.
        assert!(metrics.snapshot().iter().all(|s| s.requests == 0));
        batcher.shutdown();
    }

    #[test]
    fn worker_panics_are_isolated_per_job_and_the_pool_survives() {
        let reg = registry_with_toy();
        let plan = crate::faults::FaultPlan::parse("panic_in_worker:nth=1", 0).unwrap();
        let (batcher, metrics) = batcher(
            &reg,
            BatchOptions {
                workers: 1,
                faults: FaultInjector::from_plan(&plan),
                ..BatchOptions::default()
            },
        );
        let data = toy::table1_dataset().unwrap();
        let t = toy::fig1_test_tuple().unwrap();
        // First job hits the injected panic and gets a structured error.
        let err = batcher.classify("toy", vec![t.clone()]).unwrap_err();
        assert!(matches!(&err, ServeError::WorkerPanic(m) if m.contains("injected")));
        assert_eq!(err.code(), "internal");
        // The same worker (there is only one) keeps serving, and its
        // recreated scratch still produces bit-for-bit correct answers.
        let tree = reg.get("toy").unwrap();
        let mut scratch = BatchScratch::new();
        let direct = classify_batch(&tree, data.tuples(), &mut scratch).unwrap();
        let reply = batcher.classify("toy", data.tuples().to_vec()).unwrap();
        for (a, b) in reply.distributions.iter().zip(&direct) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let health = metrics.health_snapshot();
        assert_eq!(health.worker_panics, 1);
        batcher.shutdown();
    }
}
