//! Blocking NDJSON client for a `udt-serve` endpoint.
//!
//! One TCP connection, one request line out, one response line back —
//! used by the `udt-client` CLI, the integration tests and the `serve`
//! bench. The client is deliberately synchronous: a caller that wants
//! pipelining opens more connections (the server coalesces across all of
//! them into shared micro-batches anyway).
//!
//! For multi-node deployments, [`ReplicaSet`] wraps N endpoints behind
//! one client-shaped surface: per-endpoint circuit breakers route
//! around dead or flapping replicas, transient failures fail over to
//! the next healthy endpoint, and an optional hedge delay races a
//! second replica for point classifies. Every routing decision is
//! deterministic under the configured seed.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use udt_data::Tuple;

use crate::error::ServeError;
use crate::protocol::{HealthReport, ModelInfo, Request, Response, StatsFormat, StatsReport};
use crate::Result;
use udt_obs::catalog::serve as obs;

/// Reconnect-and-retry policy for transient failures (sheds, deadline
/// drops, worker panics, transport errors — [`ServeError::is_transient`]
/// decides). Backoff is exponential with deterministic, seeded jitter:
/// attempt `n` sleeps a uniformly drawn fraction (half to all) of
/// `base_backoff · 2ⁿ`, capped at `max_backoff`, so a burst of shed
/// clients does not reconverge on the server in lockstep.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
    /// Seed for the jitter stream (same seed, same sleep schedule).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt + 1` (0-based), advancing
    /// the caller-held jitter stream.
    pub fn backoff(&self, attempt: u32, rng: &mut u64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(20))
            .min(self.max_backoff);
        let draw = (rand::split_mix64(rng) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        exp.mul_f64(0.5 + draw / 2.0)
    }

    /// Runs `op` (which gets the 0-based attempt number) until it
    /// succeeds, fails permanently, or the attempt budget is spent.
    /// Only transient errors are retried; `op` should build a fresh
    /// connection per attempt — the old one is suspect by definition.
    pub fn run<T>(&self, mut op: impl FnMut(u32) -> Result<T>) -> Result<T> {
        let mut rng = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        rand::split_mix64(&mut rng);
        let attempts = self.attempts.max(1);
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(value) => return Ok(value),
                Err(e) if e.is_transient() && attempt + 1 < attempts => {
                    std::thread::sleep(self.backoff(attempt, &mut rng));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a serving endpoint.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Connects with a budget on the connect itself, and arms the same
    /// budget as the socket read/write timeout for every subsequent
    /// request — a wedged server then surfaces as a transient
    /// [`ServeError::Io`] instead of hanging the caller forever.
    pub fn connect_with_timeout<A: ToSocketAddrs>(addr: A, timeout: Duration) -> Result<Client> {
        let mut last: Option<std::io::Error> = None;
        for sock in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&sock, timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    stream.set_read_timeout(Some(timeout)).ok();
                    stream.set_write_timeout(Some(timeout)).ok();
                    let writer = stream.try_clone()?;
                    return Ok(Client {
                        reader: BufReader::new(stream),
                        writer,
                    });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.map(ServeError::from).unwrap_or_else(|| {
            ServeError::Io("address resolved to no socket addresses".to_string())
        }))
    }

    /// Sends one request and reads its response line.
    pub fn request(&mut self, request: &Request) -> Result<Response> {
        let mut line = request.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ServeError::Io("server closed the connection".into()));
        }
        // NDJSON frames end in a newline; a line that stops without one
        // means the connection died mid-response. That is a *transport*
        // failure (retryable on a fresh connection), not a protocol
        // violation — do not hand the fragment to the parser.
        if !reply.ends_with('\n') {
            return Err(ServeError::Io(
                "connection severed mid-response (truncated frame)".into(),
            ));
        }
        Response::parse(&reply)
    }

    /// Classifies one tuple; returns `(distribution, argmax label)`.
    pub fn classify(&mut self, model: &str, tuple: &Tuple) -> Result<(Vec<f64>, usize)> {
        match self.request(&Request::Classify {
            model: model.to_string(),
            tuple: tuple.clone(),
        })? {
            Response::Classify {
                distribution,
                label,
            } => Ok((distribution, label)),
            other => Err(unexpected("classify", &other)),
        }
    }

    /// Classifies a batch of tuples; returns per-tuple distributions and
    /// labels, in request order.
    pub fn classify_batch(
        &mut self,
        model: &str,
        tuples: &[Tuple],
    ) -> Result<(Vec<Vec<f64>>, Vec<usize>)> {
        match self.request(&Request::ClassifyBatch {
            model: model.to_string(),
            tuples: tuples.to_vec(),
        })? {
            Response::ClassifyBatch {
                distributions,
                labels,
            } => Ok((distributions, labels)),
            other => Err(unexpected("classify_batch", &other)),
        }
    }

    /// Loads a model file (server-side path) under a fresh name.
    pub fn load_model(&mut self, name: &str, path: &str) -> Result<ModelInfo> {
        match self.request(&Request::LoadModel {
            name: name.to_string(),
            path: path.to_string(),
        })? {
            Response::ModelLoaded(info) => Ok(info),
            other => Err(unexpected("load_model", &other)),
        }
    }

    /// Loads a model file and hot-swaps it into the named binding.
    pub fn swap(&mut self, name: &str, path: &str) -> Result<ModelInfo> {
        match self.request(&Request::Swap {
            name: name.to_string(),
            path: path.to_string(),
        })? {
            Response::ModelLoaded(info) => Ok(info),
            other => Err(unexpected("swap", &other)),
        }
    }

    /// Fetches the server's stats report.
    pub fn stats(&mut self) -> Result<StatsReport> {
        match self.request(&Request::Stats {
            format: StatsFormat::Json,
        })? {
            Response::Stats(report) => Ok(report),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Fetches the server's stats as a Prometheus text exposition.
    pub fn stats_prometheus(&mut self) -> Result<String> {
        match self.request(&Request::Stats {
            format: StatsFormat::Prometheus,
        })? {
            Response::StatsText { text } => Ok(text),
            other => Err(unexpected("stats (prometheus)", &other)),
        }
    }

    /// Fetches the server's health report (liveness plus readiness).
    pub fn health(&mut self) -> Result<HealthReport> {
        match self.request(&Request::Health)? {
            Response::Health(report) => Ok(report),
            other => Err(unexpected("health", &other)),
        }
    }

    /// Asks the server to shut down cleanly.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("shutdown", &other)),
        }
    }
}

/// Circuit-breaker state for one replica endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow to the endpoint normally.
    Closed,
    /// Tripped: the endpoint is skipped until its cooldown elapses.
    Open,
    /// Cooldown elapsed: the next request is a probe. Success closes the
    /// breaker; failure re-opens it with a longer cooldown.
    HalfOpen,
}

/// When breakers trip and how long they stay open.
///
/// Cooldowns reuse the [`RetryPolicy`] backoff machinery: trip `n`
/// draws a jittered cooldown from `base_cooldown · 2ⁿ` capped at
/// `max_cooldown`, so a flapping replica is probed less and less often
/// while a one-off blip heals in roughly `base_cooldown`.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerPolicy {
    /// Consecutive transient failures that trip `Closed → Open`.
    pub failure_threshold: u32,
    /// Cooldown scale for the first trip.
    pub base_cooldown: Duration,
    /// Upper bound on any single cooldown.
    pub max_cooldown: Duration,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            failure_threshold: 3,
            base_cooldown: Duration::from_millis(200),
            max_cooldown: Duration::from_secs(5),
        }
    }
}

/// Configuration for a [`ReplicaSet`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaSetOptions {
    /// Connect/read/write budget per connection (`None` = no timeouts,
    /// matching [`Client::connect`]).
    pub timeout: Option<Duration>,
    /// Hedge delay for point classifies: when `Some(d)`, a classify that
    /// has not answered within `d` races a second replica and the first
    /// reply wins (bit-for-bit identical to an unhedged reply — both
    /// replicas serve the same arena). `None` disables hedging.
    pub hedge: Option<Duration>,
    /// Breaker thresholds and cooldown bounds.
    pub breaker: BreakerPolicy,
    /// Seed for the cooldown jitter stream. Same endpoints, seed and
    /// failure sequence ⇒ identical routing decisions.
    pub seed: u64,
}

impl Default for ReplicaSetOptions {
    fn default() -> Self {
        ReplicaSetOptions {
            timeout: None,
            hedge: None,
            breaker: BreakerPolicy::default(),
            seed: 0x5eed,
        }
    }
}

/// A point-in-time view of one endpoint's breaker, for diagnostics and
/// the seeded-determinism tests.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerSnapshot {
    /// The endpoint address.
    pub endpoint: String,
    /// Current breaker state.
    pub state: BreakerState,
    /// Consecutive transient failures since the last success.
    pub consecutive_failures: u32,
    /// Times the breaker has tripped open since the last success.
    pub trips: u32,
    /// Requests attempted against this endpoint (including probes).
    pub attempts: u64,
    /// The jittered cooldown drawn at the most recent trip.
    pub last_cooldown: Duration,
}

struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
    trips: u32,
    attempts: u64,
    last_cooldown: Duration,
    open_until: Option<Instant>,
}

impl Breaker {
    fn new() -> Breaker {
        obs::BREAKERS_CLOSED.inc();
        Breaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            trips: 0,
            attempts: 0,
            last_cooldown: Duration::ZERO,
            open_until: None,
        }
    }

    fn set_state(&mut self, next: BreakerState) {
        if self.state == next {
            return;
        }
        state_gauge(self.state).dec();
        state_gauge(next).inc();
        self.state = next;
    }
}

impl Drop for Breaker {
    fn drop(&mut self) {
        state_gauge(self.state).dec();
    }
}

fn state_gauge(state: BreakerState) -> &'static udt_obs::Gauge {
    match state {
        BreakerState::Closed => &obs::BREAKERS_CLOSED,
        BreakerState::Open => &obs::BREAKERS_OPEN,
        BreakerState::HalfOpen => &obs::BREAKERS_HALF_OPEN,
    }
}

/// A client over N replica endpoints with per-endpoint circuit
/// breakers, transparent failover on transient failures, and optional
/// hedged point classifies.
///
/// Endpoints are tried in declaration order, skipping any whose breaker
/// is open; a transient failure (connect refused, severed connection,
/// shed, deadline drop — [`ServeError::is_transient`]) fails over to
/// the next available endpoint within the same call. Permanent errors
/// (unknown model, bad request) return immediately: the replica
/// answered, so it is healthy and retrying elsewhere only repeats the
/// mistake.
///
/// Routing is deterministic under [`ReplicaSetOptions::seed`]: the
/// candidate order is fixed and every cooldown is drawn from a seeded
/// jitter stream, so two replica sets fed the same failure sequence
/// trip, cool down and probe identically.
pub struct ReplicaSet {
    endpoints: Vec<String>,
    conns: Vec<Option<Client>>,
    breakers: Vec<Breaker>,
    /// Cooldown generator — `RetryPolicy::backoff` with trip count as
    /// the attempt number.
    cooldown: RetryPolicy,
    rng: u64,
    options: ReplicaSetOptions,
}

impl ReplicaSet {
    /// Builds a replica set over `endpoints` (at least one required).
    pub fn new(endpoints: Vec<String>, options: ReplicaSetOptions) -> Result<ReplicaSet> {
        if endpoints.is_empty() {
            return Err(ServeError::Config(
                "a replica set needs at least one endpoint".to_string(),
            ));
        }
        let cooldown = RetryPolicy {
            attempts: 1,
            base_backoff: options.breaker.base_cooldown,
            max_backoff: options.breaker.max_cooldown,
            seed: options.seed,
        };
        let mut rng = options.seed ^ 0x9e37_79b9_7f4a_7c15;
        rand::split_mix64(&mut rng);
        let n = endpoints.len();
        Ok(ReplicaSet {
            endpoints,
            conns: (0..n).map(|_| None).collect(),
            breakers: (0..n).map(|_| Breaker::new()).collect(),
            cooldown,
            rng,
            options,
        })
    }

    /// The configured endpoints, in routing order.
    pub fn endpoints(&self) -> &[String] {
        &self.endpoints
    }

    /// A snapshot of every endpoint's breaker.
    pub fn snapshot(&self) -> Vec<BreakerSnapshot> {
        self.endpoints
            .iter()
            .zip(&self.breakers)
            .map(|(endpoint, b)| BreakerSnapshot {
                endpoint: endpoint.clone(),
                state: b.state,
                consecutive_failures: b.consecutive_failures,
                trips: b.trips,
                attempts: b.attempts,
                last_cooldown: b.last_cooldown,
            })
            .collect()
    }

    /// Classifies one tuple, hedging to a second replica when
    /// configured; returns `(distribution, argmax label)`.
    pub fn classify(&mut self, model: &str, tuple: &Tuple) -> Result<(Vec<f64>, usize)> {
        if let Some(delay) = self.options.hedge {
            let now = Instant::now();
            if let Some((primary, secondary)) = self.hedge_pair(now) {
                return self.classify_hedged(model, tuple, delay, primary, secondary);
            }
        }
        self.with_failover(|c| c.classify(model, tuple))
    }

    /// Classifies a batch; returns per-tuple distributions and labels in
    /// request order. Batches are never hedged — they fail over.
    pub fn classify_batch(
        &mut self,
        model: &str,
        tuples: &[Tuple],
    ) -> Result<(Vec<Vec<f64>>, Vec<usize>)> {
        self.with_failover(|c| c.classify_batch(model, tuples))
    }

    /// Health of the first available replica that answers.
    pub fn health(&mut self) -> Result<HealthReport> {
        self.with_failover(|c| c.health())
    }

    /// Runs `op` against endpoints in order, skipping open breakers and
    /// failing over on transient errors. Each failover increments the
    /// `udt_replica_failovers_total` counter.
    fn with_failover<T>(&mut self, mut op: impl FnMut(&mut Client) -> Result<T>) -> Result<T> {
        let now = Instant::now();
        let mut last: Option<ServeError> = None;
        for i in 0..self.endpoints.len() {
            if !self.available(i, now) {
                continue;
            }
            if last.is_some() {
                obs::FAILOVERS.incr();
            }
            self.breakers[i].attempts += 1;
            match self.attempt(i, &mut op) {
                Ok(value) => {
                    self.record_success(i);
                    return Ok(value);
                }
                Err(e) if e.is_transient() => {
                    self.record_failure(i);
                    last = Some(e);
                }
                Err(e) => {
                    // The replica answered; the request itself is bad.
                    self.record_success(i);
                    return Err(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| {
            ServeError::Io("no replica available (every circuit breaker is open)".to_string())
        }))
    }

    /// Ensures a live connection to endpoint `i` and runs `op` on it.
    fn attempt<T>(&mut self, i: usize, op: &mut impl FnMut(&mut Client) -> Result<T>) -> Result<T> {
        if self.conns[i].is_none() {
            self.conns[i] = Some(connect_endpoint(&self.endpoints[i], self.options.timeout)?);
        }
        op(self.conns[i].as_mut().expect("connection just established"))
    }

    /// Whether endpoint `i` may take a request now, promoting `Open`
    /// breakers whose cooldown has elapsed to `HalfOpen`.
    fn available(&mut self, i: usize, now: Instant) -> bool {
        match self.breakers[i].state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                let elapsed = match self.breakers[i].open_until {
                    Some(t) => now >= t,
                    None => true,
                };
                if elapsed {
                    self.breakers[i].set_state(BreakerState::HalfOpen);
                    true
                } else {
                    false
                }
            }
        }
    }

    fn record_success(&mut self, i: usize) {
        let b = &mut self.breakers[i];
        b.consecutive_failures = 0;
        b.trips = 0;
        b.open_until = None;
        b.set_state(BreakerState::Closed);
    }

    fn record_failure(&mut self, i: usize) {
        // The connection is suspect by definition; rebuild it next time.
        self.conns[i] = None;
        self.breakers[i].consecutive_failures += 1;
        let trip = match self.breakers[i].state {
            // A failed probe re-opens immediately, with a longer cooldown.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => {
                self.breakers[i].consecutive_failures >= self.options.breaker.failure_threshold
            }
            BreakerState::Open => false,
        };
        if trip {
            let attempt = self.breakers[i].trips.min(20);
            let cooldown = self.cooldown.backoff(attempt, &mut self.rng);
            let b = &mut self.breakers[i];
            b.trips += 1;
            b.last_cooldown = cooldown;
            b.open_until = Some(Instant::now() + cooldown);
            b.set_state(BreakerState::Open);
        }
    }

    /// The first two available endpoints, for a hedged classify. `None`
    /// when fewer than two replicas can take the request — hedging then
    /// degrades to plain failover.
    fn hedge_pair(&mut self, now: Instant) -> Option<(usize, usize)> {
        let mut first = None;
        for i in 0..self.endpoints.len() {
            if !self.available(i, now) {
                continue;
            }
            match first {
                None => first = Some(i),
                Some(p) => return Some((p, i)),
            }
        }
        None
    }

    /// Races `primary` against `secondary` for one point classify. The
    /// secondary launches only if the primary has not answered within
    /// `delay` (a hedge) or failed transiently before it (a failover);
    /// the first successful reply wins and the loser's socket is shut
    /// down so its thread unblocks promptly.
    fn classify_hedged(
        &mut self,
        model: &str,
        tuple: &Tuple,
        delay: Duration,
        primary: usize,
        secondary: usize,
    ) -> Result<(Vec<f64>, usize)> {
        use std::sync::{Arc, Mutex};

        let (tx, rx) = mpsc::channel();
        let slots: [Arc<Mutex<Option<TcpStream>>>; 2] =
            [Arc::new(Mutex::new(None)), Arc::new(Mutex::new(None))];
        let timeout = self.options.timeout;
        let spawn = |slot: usize, endpoint: &str| {
            let endpoint = endpoint.to_string();
            let model = model.to_string();
            let tuple = tuple.clone();
            let cancel = Arc::clone(&slots[slot]);
            let tx = tx.clone();
            std::thread::spawn(move || {
                let result = (|| {
                    let mut client = connect_endpoint(&endpoint, timeout)?;
                    *cancel.lock().expect("hedge cancel slot") = Some(client.writer.try_clone()?);
                    client.classify(&model, &tuple)
                })();
                // The race may already be decided; a dead receiver is fine.
                let _ = tx.send((slot, result));
            });
        };
        // Backstop so an unanswered race cannot hang the caller forever;
        // generous enough to never fire before the sockets' own budgets.
        let backstop = self
            .options
            .timeout
            .map(|t| t.saturating_mul(4))
            .unwrap_or(Duration::from_secs(300));

        self.breakers[primary].attempts += 1;
        spawn(0, self.endpoints[primary].as_str());

        let mut launched = 1u32;
        let mut outstanding = 1u32;
        let mut hedged = false;
        // Phase 1: give the primary `delay` to answer on its own.
        let mut next = match rx.recv_timeout(delay) {
            Ok(pair) => Some(pair),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                unreachable!("main thread holds a sender")
            }
        };
        if next.is_none() {
            obs::HEDGES_LAUNCHED.incr();
            hedged = true;
            self.breakers[secondary].attempts += 1;
            spawn(1, self.endpoints[secondary].as_str());
            launched = 2;
            outstanding = 2;
        }
        loop {
            let (slot, result) = match next.take() {
                Some(pair) => pair,
                None => match rx.recv_timeout(backstop) {
                    Ok(pair) => pair,
                    Err(_) => {
                        return Err(ServeError::Io(
                            "hedged classify timed out on every launched replica".to_string(),
                        ))
                    }
                },
            };
            outstanding -= 1;
            let replica = if slot == 0 { primary } else { secondary };
            match result {
                Ok(value) => {
                    self.record_success(replica);
                    if hedged && slot == 1 {
                        obs::HEDGES_WON.incr();
                    }
                    cancel_slot(&slots[1 - slot]);
                    return Ok(value);
                }
                Err(e) if e.is_transient() => {
                    self.record_failure(replica);
                    if outstanding == 0 {
                        if launched == 1 {
                            // The primary failed fast, before the hedge
                            // timer — plain failover to the secondary.
                            obs::FAILOVERS.incr();
                            self.breakers[secondary].attempts += 1;
                            spawn(1, self.endpoints[secondary].as_str());
                            launched = 2;
                            outstanding = 1;
                        } else {
                            return Err(e);
                        }
                    }
                }
                Err(e) => {
                    self.record_success(replica);
                    cancel_slot(&slots[1 - slot]);
                    return Err(e);
                }
            }
        }
    }
}

fn connect_endpoint(endpoint: &str, timeout: Option<Duration>) -> Result<Client> {
    match timeout {
        Some(t) => Client::connect_with_timeout(endpoint, t),
        None => Client::connect(endpoint),
    }
}

/// Shuts down a raced attempt's socket (if it got as far as connecting)
/// so its blocked read returns immediately instead of serving a stale
/// reply into the void.
fn cancel_slot(slot: &std::sync::Arc<std::sync::Mutex<Option<TcpStream>>>) {
    if let Some(stream) = slot.lock().expect("hedge cancel slot").take() {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
}

fn unexpected(what: &str, response: &Response) -> ServeError {
    match response {
        // The transient overload family maps to its typed variants so
        // `is_transient` (and therefore retry policies) classify server
        // responses exactly like local failures; everything else stays a
        // `Remote` carrying the structured code.
        Response::Error { code, message } => match code.as_str() {
            "overloaded" => ServeError::Overloaded,
            "deadline_exceeded" => ServeError::DeadlineExceeded,
            "shutting_down" => ServeError::QueueClosed,
            _ => ServeError::Remote {
                code: code.clone(),
                message: message.clone(),
            },
        },
        other => ServeError::Protocol(format!("unexpected response to {what}: {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_map_to_typed_variants() {
        let err = |code: &str| {
            unexpected(
                "classify",
                &Response::Error {
                    code: code.to_string(),
                    message: "m".to_string(),
                },
            )
        };
        assert_eq!(err("overloaded"), ServeError::Overloaded);
        assert_eq!(err("deadline_exceeded"), ServeError::DeadlineExceeded);
        assert_eq!(err("shutting_down"), ServeError::QueueClosed);
        assert_eq!(
            err("unknown_model"),
            ServeError::Remote {
                code: "unknown_model".to_string(),
                message: "m".to_string(),
            }
        );
    }

    #[test]
    fn backoff_is_exponential_capped_and_seed_deterministic() {
        let policy = RetryPolicy {
            attempts: 5,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(450),
            seed: 7,
        };
        let mut rng_a = 1u64;
        let mut rng_b = 1u64;
        for attempt in 0..6 {
            let exp = Duration::from_millis(100)
                .saturating_mul(1 << attempt)
                .min(Duration::from_millis(450));
            let a = policy.backoff(attempt, &mut rng_a);
            assert!(a >= exp.mul_f64(0.5), "attempt {attempt}: {a:?} < half");
            assert!(a <= exp, "attempt {attempt}: {a:?} > cap");
            assert_eq!(a, policy.backoff(attempt, &mut rng_b));
        }
    }

    #[test]
    fn run_retries_transient_and_stops_on_permanent() {
        let policy = RetryPolicy {
            attempts: 4,
            base_backoff: Duration::from_micros(1),
            max_backoff: Duration::from_micros(2),
            seed: 0,
        };
        // Transient errors burn attempts until one succeeds.
        let mut calls = 0;
        let out = policy.run(|attempt| {
            calls += 1;
            if attempt < 2 {
                Err(ServeError::Overloaded)
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 2);
        assert_eq!(calls, 3);

        // Permanent errors return immediately.
        let mut calls = 0;
        let out: Result<()> = policy.run(|_| {
            calls += 1;
            Err(ServeError::UnknownModel("x".to_string()))
        });
        assert!(matches!(out, Err(ServeError::UnknownModel(_))));
        assert_eq!(calls, 1);

        // The budget is honoured when everything is transient.
        let mut calls = 0;
        let out: Result<()> = policy.run(|_| {
            calls += 1;
            Err(ServeError::Io("reset".to_string()))
        });
        assert!(matches!(out, Err(ServeError::Io(_))));
        assert_eq!(calls, 4);
    }
}
