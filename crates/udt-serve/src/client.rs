//! Blocking NDJSON client for a `udt-serve` endpoint.
//!
//! One TCP connection, one request line out, one response line back —
//! used by the `udt-client` CLI, the integration tests and the `serve`
//! bench. The client is deliberately synchronous: a caller that wants
//! pipelining opens more connections (the server coalesces across all of
//! them into shared micro-batches anyway).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use udt_data::Tuple;

use crate::error::ServeError;
use crate::protocol::{ModelInfo, Request, Response, StatsFormat, StatsReport};
use crate::Result;

/// Reconnect-and-retry policy for transient failures (sheds, deadline
/// drops, worker panics, transport errors — [`ServeError::is_transient`]
/// decides). Backoff is exponential with deterministic, seeded jitter:
/// attempt `n` sleeps a uniformly drawn fraction (half to all) of
/// `base_backoff · 2ⁿ`, capped at `max_backoff`, so a burst of shed
/// clients does not reconverge on the server in lockstep.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
    /// Seed for the jitter stream (same seed, same sleep schedule).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt + 1` (0-based), advancing
    /// the caller-held jitter stream.
    pub fn backoff(&self, attempt: u32, rng: &mut u64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(20))
            .min(self.max_backoff);
        let draw = (rand::split_mix64(rng) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        exp.mul_f64(0.5 + draw / 2.0)
    }

    /// Runs `op` (which gets the 0-based attempt number) until it
    /// succeeds, fails permanently, or the attempt budget is spent.
    /// Only transient errors are retried; `op` should build a fresh
    /// connection per attempt — the old one is suspect by definition.
    pub fn run<T>(&self, mut op: impl FnMut(u32) -> Result<T>) -> Result<T> {
        let mut rng = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        rand::split_mix64(&mut rng);
        let attempts = self.attempts.max(1);
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(value) => return Ok(value),
                Err(e) if e.is_transient() && attempt + 1 < attempts => {
                    std::thread::sleep(self.backoff(attempt, &mut rng));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a serving endpoint.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Connects with a budget on the connect itself, and arms the same
    /// budget as the socket read/write timeout for every subsequent
    /// request — a wedged server then surfaces as a transient
    /// [`ServeError::Io`] instead of hanging the caller forever.
    pub fn connect_with_timeout<A: ToSocketAddrs>(addr: A, timeout: Duration) -> Result<Client> {
        let mut last: Option<std::io::Error> = None;
        for sock in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&sock, timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    stream.set_read_timeout(Some(timeout)).ok();
                    stream.set_write_timeout(Some(timeout)).ok();
                    let writer = stream.try_clone()?;
                    return Ok(Client {
                        reader: BufReader::new(stream),
                        writer,
                    });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.map(ServeError::from).unwrap_or_else(|| {
            ServeError::Io("address resolved to no socket addresses".to_string())
        }))
    }

    /// Sends one request and reads its response line.
    pub fn request(&mut self, request: &Request) -> Result<Response> {
        let mut line = request.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ServeError::Io("server closed the connection".into()));
        }
        // NDJSON frames end in a newline; a line that stops without one
        // means the connection died mid-response. That is a *transport*
        // failure (retryable on a fresh connection), not a protocol
        // violation — do not hand the fragment to the parser.
        if !reply.ends_with('\n') {
            return Err(ServeError::Io(
                "connection severed mid-response (truncated frame)".into(),
            ));
        }
        Response::parse(&reply)
    }

    /// Classifies one tuple; returns `(distribution, argmax label)`.
    pub fn classify(&mut self, model: &str, tuple: &Tuple) -> Result<(Vec<f64>, usize)> {
        match self.request(&Request::Classify {
            model: model.to_string(),
            tuple: tuple.clone(),
        })? {
            Response::Classify {
                distribution,
                label,
            } => Ok((distribution, label)),
            other => Err(unexpected("classify", &other)),
        }
    }

    /// Classifies a batch of tuples; returns per-tuple distributions and
    /// labels, in request order.
    pub fn classify_batch(
        &mut self,
        model: &str,
        tuples: &[Tuple],
    ) -> Result<(Vec<Vec<f64>>, Vec<usize>)> {
        match self.request(&Request::ClassifyBatch {
            model: model.to_string(),
            tuples: tuples.to_vec(),
        })? {
            Response::ClassifyBatch {
                distributions,
                labels,
            } => Ok((distributions, labels)),
            other => Err(unexpected("classify_batch", &other)),
        }
    }

    /// Loads a model file (server-side path) under a fresh name.
    pub fn load_model(&mut self, name: &str, path: &str) -> Result<ModelInfo> {
        match self.request(&Request::LoadModel {
            name: name.to_string(),
            path: path.to_string(),
        })? {
            Response::ModelLoaded(info) => Ok(info),
            other => Err(unexpected("load_model", &other)),
        }
    }

    /// Loads a model file and hot-swaps it into the named binding.
    pub fn swap(&mut self, name: &str, path: &str) -> Result<ModelInfo> {
        match self.request(&Request::Swap {
            name: name.to_string(),
            path: path.to_string(),
        })? {
            Response::ModelLoaded(info) => Ok(info),
            other => Err(unexpected("swap", &other)),
        }
    }

    /// Fetches the server's stats report.
    pub fn stats(&mut self) -> Result<StatsReport> {
        match self.request(&Request::Stats {
            format: StatsFormat::Json,
        })? {
            Response::Stats(report) => Ok(report),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Fetches the server's stats as a Prometheus text exposition.
    pub fn stats_prometheus(&mut self) -> Result<String> {
        match self.request(&Request::Stats {
            format: StatsFormat::Prometheus,
        })? {
            Response::StatsText { text } => Ok(text),
            other => Err(unexpected("stats (prometheus)", &other)),
        }
    }

    /// Asks the server to shut down cleanly.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("shutdown", &other)),
        }
    }
}

fn unexpected(what: &str, response: &Response) -> ServeError {
    match response {
        // The transient overload family maps to its typed variants so
        // `is_transient` (and therefore retry policies) classify server
        // responses exactly like local failures; everything else stays a
        // `Remote` carrying the structured code.
        Response::Error { code, message } => match code.as_str() {
            "overloaded" => ServeError::Overloaded,
            "deadline_exceeded" => ServeError::DeadlineExceeded,
            "shutting_down" => ServeError::QueueClosed,
            _ => ServeError::Remote {
                code: code.clone(),
                message: message.clone(),
            },
        },
        other => ServeError::Protocol(format!("unexpected response to {what}: {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_map_to_typed_variants() {
        let err = |code: &str| {
            unexpected(
                "classify",
                &Response::Error {
                    code: code.to_string(),
                    message: "m".to_string(),
                },
            )
        };
        assert_eq!(err("overloaded"), ServeError::Overloaded);
        assert_eq!(err("deadline_exceeded"), ServeError::DeadlineExceeded);
        assert_eq!(err("shutting_down"), ServeError::QueueClosed);
        assert_eq!(
            err("unknown_model"),
            ServeError::Remote {
                code: "unknown_model".to_string(),
                message: "m".to_string(),
            }
        );
    }

    #[test]
    fn backoff_is_exponential_capped_and_seed_deterministic() {
        let policy = RetryPolicy {
            attempts: 5,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(450),
            seed: 7,
        };
        let mut rng_a = 1u64;
        let mut rng_b = 1u64;
        for attempt in 0..6 {
            let exp = Duration::from_millis(100)
                .saturating_mul(1 << attempt)
                .min(Duration::from_millis(450));
            let a = policy.backoff(attempt, &mut rng_a);
            assert!(a >= exp.mul_f64(0.5), "attempt {attempt}: {a:?} < half");
            assert!(a <= exp, "attempt {attempt}: {a:?} > cap");
            assert_eq!(a, policy.backoff(attempt, &mut rng_b));
        }
    }

    #[test]
    fn run_retries_transient_and_stops_on_permanent() {
        let policy = RetryPolicy {
            attempts: 4,
            base_backoff: Duration::from_micros(1),
            max_backoff: Duration::from_micros(2),
            seed: 0,
        };
        // Transient errors burn attempts until one succeeds.
        let mut calls = 0;
        let out = policy.run(|attempt| {
            calls += 1;
            if attempt < 2 {
                Err(ServeError::Overloaded)
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 2);
        assert_eq!(calls, 3);

        // Permanent errors return immediately.
        let mut calls = 0;
        let out: Result<()> = policy.run(|_| {
            calls += 1;
            Err(ServeError::UnknownModel("x".to_string()))
        });
        assert!(matches!(out, Err(ServeError::UnknownModel(_))));
        assert_eq!(calls, 1);

        // The budget is honoured when everything is transient.
        let mut calls = 0;
        let out: Result<()> = policy.run(|_| {
            calls += 1;
            Err(ServeError::Io("reset".to_string()))
        });
        assert!(matches!(out, Err(ServeError::Io(_))));
        assert_eq!(calls, 4);
    }
}
