//! Blocking NDJSON client for a `udt-serve` endpoint.
//!
//! One TCP connection, one request line out, one response line back —
//! used by the `udt-client` CLI, the integration tests and the `serve`
//! bench. The client is deliberately synchronous: a caller that wants
//! pipelining opens more connections (the server coalesces across all of
//! them into shared micro-batches anyway).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use udt_data::Tuple;

use crate::error::ServeError;
use crate::protocol::{ModelInfo, Request, Response, StatsFormat, StatsReport};
use crate::Result;

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a serving endpoint.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and reads its response line.
    pub fn request(&mut self, request: &Request) -> Result<Response> {
        let mut line = request.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ServeError::Io("server closed the connection".into()));
        }
        Response::parse(&reply)
    }

    /// Classifies one tuple; returns `(distribution, argmax label)`.
    pub fn classify(&mut self, model: &str, tuple: &Tuple) -> Result<(Vec<f64>, usize)> {
        match self.request(&Request::Classify {
            model: model.to_string(),
            tuple: tuple.clone(),
        })? {
            Response::Classify {
                distribution,
                label,
            } => Ok((distribution, label)),
            other => Err(unexpected("classify", &other)),
        }
    }

    /// Classifies a batch of tuples; returns per-tuple distributions and
    /// labels, in request order.
    pub fn classify_batch(
        &mut self,
        model: &str,
        tuples: &[Tuple],
    ) -> Result<(Vec<Vec<f64>>, Vec<usize>)> {
        match self.request(&Request::ClassifyBatch {
            model: model.to_string(),
            tuples: tuples.to_vec(),
        })? {
            Response::ClassifyBatch {
                distributions,
                labels,
            } => Ok((distributions, labels)),
            other => Err(unexpected("classify_batch", &other)),
        }
    }

    /// Loads a model file (server-side path) under a fresh name.
    pub fn load_model(&mut self, name: &str, path: &str) -> Result<ModelInfo> {
        match self.request(&Request::LoadModel {
            name: name.to_string(),
            path: path.to_string(),
        })? {
            Response::ModelLoaded(info) => Ok(info),
            other => Err(unexpected("load_model", &other)),
        }
    }

    /// Loads a model file and hot-swaps it into the named binding.
    pub fn swap(&mut self, name: &str, path: &str) -> Result<ModelInfo> {
        match self.request(&Request::Swap {
            name: name.to_string(),
            path: path.to_string(),
        })? {
            Response::ModelLoaded(info) => Ok(info),
            other => Err(unexpected("swap", &other)),
        }
    }

    /// Fetches the server's stats report.
    pub fn stats(&mut self) -> Result<StatsReport> {
        match self.request(&Request::Stats {
            format: StatsFormat::Json,
        })? {
            Response::Stats(report) => Ok(report),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Fetches the server's stats as a Prometheus text exposition.
    pub fn stats_prometheus(&mut self) -> Result<String> {
        match self.request(&Request::Stats {
            format: StatsFormat::Prometheus,
        })? {
            Response::StatsText { text } => Ok(text),
            other => Err(unexpected("stats (prometheus)", &other)),
        }
    }

    /// Asks the server to shut down cleanly.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("shutdown", &other)),
        }
    }
}

fn unexpected(what: &str, response: &Response) -> ServeError {
    match response {
        Response::Error { message } => ServeError::Remote(message.clone()),
        other => ServeError::Protocol(format!("unexpected response to {what}: {other:?}")),
    }
}
