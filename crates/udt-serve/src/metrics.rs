//! Serving metrics: per-model counters and latency histograms.
//!
//! Worker threads record one observation per request after its batch
//! completes (latency measured from enqueue to reply, so queueing delay
//! is included — that is the figure a client actually experiences).
//! Latencies go into a log₂-bucketed histogram: bucket `i` covers
//! `[2^i, 2^(i+1))` nanoseconds, 48 buckets span ~1 ns to ~78 h, and a
//! percentile is reported as the upper bound of the bucket holding it.
//! The error is bounded by the bucket width (a factor of 2) — plenty for
//! p50/p95/p99 dashboards — in exchange for constant memory and O(1)
//! record cost under one short mutex hold.

//! The same counters and buckets can be rendered as a Prometheus text
//! exposition ([`ServeMetrics::render_prometheus`], served by the
//! `stats` command with `"format":"prometheus"`): counters become
//! `_total` series, the log₂ buckets become a cumulative
//! `..._latency_seconds` histogram with `le` labels, and registry /
//! queue gauges ride along — a read-only formatting of state the server
//! already tracks.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::protocol::{HealthStats, ModelInfo, ModelMetricsSnapshot, QueueStats};

/// Number of log₂ latency buckets (`2^48` ns ≈ 78 hours).
const BUCKETS: usize = 48;

/// A fixed-size log₂ histogram of nanosecond latencies.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    total_ns: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            total_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// Records one latency observation.
    pub fn record(&mut self, latency: Duration) {
        let ns = latency.as_nanos().max(1) as u64;
        let bucket = (ns.ilog2() as usize).min(BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_ns += latency.as_nanos();
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// The latency (in nanoseconds) below which `q` of the observations
    /// fall, reported as the upper bound of the matching bucket. Returns
    /// 0 for an empty histogram; `q` is clamped to `[0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * count), at least 1: the rank of the target observation.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        1u64 << 63
    }
}

/// One model's mutable counters.
#[derive(Debug, Clone, Default)]
struct ModelCounters {
    requests: u64,
    tuples: u64,
    errors: u64,
    latency: LatencyHistogram,
}

/// Server-wide overload/failure counters (not per model: a shed request
/// is rejected before its model name matters, and keying rejections by
/// client-supplied strings would let an attacker grow the map).
#[derive(Debug, Default)]
struct HealthCounters {
    sheds: u64,
    deadline_drops: u64,
    worker_panics: u64,
    rejected_connections: u64,
    queue_wait: LatencyHistogram,
}

/// Aggregated serving metrics, shared by every worker and connection
/// thread. All mutation happens under one mutex; every critical section
/// is a handful of integer operations. Locks recover from poisoning
/// (`into_inner`): a panicking worker must not take the metrics — and
/// with them every future `stats` response — down with it.
#[derive(Debug)]
pub struct ServeMetrics {
    started: Instant,
    per_model: Mutex<HashMap<String, ModelCounters>>,
    health: Mutex<HealthCounters>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics {
            started: Instant::now(),
            per_model: Mutex::new(HashMap::new()),
            health: Mutex::new(HealthCounters::default()),
        }
    }
}

/// Locks a mutex, recovering the data from a poisoned lock: counters
/// are plain integers, always valid, and losing observability during a
/// failure is exactly when it hurts most.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ServeMetrics {
    /// Creates an empty metrics registry; the uptime clock starts now.
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    /// Records one successfully served request for `model`.
    pub fn record(&self, model: &str, tuples: usize, latency: Duration) {
        let mut map = lock_recover(&self.per_model);
        let c = map.entry(model.to_string()).or_default();
        c.requests += 1;
        c.tuples += tuples as u64;
        c.latency.record(latency);
    }

    /// Records one failed request for `model`.
    pub fn record_error(&self, model: &str) {
        let mut map = lock_recover(&self.per_model);
        let c = map.entry(model.to_string()).or_default();
        c.requests += 1;
        c.errors += 1;
    }

    /// Records one request rejected at admission (queue full, shed
    /// policy or bounded submit wait expired).
    pub fn record_shed(&self) {
        lock_recover(&self.health).sheds += 1;
    }

    /// Records one accepted job dropped at dequeue because its deadline
    /// passed while it waited.
    pub fn record_deadline_drop(&self) {
        lock_recover(&self.health).deadline_drops += 1;
    }

    /// Records one caught-and-contained worker panic.
    pub fn record_worker_panic(&self) {
        lock_recover(&self.health).worker_panics += 1;
    }

    /// Records one connection refused by the accept-loop gate.
    pub fn record_rejected_connection(&self) {
        lock_recover(&self.health).rejected_connections += 1;
    }

    /// Records how long one admitted job waited between enqueue and
    /// dequeue (the admission-control signal: queue wait growing toward
    /// the deadline means sheds are imminent).
    pub fn record_queue_wait(&self, wait: Duration) {
        lock_recover(&self.health).queue_wait.record(wait);
    }

    /// A serialisable snapshot of the server-wide health counters.
    pub fn health_snapshot(&self) -> HealthStats {
        let h = lock_recover(&self.health);
        HealthStats {
            sheds: h.sheds,
            deadline_drops: h.deadline_drops,
            worker_panics: h.worker_panics,
            rejected_connections: h.rejected_connections,
            queue_wait_count: h.queue_wait.count(),
            queue_wait_p50_us: h.queue_wait.quantile_ns(0.50) as f64 / 1_000.0,
            queue_wait_p99_us: h.queue_wait.quantile_ns(0.99) as f64 / 1_000.0,
        }
    }

    /// Seconds since the metrics registry (≈ the server) started.
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// A serialisable snapshot of every model's counters, sorted by model
    /// name so `stats` responses are stable.
    pub fn snapshot(&self) -> Vec<ModelMetricsSnapshot> {
        let map = lock_recover(&self.per_model);
        let mut out: Vec<ModelMetricsSnapshot> = map
            .iter()
            .map(|(name, c)| ModelMetricsSnapshot {
                model: name.clone(),
                requests: c.requests,
                tuples: c.tuples,
                errors: c.errors,
                mean_us: c.latency.mean_ns() / 1_000.0,
                p50_us: c.latency.quantile_ns(0.50) as f64 / 1_000.0,
                p95_us: c.latency.quantile_ns(0.95) as f64 / 1_000.0,
                p99_us: c.latency.quantile_ns(0.99) as f64 / 1_000.0,
            })
            .collect();
        out.sort_by(|a, b| a.model.cmp(&b.model));
        out
    }

    /// Renders the Prometheus text exposition: per-model request /
    /// tuple / error counters, the latency histogram with cumulative
    /// log₂ buckets (`le` upper bounds in seconds), and the registry /
    /// queue gauges passed in. Models are emitted in name order so the
    /// output is stable.
    pub fn render_prometheus(
        &self,
        models: &[ModelInfo],
        queue: &QueueStats,
        uptime_seconds: f64,
    ) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# HELP udt_serve_uptime_seconds Seconds since the server started."
        );
        let _ = writeln!(out, "# TYPE udt_serve_uptime_seconds gauge");
        let _ = writeln!(out, "udt_serve_uptime_seconds {uptime_seconds}");
        let _ = writeln!(
            out,
            "# HELP udt_serve_queue_depth Jobs waiting in the scheduler queue."
        );
        let _ = writeln!(out, "# TYPE udt_serve_queue_depth gauge");
        let _ = writeln!(out, "udt_serve_queue_depth {}", queue.depth);
        let _ = writeln!(
            out,
            "# HELP udt_serve_queue_workers Scheduler worker threads."
        );
        let _ = writeln!(out, "# TYPE udt_serve_queue_workers gauge");
        let _ = writeln!(out, "udt_serve_queue_workers {}", queue.workers);

        // Server-wide overload/failure counters and the queue-wait
        // histogram (the admission-control signals).
        let health = lock_recover(&self.health);
        for (name, help, value) in [
            (
                "udt_serve_sheds_total",
                "Requests rejected at admission (queue full).",
                health.sheds,
            ),
            (
                "udt_serve_deadline_drops_total",
                "Accepted jobs dropped at dequeue past their deadline.",
                health.deadline_drops,
            ),
            (
                "udt_serve_worker_panics_total",
                "Worker panics caught and contained.",
                health.worker_panics,
            ),
            (
                "udt_serve_rejected_connections_total",
                "Connections refused by the max-connections gate.",
                health.rejected_connections,
            ),
        ] {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        let _ = writeln!(
            out,
            "# HELP udt_serve_queue_wait_seconds Enqueue-to-dequeue wait (log2 buckets)."
        );
        let _ = writeln!(out, "# TYPE udt_serve_queue_wait_seconds histogram");
        let h = &health.queue_wait;
        let mut cumulative = 0u64;
        if let Some(last) = h.buckets.iter().rposition(|&n| n > 0) {
            for (i, &n) in h.buckets.iter().enumerate().take(last + 1) {
                cumulative += n;
                let le = (1u128 << (i + 1)) as f64 / 1e9;
                let _ = writeln!(
                    out,
                    "udt_serve_queue_wait_seconds_bucket{{le=\"{le}\"}} {cumulative}"
                );
            }
        }
        let _ = writeln!(
            out,
            "udt_serve_queue_wait_seconds_bucket{{le=\"+Inf\"}} {}",
            h.count
        );
        let _ = writeln!(
            out,
            "udt_serve_queue_wait_seconds_sum {}",
            h.total_ns as f64 / 1e9
        );
        let _ = writeln!(out, "udt_serve_queue_wait_seconds_count {}", h.count);
        drop(health);

        let mut sorted: Vec<&ModelInfo> = models.iter().collect();
        sorted.sort_by(|a, b| a.name.cmp(&b.name));
        let _ = writeln!(
            out,
            "# HELP udt_serve_model_heap_bytes Arena heap footprint per model."
        );
        let _ = writeln!(out, "# TYPE udt_serve_model_heap_bytes gauge");
        for m in &sorted {
            let label = escape_label(&m.name);
            let _ = writeln!(
                out,
                "udt_serve_model_heap_bytes{{model=\"{label}\"}} {}",
                m.heap_bytes
            );
        }
        let _ = writeln!(
            out,
            "# HELP udt_serve_model_generation Hot-swap generation per model."
        );
        let _ = writeln!(out, "# TYPE udt_serve_model_generation gauge");
        for m in &sorted {
            let label = escape_label(&m.name);
            let _ = writeln!(
                out,
                "udt_serve_model_generation{{model=\"{label}\"}} {}",
                m.generation
            );
        }

        let map = lock_recover(&self.per_model);
        let mut names: Vec<&String> = map.keys().collect();
        names.sort();
        let _ = writeln!(
            out,
            "# HELP udt_serve_requests_total Requests served, including failed ones."
        );
        let _ = writeln!(out, "# TYPE udt_serve_requests_total counter");
        for name in &names {
            let label = escape_label(name);
            let _ = writeln!(
                out,
                "udt_serve_requests_total{{model=\"{label}\"}} {}",
                map[*name].requests
            );
        }
        let _ = writeln!(out, "# HELP udt_serve_tuples_total Tuples classified.");
        let _ = writeln!(out, "# TYPE udt_serve_tuples_total counter");
        for name in &names {
            let label = escape_label(name);
            let _ = writeln!(
                out,
                "udt_serve_tuples_total{{model=\"{label}\"}} {}",
                map[*name].tuples
            );
        }
        let _ = writeln!(out, "# HELP udt_serve_errors_total Requests that failed.");
        let _ = writeln!(out, "# TYPE udt_serve_errors_total counter");
        for name in &names {
            let label = escape_label(name);
            let _ = writeln!(
                out,
                "udt_serve_errors_total{{model=\"{label}\"}} {}",
                map[*name].errors
            );
        }
        let _ = writeln!(
            out,
            "# HELP udt_serve_request_latency_seconds Enqueue-to-reply latency (log2 buckets)."
        );
        let _ = writeln!(out, "# TYPE udt_serve_request_latency_seconds histogram");
        for name in &names {
            let label = escape_label(name);
            let h = &map[*name].latency;
            // Cumulative buckets up to the last non-empty one, then +Inf
            // — the standard Prometheus histogram shape without 48 empty
            // series per model.
            let last = h.buckets.iter().rposition(|&n| n > 0);
            let mut cumulative = 0u64;
            if let Some(last) = last {
                for (i, &n) in h.buckets.iter().enumerate().take(last + 1) {
                    cumulative += n;
                    // Bucket i covers [2^i, 2^(i+1)) ns; `le` is the
                    // upper bound in seconds.
                    let le = (1u128 << (i + 1)) as f64 / 1e9;
                    let _ = writeln!(
                        out,
                        "udt_serve_request_latency_seconds_bucket{{model=\"{label}\",le=\"{le}\"}} {cumulative}"
                    );
                }
            }
            let _ = writeln!(
                out,
                "udt_serve_request_latency_seconds_bucket{{model=\"{label}\",le=\"+Inf\"}} {}",
                h.count
            );
            let _ = writeln!(
                out,
                "udt_serve_request_latency_seconds_sum{{model=\"{label}\"}} {}",
                h.total_ns as f64 / 1e9
            );
            let _ = writeln!(
                out,
                "udt_serve_request_latency_seconds_count{{model=\"{label}\"}} {}",
                h.count
            );
        }

        // Workspace-wide build/pool/kernel/pruning counters from
        // `udt-obs`: any tree built inside this process (warm-start
        // builds, admin-triggered rebuilds) shows up here next to the
        // serving metrics, so one scrape covers both planes.
        udt_obs::render_prometheus_into(&mut out);
        out
    }
}

/// Escapes a model name for use inside a Prometheus label value.
fn escape_label(name: &str) -> String {
    name.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.quantile_ns(0.5), 0);
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let mut h = LatencyHistogram::default();
        // 90 observations at ~1 µs, 10 at ~1 ms.
        for _ in 0..90 {
            h.record(Duration::from_micros(1));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(1));
        }
        assert_eq!(h.count(), 100);
        // 1 µs = 1000 ns lives in bucket 9 ([512, 1024)); its upper
        // bound is 1024 ns.
        assert_eq!(h.quantile_ns(0.50), 1024);
        assert_eq!(h.quantile_ns(0.90), 1024);
        // 1 ms = 1e6 ns lives in bucket 19 ([524288, 1048576)).
        assert_eq!(h.quantile_ns(0.95), 1 << 20);
        assert_eq!(h.quantile_ns(0.99), 1 << 20);
        assert_eq!(h.quantile_ns(1.0), 1 << 20);
        // Mean sits between the two modes.
        assert!(h.mean_ns() > 1_000.0 && h.mean_ns() < 1_000_000.0);
    }

    #[test]
    fn huge_latencies_saturate_the_last_bucket() {
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_secs(1_000_000_000));
        assert_eq!(h.count(), 1);
        assert!(h.quantile_ns(0.5) >= 1u64 << 48);
    }

    #[test]
    fn prometheus_exposition_renders_counters_and_buckets() {
        let m = ServeMetrics::new();
        m.record("toy", 4, Duration::from_micros(1));
        m.record("toy", 2, Duration::from_millis(1));
        m.record_error("toy");
        m.record("a\"b", 1, Duration::from_micros(2));
        let models = vec![ModelInfo {
            name: "toy".into(),
            generation: 3,
            nodes: 5,
            leaves: 3,
            depth: 2,
            n_classes: 2,
            n_attributes: 1,
            heap_bytes: 512,
        }];
        let queue = QueueStats {
            workers: 2,
            capacity: 64,
            depth: 1,
            max_batch_tuples: 32,
            max_delay_us: 500,
            policy: "block".into(),
            deadline_ms: 0,
        };
        m.record_shed();
        m.record_shed();
        m.record_deadline_drop();
        m.record_worker_panic();
        m.record_rejected_connection();
        m.record_queue_wait(Duration::from_micros(1));
        let text = m.render_prometheus(&models, &queue, 9.5);
        assert!(text.contains("udt_serve_sheds_total 2"));
        assert!(text.contains("udt_serve_deadline_drops_total 1"));
        assert!(text.contains("udt_serve_worker_panics_total 1"));
        assert!(text.contains("udt_serve_rejected_connections_total 1"));
        assert!(text.contains("udt_serve_queue_wait_seconds_count 1"));
        assert!(text.contains("udt_serve_queue_wait_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("udt_serve_uptime_seconds 9.5"));
        assert!(text.contains("udt_serve_queue_depth 1"));
        assert!(text.contains("udt_serve_model_heap_bytes{model=\"toy\"} 512"));
        assert!(text.contains("udt_serve_model_generation{model=\"toy\"} 3"));
        assert!(text.contains("udt_serve_requests_total{model=\"toy\"} 3"));
        assert!(text.contains("udt_serve_tuples_total{model=\"toy\"} 6"));
        assert!(text.contains("udt_serve_errors_total{model=\"toy\"} 1"));
        // 1 µs lives in bucket 9 (le = 2^10 ns = 1.024e-6 s); the
        // histogram is cumulative and closes with +Inf = count.
        assert!(text.contains(
            "udt_serve_request_latency_seconds_bucket{model=\"toy\",le=\"0.000001024\"} 1"
        ));
        assert!(
            text.contains("udt_serve_request_latency_seconds_bucket{model=\"toy\",le=\"+Inf\"} 2")
        );
        assert!(text.contains("udt_serve_request_latency_seconds_count{model=\"toy\"} 2"));
        // Quotes in model names are escaped in label values.
        assert!(text.contains("udt_serve_requests_total{model=\"a\\\"b\"} 1"));
        // Cumulative bucket counts never decrease per model.
        let mut prev = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("udt_serve_request_latency_seconds_bucket{model=\"toy\""))
        {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= prev, "cumulative buckets: {line}");
            prev = n;
        }
    }

    #[test]
    fn request_counters_survive_model_hot_swaps() {
        use crate::registry::ModelRegistry;
        use udt_tree::{Algorithm, TreeBuilder, UdtConfig};

        let trained = |algorithm| {
            TreeBuilder::new(UdtConfig::new(algorithm).with_postprune(false))
                .build(&udt_data::toy::table1_dataset().unwrap())
                .unwrap()
                .tree
        };
        let reg = ModelRegistry::new();
        let m = ServeMetrics::new();
        reg.insert_tree("m", trained(Algorithm::UdtEs)).unwrap();
        m.record("m", 3, Duration::from_micros(5));
        // Hot-swap bumps the generation but the per-model counters are
        // keyed by name, so traffic keeps accumulating on one series.
        let info = reg.swap_tree("m", trained(Algorithm::Avg));
        assert_eq!(info.generation, 2);
        m.record("m", 7, Duration::from_micros(5));
        let queue = QueueStats {
            workers: 1,
            capacity: 8,
            depth: 0,
            max_batch_tuples: 32,
            max_delay_us: 500,
            policy: "block".into(),
            deadline_ms: 0,
        };
        let text = m.render_prometheus(&reg.info(), &queue, 1.0);
        assert!(text.contains("udt_serve_model_generation{model=\"m\"} 2"));
        assert!(text.contains("udt_serve_requests_total{model=\"m\"} 2"));
        assert!(text.contains("udt_serve_tuples_total{model=\"m\"} 10"));
        assert!(text.contains("udt_serve_request_latency_seconds_count{model=\"m\"} 2"));
    }

    #[test]
    fn exposition_includes_workspace_build_metrics() {
        use udt_tree::{Algorithm, TreeBuilder, UdtConfig};

        // Building a tree in-process flushes its per-build stats into the
        // udt-obs catalog, and the serve exposition appends the whole
        // catalog after its own series.
        TreeBuilder::new(UdtConfig::new(Algorithm::UdtEs).with_postprune(false))
            .build(&udt_data::toy::table1_dataset().unwrap())
            .unwrap();
        let m = ServeMetrics::new();
        let queue = QueueStats {
            workers: 1,
            capacity: 8,
            depth: 0,
            max_batch_tuples: 32,
            max_delay_us: 500,
            policy: "block".into(),
            deadline_ms: 0,
        };
        let text = m.render_prometheus(&[], &queue, 1.0);
        assert!(text.contains("# TYPE udt_builds_total counter"));
        assert!(text.contains("udt_pool_tasks_executed_total"));
        assert!(text.contains("udt_kernel_scalar_batches_total"));
        assert!(text.contains("udt_split_candidates_total{algorithm=\"UDT-ES\"}"));
        assert!(text.contains("udt_split_prune_fraction{algorithm=\"UDT-ES\"}"));
        // The global catalog counted at least this build.
        let builds: u64 = text
            .lines()
            .find(|l| l.starts_with("udt_builds_total "))
            .and_then(|l| l.rsplit(' ').next())
            .unwrap()
            .parse()
            .unwrap();
        assert!(builds >= 1, "udt_builds_total should count the build");
    }

    #[test]
    fn health_counters_accumulate_and_snapshot() {
        let m = ServeMetrics::new();
        let empty = m.health_snapshot();
        assert_eq!(empty.sheds, 0);
        assert_eq!(empty.queue_wait_count, 0);
        m.record_shed();
        m.record_deadline_drop();
        m.record_deadline_drop();
        m.record_worker_panic();
        m.record_rejected_connection();
        m.record_queue_wait(Duration::from_micros(10));
        m.record_queue_wait(Duration::from_millis(1));
        let h = m.health_snapshot();
        assert_eq!(h.sheds, 1);
        assert_eq!(h.deadline_drops, 2);
        assert_eq!(h.worker_panics, 1);
        assert_eq!(h.rejected_connections, 1);
        assert_eq!(h.queue_wait_count, 2);
        assert!(h.queue_wait_p50_us > 0.0);
        assert!(h.queue_wait_p99_us >= h.queue_wait_p50_us);
    }

    #[test]
    fn metrics_accumulate_per_model() {
        let m = ServeMetrics::new();
        m.record("a", 3, Duration::from_micros(10));
        m.record("a", 5, Duration::from_micros(20));
        m.record_error("a");
        m.record("b", 1, Duration::from_micros(1));
        let snap = m.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].model, "a");
        assert_eq!(snap[0].requests, 3);
        assert_eq!(snap[0].tuples, 8);
        assert_eq!(snap[0].errors, 1);
        assert!(snap[0].p50_us > 0.0);
        assert!(snap[0].p99_us >= snap[0].p50_us);
        assert_eq!(snap[1].model, "b");
        assert!(m.uptime_seconds() >= 0.0);
    }
}
