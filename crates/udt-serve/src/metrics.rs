//! Serving metrics: per-model counters and latency histograms.
//!
//! Worker threads record one observation per request after its batch
//! completes (latency measured from enqueue to reply, so queueing delay
//! is included — that is the figure a client actually experiences).
//! Latencies go into a log₂-bucketed histogram: bucket `i` covers
//! `[2^i, 2^(i+1))` nanoseconds, 48 buckets span ~1 ns to ~78 h, and a
//! percentile is reported as the upper bound of the bucket holding it.
//! The error is bounded by the bucket width (a factor of 2) — plenty for
//! p50/p95/p99 dashboards — in exchange for constant memory and O(1)
//! record cost under one short mutex hold.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::protocol::ModelMetricsSnapshot;

/// Number of log₂ latency buckets (`2^48` ns ≈ 78 hours).
const BUCKETS: usize = 48;

/// A fixed-size log₂ histogram of nanosecond latencies.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    total_ns: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            total_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// Records one latency observation.
    pub fn record(&mut self, latency: Duration) {
        let ns = latency.as_nanos().max(1) as u64;
        let bucket = (ns.ilog2() as usize).min(BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_ns += latency.as_nanos();
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// The latency (in nanoseconds) below which `q` of the observations
    /// fall, reported as the upper bound of the matching bucket. Returns
    /// 0 for an empty histogram; `q` is clamped to `[0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * count), at least 1: the rank of the target observation.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        1u64 << 63
    }
}

/// One model's mutable counters.
#[derive(Debug, Clone, Default)]
struct ModelCounters {
    requests: u64,
    tuples: u64,
    errors: u64,
    latency: LatencyHistogram,
}

/// Aggregated serving metrics, shared by every worker and connection
/// thread. All mutation happens under one mutex; every critical section
/// is a handful of integer operations.
#[derive(Debug)]
pub struct ServeMetrics {
    started: Instant,
    per_model: Mutex<HashMap<String, ModelCounters>>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics {
            started: Instant::now(),
            per_model: Mutex::new(HashMap::new()),
        }
    }
}

impl ServeMetrics {
    /// Creates an empty metrics registry; the uptime clock starts now.
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    /// Records one successfully served request for `model`.
    pub fn record(&self, model: &str, tuples: usize, latency: Duration) {
        let mut map = self.per_model.lock().expect("metrics lock");
        let c = map.entry(model.to_string()).or_default();
        c.requests += 1;
        c.tuples += tuples as u64;
        c.latency.record(latency);
    }

    /// Records one failed request for `model`.
    pub fn record_error(&self, model: &str) {
        let mut map = self.per_model.lock().expect("metrics lock");
        let c = map.entry(model.to_string()).or_default();
        c.requests += 1;
        c.errors += 1;
    }

    /// Seconds since the metrics registry (≈ the server) started.
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// A serialisable snapshot of every model's counters, sorted by model
    /// name so `stats` responses are stable.
    pub fn snapshot(&self) -> Vec<ModelMetricsSnapshot> {
        let map = self.per_model.lock().expect("metrics lock");
        let mut out: Vec<ModelMetricsSnapshot> = map
            .iter()
            .map(|(name, c)| ModelMetricsSnapshot {
                model: name.clone(),
                requests: c.requests,
                tuples: c.tuples,
                errors: c.errors,
                mean_us: c.latency.mean_ns() / 1_000.0,
                p50_us: c.latency.quantile_ns(0.50) as f64 / 1_000.0,
                p95_us: c.latency.quantile_ns(0.95) as f64 / 1_000.0,
                p99_us: c.latency.quantile_ns(0.99) as f64 / 1_000.0,
            })
            .collect();
        out.sort_by(|a, b| a.model.cmp(&b.model));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.quantile_ns(0.5), 0);
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let mut h = LatencyHistogram::default();
        // 90 observations at ~1 µs, 10 at ~1 ms.
        for _ in 0..90 {
            h.record(Duration::from_micros(1));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(1));
        }
        assert_eq!(h.count(), 100);
        // 1 µs = 1000 ns lives in bucket 9 ([512, 1024)); its upper
        // bound is 1024 ns.
        assert_eq!(h.quantile_ns(0.50), 1024);
        assert_eq!(h.quantile_ns(0.90), 1024);
        // 1 ms = 1e6 ns lives in bucket 19 ([524288, 1048576)).
        assert_eq!(h.quantile_ns(0.95), 1 << 20);
        assert_eq!(h.quantile_ns(0.99), 1 << 20);
        assert_eq!(h.quantile_ns(1.0), 1 << 20);
        // Mean sits between the two modes.
        assert!(h.mean_ns() > 1_000.0 && h.mean_ns() < 1_000_000.0);
    }

    #[test]
    fn huge_latencies_saturate_the_last_bucket() {
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_secs(1_000_000_000));
        assert_eq!(h.count(), 1);
        assert!(h.quantile_ns(0.5) >= 1u64 << 48);
    }

    #[test]
    fn metrics_accumulate_per_model() {
        let m = ServeMetrics::new();
        m.record("a", 3, Duration::from_micros(10));
        m.record("a", 5, Duration::from_micros(20));
        m.record_error("a");
        m.record("b", 1, Duration::from_micros(1));
        let snap = m.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].model, "a");
        assert_eq!(snap[0].requests, 3);
        assert_eq!(snap[0].tuples, 8);
        assert_eq!(snap[0].errors, 1);
        assert!(snap[0].p50_us > 0.0);
        assert!(snap[0].p99_us >= snap[0].p50_us);
        assert_eq!(snap[1].model, "b");
        assert!(m.uptime_seconds() >= 0.0);
    }
}
