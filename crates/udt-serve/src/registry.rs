//! The hot-swap model registry.
//!
//! Models are loaded from the versioned persistence format
//! ([`udt_tree::persist`] — v2 arenas are structurally validated on
//! load, legacy boxed files convert transparently) and served as
//! `Arc<DecisionTree>` snapshots. The map itself lives behind an
//! `RwLock`, but the lock is only held to clone or replace an `Arc` —
//! classification never runs under it. Swapping a model is therefore
//! atomic from a client's point of view: requests that already took a
//! snapshot finish against the old arena (which is freed when its last
//! batch drops), requests that arrive after the swap see the new one,
//! and no request ever observes a half-loaded model because loading and
//! validation complete *before* the write lock is taken.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use udt_tree::{persist, DecisionTree};

use crate::error::ServeError;
use crate::protocol::ModelInfo;
use crate::Result;

struct Entry {
    tree: Arc<DecisionTree>,
    /// 1 for the first load, bumped by every successful swap.
    generation: u64,
}

/// A named collection of served models supporting atomic hot-swap.
#[derive(Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<String, Entry>>,
    /// Model files refused at startup preload (corrupt, unreadable) and
    /// set aside instead of aborting the server; surfaced by `health`.
    quarantined: AtomicU64,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// Registers an already-built tree under `name`. Fails with
    /// [`ServeError::ModelExists`] when the name is taken — replacing a
    /// live model must be an explicit [`swap`](Self::swap_tree).
    pub fn insert_tree(&self, name: &str, tree: DecisionTree) -> Result<ModelInfo> {
        let mut map = self.models.write().expect("registry lock");
        if map.contains_key(name) {
            return Err(ServeError::ModelExists(name.to_string()));
        }
        let entry = Entry {
            tree: Arc::new(tree),
            generation: 1,
        };
        let info = describe(name, &entry);
        map.insert(name.to_string(), entry);
        Ok(info)
    }

    /// Registers a tree under `name`, atomically replacing any existing
    /// binding. In-flight batches keep their old snapshot.
    pub fn swap_tree(&self, name: &str, tree: DecisionTree) -> ModelInfo {
        let mut map = self.models.write().expect("registry lock");
        let generation = map.get(name).map_or(1, |e| e.generation + 1);
        let entry = Entry {
            tree: Arc::new(tree),
            generation,
        };
        let info = describe(name, &entry);
        map.insert(name.to_string(), entry);
        info
    }

    /// Loads a persisted model file and registers it under a fresh name.
    ///
    /// The file is read, parsed and validated entirely outside the
    /// registry lock; a failed load leaves the registry untouched.
    pub fn load(&self, name: &str, path: &Path) -> Result<ModelInfo> {
        let tree = persist::load(path)?;
        self.insert_tree(name, tree)
    }

    /// Loads a persisted model file and atomically replaces (or creates)
    /// the binding for `name`. A failed load leaves the old model
    /// serving.
    pub fn swap(&self, name: &str, path: &Path) -> Result<ModelInfo> {
        let tree = persist::load(path)?;
        Ok(self.swap_tree(name, tree))
    }

    /// Takes a snapshot of the named model for classification. The
    /// returned `Arc` stays valid (and the arena stays allocated) for as
    /// long as the caller holds it, regardless of swaps.
    pub fn get(&self, name: &str) -> Result<Arc<DecisionTree>> {
        self.models
            .read()
            .expect("registry lock")
            .get(name)
            .map(|e| Arc::clone(&e.tree))
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))
    }

    /// Metadata for every registered model, sorted by name.
    pub fn info(&self) -> Vec<ModelInfo> {
        let map = self.models.read().expect("registry lock");
        let mut out: Vec<ModelInfo> = map.iter().map(|(n, e)| describe(n, e)).collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().expect("registry lock").len()
    }

    /// Whether the registry holds no models.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records one model file quarantined at startup preload.
    pub fn record_quarantined(&self) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        udt_obs::catalog::serve::MODELS_QUARANTINED.incr();
    }

    /// Model files quarantined at startup preload so far.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }
}

fn describe(name: &str, entry: &Entry) -> ModelInfo {
    let tree = &entry.tree;
    ModelInfo {
        name: name.to_string(),
        generation: entry.generation,
        nodes: tree.size(),
        leaves: tree.n_leaves(),
        depth: tree.depth(),
        n_classes: tree.n_classes(),
        n_attributes: tree.n_attributes(),
        heap_bytes: tree.flat().heap_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udt_data::toy;
    use udt_tree::{Algorithm, TreeBuilder, UdtConfig};

    fn trained(algorithm: Algorithm) -> DecisionTree {
        TreeBuilder::new(
            UdtConfig::new(algorithm)
                .with_postprune(false)
                .with_min_node_weight(0.0),
        )
        .build(&toy::table1_dataset().unwrap())
        .unwrap()
        .tree
    }

    #[test]
    fn insert_get_and_info() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        let info = reg.insert_tree("toy", trained(Algorithm::UdtEs)).unwrap();
        assert_eq!(info.name, "toy");
        assert_eq!(info.generation, 1);
        assert!(info.heap_bytes > 0);
        assert_eq!(info.n_classes, 2);
        let tree = reg.get("toy").unwrap();
        assert_eq!(tree.size(), info.nodes);
        assert_eq!(info.heap_bytes, tree.flat().heap_bytes());
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.info()[0], info);
        assert!(matches!(
            reg.get("missing"),
            Err(ServeError::UnknownModel(_))
        ));
    }

    #[test]
    fn double_insert_is_refused_but_swap_replaces() {
        let reg = ModelRegistry::new();
        reg.insert_tree("m", trained(Algorithm::UdtEs)).unwrap();
        assert!(matches!(
            reg.insert_tree("m", trained(Algorithm::Avg)),
            Err(ServeError::ModelExists(_))
        ));
        // A snapshot taken before the swap survives it untouched.
        let before = reg.get("m").unwrap();
        let info = reg.swap_tree("m", trained(Algorithm::Avg));
        assert_eq!(info.generation, 2);
        let after = reg.get("m").unwrap();
        assert!(!Arc::ptr_eq(&before, &after));
        assert_eq!(before.size(), before.flat().len(), "old snapshot intact");
        // Swapping a fresh name creates generation 1.
        let info = reg.swap_tree("other", trained(Algorithm::UdtEs));
        assert_eq!(info.generation, 1);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn load_and_swap_from_files() {
        let dir = std::env::temp_dir();
        let path = dir.join("udt-serve-registry-test.json");
        let tree = trained(Algorithm::UdtEs);
        persist::save(&tree, &path).unwrap();

        let reg = ModelRegistry::new();
        let info = reg.load("disk", &path).unwrap();
        assert_eq!(info.nodes, tree.size());
        // The loaded model is the persisted one, arena for arena.
        assert_eq!(reg.get("disk").unwrap().flat(), tree.flat());
        // A failed swap (missing file) leaves the old binding serving.
        assert!(reg.swap("disk", Path::new("/no/such/model.json")).is_err());
        assert_eq!(reg.get("disk").unwrap().flat(), tree.flat());
        let info = reg.swap("disk", &path).unwrap();
        assert_eq!(info.generation, 2);
        let _ = std::fs::remove_file(&path);
    }
}
