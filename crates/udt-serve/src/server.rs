//! The NDJSON-over-TCP server.
//!
//! Plain `std::net` blocking I/O: one accept loop, one thread per
//! connection, one [`crate::batcher::Batcher`] worker pool behind them
//! all. Connection threads do the cheap work themselves (parsing,
//! registry mutations, stats snapshots) and delegate every
//! classification to the shared scheduler, where requests from all
//! connections coalesce into micro-batches.
//!
//! ## Shutdown and drain
//!
//! A `shutdown` request acknowledges on its own connection, then flips
//! the shared flag and pokes the listener with a loopback connection so
//! `accept` wakes up. Connection threads poll the flag through a short
//! socket read timeout and drain; [`Server::run`] then waits for them up
//! to the configured **drain deadline** — a connection wedged on a
//! stalled peer cannot hold shutdown hostage — and shuts the scheduler
//! down, which drains the queue before stopping, so every request
//! accepted before the shutdown is answered.
//!
//! ## Overload at the door
//!
//! At most `max_connections` connections are served concurrently.
//! Excess connections receive one structured `overloaded` error line and
//! are closed immediately — a cheap, bounded rejection instead of an
//! unbounded thread pile-up — and are counted in the
//! `rejected_connections` health counter.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use udt_tree::classify::argmax_class;

use crate::batcher::Batcher;
use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::faults::{FaultInjector, FaultPoint};
use crate::metrics::ServeMetrics;
use crate::protocol::{HealthReport, Request, Response, StatsFormat, StatsReport};
use crate::registry::ModelRegistry;
use crate::Result;

/// How often an idle connection thread re-checks the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);

/// Upper bound on one request line. Large `classify_batch` payloads fit
/// comfortably; a client streaming bytes with no newline is cut off
/// instead of growing the line buffer without limit.
const MAX_LINE_BYTES: usize = 64 * 1024 * 1024;

/// Shared state handed to every connection thread.
struct Ctx {
    registry: Arc<ModelRegistry>,
    batcher: Batcher,
    metrics: Arc<ServeMetrics>,
    faults: Arc<FaultInjector>,
    stopping: AtomicBool,
    /// Connections currently being served (the admission gate).
    active_connections: AtomicUsize,
    max_connections: usize,
    /// Disconnect after this long without a complete request.
    idle_timeout: Option<Duration>,
    /// Upper bound on one write before a stalled client is dropped.
    /// Without it, a client that stops reading while a large response is
    /// in flight would park its connection thread in `write_all` forever
    /// — past the shutdown flag, wedging the drain.
    write_timeout: Duration,
    /// How long `run` waits for connection threads after shutdown.
    drain_deadline: Duration,
}

/// Releases one admission-gate slot when the connection finishes, on
/// every exit path including panics.
struct ConnGuard {
    ctx: Arc<Ctx>,
}

impl ConnGuard {
    /// Claims a slot, or `None` at capacity. `fetch_update` makes the
    /// check-and-increment atomic so racing accepts cannot overshoot.
    fn try_claim(ctx: &Arc<Ctx>) -> Option<ConnGuard> {
        ctx.active_connections
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < ctx.max_connections).then_some(n + 1)
            })
            .ok()
            .map(|_| ConnGuard {
                ctx: Arc::clone(ctx),
            })
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.ctx.active_connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running serving endpoint (listener bound, scheduler started).
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    ctx: Arc<Ctx>,
}

impl Server {
    /// Binds the configured address and starts the scheduler. The
    /// registry is taken as an argument so callers can preload or train
    /// models before the first connection lands.
    pub fn bind(config: &ServeConfig, registry: Arc<ModelRegistry>) -> Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(ServeMetrics::new());
        // One injector instance shared by the batcher and the connection
        // layer, so a plan's hit counters see every consultation.
        let faults = if config.faults.is_empty() {
            FaultInjector::disabled()
        } else {
            FaultInjector::from_plan(&config.faults)
        };
        let mut batch_options = config.batch_options();
        batch_options.faults = Arc::clone(&faults);
        let batcher = Batcher::start(Arc::clone(&registry), Arc::clone(&metrics), batch_options);
        Ok(Server {
            listener,
            addr,
            ctx: Arc::new(Ctx {
                registry,
                batcher,
                metrics,
                faults,
                stopping: AtomicBool::new(false),
                active_connections: AtomicUsize::new(0),
                max_connections: config.max_connections,
                idle_timeout: config.idle_timeout,
                write_timeout: config.write_timeout,
                drain_deadline: config.drain_deadline,
            }),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves until a `shutdown` request arrives, then drains in-flight
    /// work and returns. Consumes the server; join the thread running
    /// this to wait for a clean stop.
    pub fn run(self) -> Result<()> {
        // Only this thread touches the handle list (pushed in the accept
        // loop, drained after it), so a plain Vec suffices.
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.ctx.stopping.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let Some(guard) = ConnGuard::try_claim(&self.ctx) else {
                        reject_connection(stream, &self.ctx);
                        continue;
                    };
                    let ctx = Arc::clone(&self.ctx);
                    let spawned = std::thread::Builder::new()
                        .name("udt-serve-conn".to_string())
                        .spawn(move || {
                            let _guard = guard;
                            handle_connection(stream, &ctx);
                        });
                    match spawned {
                        Ok(handle) => {
                            // Reap finished connections as we go
                            // (dropping a finished handle releases its
                            // thread) so a long-lived server does not
                            // accumulate one joinable thread per
                            // connection it ever served.
                            handles.retain(|h| !h.is_finished());
                            handles.push(handle);
                        }
                        // Thread exhaustion drops this one connection
                        // (the stream closed when `spawned` failed, and
                        // its guard slot freed with it); the server
                        // itself keeps accepting.
                        Err(_) => std::thread::sleep(READ_POLL),
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => continue,
                // Persistent accept failures (e.g. fd exhaustion) must
                // not hot-spin the loop; back off briefly and retry.
                Err(_) => std::thread::sleep(READ_POLL),
            }
        }
        // Drain: connection threads notice the flag within READ_POLL and
        // exit on their own. Wait up to the drain deadline, then abandon
        // stragglers (a peer stalled mid-write must not wedge shutdown)
        // — dropping their handles detaches the threads; the scheduler
        // below rejects anything they submit afterwards.
        let deadline = Instant::now() + self.ctx.drain_deadline;
        loop {
            handles.retain(|h| !h.is_finished());
            if handles.is_empty() || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let abandoned = handles.len();
        if abandoned > 0 {
            eprintln!(
                "udt-serve: drain deadline reached with {abandoned} connection(s) still open; abandoning them"
            );
        }
        drop(handles);
        // Workers drain every job the connections submitted, then stop.
        self.ctx.batcher.shutdown();
        Ok(())
    }
}

/// Tells an over-limit connection why it is being turned away, without
/// spawning a thread for it. One short bounded write; if the peer is not
/// reading, the line is simply lost along with the connection.
fn reject_connection(mut stream: TcpStream, ctx: &Ctx) {
    ctx.metrics.record_rejected_connection();
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut payload = Response::Error {
        code: ServeError::Overloaded.code().to_string(),
        message: format!(
            "connection limit reached ({}); retry with backoff",
            ctx.max_connections
        ),
    }
    .to_line();
    payload.push('\n');
    let _ = stream.write_all(payload.as_bytes());
}

fn trigger_shutdown(ctx: &Ctx, addr: SocketAddr) {
    ctx.stopping.store(true, Ordering::SeqCst);
    // Wake the accept loop; the connection is dropped immediately and
    // the loop observes the flag before handling it.
    let _ = TcpStream::connect(addr);
}

fn handle_connection(stream: TcpStream, ctx: &Ctx) {
    // An accepted socket's local address is the listener's address — the
    // shutdown path uses it to wake the accept loop.
    let local = stream.local_addr().ok();
    // Short read timeout so the thread notices a server-wide shutdown
    // even while its client is idle; bounded write timeout so a client
    // that stops reading cannot park this thread in `write_all`.
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_write_timeout(Some(ctx.write_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // Byte-level framing: `read_until` keeps whatever it already
    // appended when a read times out, so a line split by the poll
    // timeout — even inside a multibyte UTF-8 sequence, where
    // `read_line` would discard the partial bytes — resumes intact on
    // the next iteration.
    let mut line: Vec<u8> = Vec::new();
    // The idle clock restarts whenever a complete request arrives.
    let mut last_request = Instant::now();
    loop {
        // Checked on every iteration — not just on read timeouts — so a
        // client that keeps requests flowing cannot keep this thread
        // (and therefore the whole server) alive past a shutdown.
        if ctx.stopping.load(Ordering::SeqCst) {
            return;
        }
        if line.len() > MAX_LINE_BYTES {
            // The buffer grows across timeout retries too, so the cap is
            // checked before every read. Oversized requests cannot be
            // re-framed reliably; report and drop the connection.
            let mut payload = Response::Error {
                code: "bad_request".to_string(),
                message: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            }
            .to_line();
            payload.push('\n');
            let _ = writer.write_all(payload.as_bytes());
            return;
        }
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => return, // client closed
            // A complete line that still exceeds the cap loops back into
            // the rejection branch above.
            Ok(_) if line.len() > MAX_LINE_BYTES => continue,
            Ok(_) => {
                let text = String::from_utf8_lossy(&line).into_owned();
                if text.trim().is_empty() {
                    line.clear();
                    continue;
                }
                last_request = Instant::now();
                // Fault hook: a handler that stalls before servicing its
                // request (pins this connection, ages everything queued
                // behind it on this socket).
                if let Some(delay) = ctx.faults.sleep_for(FaultPoint::StallReader) {
                    std::thread::sleep(delay);
                }
                let (response, stop) = dispatch(&text, ctx);
                line.clear();
                if stop {
                    // Commit the shutdown *before* attempting the ack:
                    // an accepted shutdown must not be lost because the
                    // requester reset the connection or stalled its
                    // receive path past the write timeout.
                    if let Some(local) = local {
                        trigger_shutdown(ctx, local);
                    } else {
                        ctx.stopping.store(true, Ordering::SeqCst);
                    }
                }
                let mut payload = response.to_line();
                payload.push('\n');
                // Fault hook: sever the connection halfway through the
                // response frame (a crash mid-write, from the client's
                // side of the wire).
                if ctx.faults.fires(FaultPoint::TruncateFrame) {
                    let half = payload.len() / 2;
                    let _ = writer.write_all(&payload.as_bytes()[..half]);
                    let _ = writer.flush();
                    return;
                }
                if writer.write_all(payload.as_bytes()).is_err() || writer.flush().is_err() {
                    return;
                }
                if stop {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if ctx.stopping.load(Ordering::SeqCst) {
                    return;
                }
                // A connection with no complete request for the idle
                // budget is quietly closed: a stalled or abandoned peer
                // should not hold an admission-gate slot forever.
                if let Some(idle) = ctx.idle_timeout {
                    if last_request.elapsed() >= idle {
                        return;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Handles one request line; the bool asks the connection to close and
/// trigger server shutdown.
fn dispatch(line: &str, ctx: &Ctx) -> (Response, bool) {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => return (Response::from_error(&e), false),
    };
    match request {
        Request::Classify { model, tuple } => match ctx.batcher.classify(&model, vec![tuple]) {
            Ok(reply) => (
                Response::Classify {
                    label: argmax_class(&reply.distributions),
                    distribution: reply.distributions,
                },
                false,
            ),
            Err(e) => (Response::from_error(&e), false),
        },
        Request::ClassifyBatch { model, tuples } => match ctx.batcher.classify(&model, tuples) {
            Ok(reply) => {
                let k = reply.n_classes.max(1);
                let distributions: Vec<Vec<f64>> =
                    reply.distributions.chunks(k).map(<[f64]>::to_vec).collect();
                let labels = distributions.iter().map(|d| argmax_class(d)).collect();
                (
                    Response::ClassifyBatch {
                        distributions,
                        labels,
                    },
                    false,
                )
            }
            Err(e) => (Response::from_error(&e), false),
        },
        Request::LoadModel { name, path } => {
            // Fault hook: the model file vanished / the disk failed
            // before the registry saw the request. Whatever was serving
            // under `name` keeps serving.
            if ctx.faults.fires(FaultPoint::FailModelLoad) {
                let e = ServeError::Io("injected fault: fail_model_load".to_string());
                return (Response::from_error(&e), false);
            }
            match ctx.registry.load(&name, std::path::Path::new(&path)) {
                Ok(info) => (Response::ModelLoaded(info), false),
                Err(e) => (Response::from_error(&e), false),
            }
        }
        Request::Swap { name, path } => {
            if ctx.faults.fires(FaultPoint::FailModelLoad) {
                let e = ServeError::Io("injected fault: fail_model_load".to_string());
                return (Response::from_error(&e), false);
            }
            match ctx.registry.swap(&name, std::path::Path::new(&path)) {
                Ok(info) => (Response::ModelLoaded(info), false),
                Err(e) => (Response::from_error(&e), false),
            }
        }
        Request::Stats { format } => match format {
            StatsFormat::Json => (
                Response::Stats(StatsReport {
                    uptime_seconds: ctx.metrics.uptime_seconds(),
                    models: ctx.registry.info(),
                    metrics: ctx.metrics.snapshot(),
                    queue: ctx.batcher.queue_stats(),
                    health: ctx.metrics.health_snapshot(),
                }),
                false,
            ),
            StatsFormat::Prometheus => (
                Response::StatsText {
                    text: ctx.metrics.render_prometheus(
                        &ctx.registry.info(),
                        &ctx.batcher.queue_stats(),
                        ctx.metrics.uptime_seconds(),
                    ),
                },
                false,
            ),
        },
        Request::Health => {
            // Liveness is answering at all; readiness is the conjunction
            // an upstream router needs before sending a classify here:
            // something to serve, a scheduler that will admit it, and no
            // drain in progress. Each signal is also reported raw so a
            // probe can say *why* a replica is out.
            let models = ctx.registry.len();
            let accepting = ctx.batcher.is_accepting();
            let draining = ctx.stopping.load(Ordering::SeqCst);
            (
                Response::Health(HealthReport {
                    live: true,
                    ready: models > 0 && accepting && !draining,
                    models,
                    accepting,
                    draining,
                    quarantined: ctx.registry.quarantined(),
                }),
                false,
            )
        }
        Request::Shutdown => (Response::ShuttingDown, true),
    }
}

/// Convenience used by the binary and tests: bind, report the address
/// through `on_bound`, and serve on the current thread until shutdown.
pub fn serve_until_shutdown(
    config: &ServeConfig,
    registry: Arc<ModelRegistry>,
    on_bound: impl FnOnce(SocketAddr),
) -> Result<()> {
    let server = Server::bind(config, registry)?;
    on_bound(server.local_addr());
    server.run()
}

// `ServeError` must be able to cross the reply channels and thread
// boundaries of this module.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServeError>();
    assert_send_sync::<ModelRegistry>();
    assert_send_sync::<ServeMetrics>();
};
