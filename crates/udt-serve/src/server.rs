//! The NDJSON-over-TCP server.
//!
//! Plain `std::net` blocking I/O: one accept loop, one thread per
//! connection, one [`crate::batcher::Batcher`] worker pool behind them
//! all. Connection threads do the cheap work themselves (parsing,
//! registry mutations, stats snapshots) and delegate every
//! classification to the shared scheduler, where requests from all
//! connections coalesce into micro-batches.
//!
//! ## Shutdown
//!
//! A `shutdown` request acknowledges on its own connection, then flips
//! the shared flag and pokes the listener with a loopback connection so
//! `accept` wakes up. Connection threads poll the flag through a short
//! socket read timeout and drain; [`Server::run`] then joins them and
//! shuts the scheduler down — which drains the queue before stopping —
//! so every request accepted before the shutdown is answered.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use udt_tree::classify::argmax_class;

use crate::batcher::Batcher;
use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::metrics::ServeMetrics;
use crate::protocol::{Request, Response, StatsFormat, StatsReport};
use crate::registry::ModelRegistry;
use crate::Result;

/// How often an idle connection thread re-checks the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);

/// Upper bound on one write before a stalled client is dropped. Without
/// it, a client that stops reading while a large response is in flight
/// would park its connection thread in `write_all` forever — past the
/// shutdown flag, wedging [`Server::run`]'s join loop.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Upper bound on one request line. Large `classify_batch` payloads fit
/// comfortably; a client streaming bytes with no newline is cut off
/// instead of growing the line buffer without limit.
const MAX_LINE_BYTES: usize = 64 * 1024 * 1024;

/// Shared state handed to every connection thread.
struct Ctx {
    registry: Arc<ModelRegistry>,
    batcher: Batcher,
    metrics: Arc<ServeMetrics>,
    stopping: AtomicBool,
}

/// A running serving endpoint (listener bound, scheduler started).
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    ctx: Arc<Ctx>,
}

impl Server {
    /// Binds the configured address and starts the scheduler. The
    /// registry is taken as an argument so callers can preload or train
    /// models before the first connection lands.
    pub fn bind(config: &ServeConfig, registry: Arc<ModelRegistry>) -> Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(ServeMetrics::new());
        let batcher = Batcher::start(
            Arc::clone(&registry),
            Arc::clone(&metrics),
            config.batch_options(),
        );
        Ok(Server {
            listener,
            addr,
            ctx: Arc::new(Ctx {
                registry,
                batcher,
                metrics,
                stopping: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves until a `shutdown` request arrives, then drains in-flight
    /// work and returns. Consumes the server; join the thread running
    /// this to wait for a clean stop.
    pub fn run(self) -> Result<()> {
        // Only this thread touches the handle list (pushed in the accept
        // loop, drained after it), so a plain Vec suffices.
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.ctx.stopping.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let ctx = Arc::clone(&self.ctx);
                    let spawned = std::thread::Builder::new()
                        .name("udt-serve-conn".to_string())
                        .spawn(move || handle_connection(stream, &ctx));
                    match spawned {
                        Ok(handle) => {
                            // Reap finished connections as we go
                            // (dropping a finished handle releases its
                            // thread) so a long-lived server does not
                            // accumulate one joinable thread per
                            // connection it ever served.
                            handles.retain(|h| !h.is_finished());
                            handles.push(handle);
                        }
                        // Thread exhaustion drops this one connection
                        // (the stream closed when `spawned` failed);
                        // the server itself keeps accepting.
                        Err(_) => std::thread::sleep(READ_POLL),
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => continue,
                // Persistent accept failures (e.g. fd exhaustion) must
                // not hot-spin the loop; back off briefly and retry.
                Err(_) => std::thread::sleep(READ_POLL),
            }
        }
        for handle in handles {
            let _ = handle.join();
        }
        // Workers drain every job the connections submitted, then stop.
        self.ctx.batcher.shutdown();
        Ok(())
    }
}

fn trigger_shutdown(ctx: &Ctx, addr: SocketAddr) {
    ctx.stopping.store(true, Ordering::SeqCst);
    // Wake the accept loop; the connection is dropped immediately and
    // the loop observes the flag before handling it.
    let _ = TcpStream::connect(addr);
}

fn handle_connection(stream: TcpStream, ctx: &Ctx) {
    // An accepted socket's local address is the listener's address — the
    // shutdown path uses it to wake the accept loop.
    let local = stream.local_addr().ok();
    // Short read timeout so the thread notices a server-wide shutdown
    // even while its client is idle; bounded write timeout so a client
    // that stops reading cannot park this thread in `write_all`.
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // Byte-level framing: `read_until` keeps whatever it already
    // appended when a read times out, so a line split by the poll
    // timeout — even inside a multibyte UTF-8 sequence, where
    // `read_line` would discard the partial bytes — resumes intact on
    // the next iteration.
    let mut line: Vec<u8> = Vec::new();
    loop {
        // Checked on every iteration — not just on read timeouts — so a
        // client that keeps requests flowing cannot keep this thread
        // (and therefore the whole server) alive past a shutdown.
        if ctx.stopping.load(Ordering::SeqCst) {
            return;
        }
        if line.len() > MAX_LINE_BYTES {
            // The buffer grows across timeout retries too, so the cap is
            // checked before every read. Oversized requests cannot be
            // re-framed reliably; report and drop the connection.
            let mut payload = Response::Error {
                message: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            }
            .to_line();
            payload.push('\n');
            let _ = writer.write_all(payload.as_bytes());
            return;
        }
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => return, // client closed
            // A complete line that still exceeds the cap loops back into
            // the rejection branch above.
            Ok(_) if line.len() > MAX_LINE_BYTES => continue,
            Ok(_) => {
                let text = String::from_utf8_lossy(&line).into_owned();
                if text.trim().is_empty() {
                    line.clear();
                    continue;
                }
                let (response, stop) = dispatch(&text, ctx);
                line.clear();
                if stop {
                    // Commit the shutdown *before* attempting the ack:
                    // an accepted shutdown must not be lost because the
                    // requester reset the connection or stalled its
                    // receive path past WRITE_TIMEOUT.
                    if let Some(local) = local {
                        trigger_shutdown(ctx, local);
                    } else {
                        ctx.stopping.store(true, Ordering::SeqCst);
                    }
                }
                let mut payload = response.to_line();
                payload.push('\n');
                if writer.write_all(payload.as_bytes()).is_err() || writer.flush().is_err() {
                    return;
                }
                if stop {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if ctx.stopping.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Handles one request line; the bool asks the connection to close and
/// trigger server shutdown.
fn dispatch(line: &str, ctx: &Ctx) -> (Response, bool) {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => return (Response::from_error(&e), false),
    };
    match request {
        Request::Classify { model, tuple } => match ctx.batcher.classify(&model, vec![tuple]) {
            Ok(reply) => (
                Response::Classify {
                    label: argmax_class(&reply.distributions),
                    distribution: reply.distributions,
                },
                false,
            ),
            Err(e) => (Response::from_error(&e), false),
        },
        Request::ClassifyBatch { model, tuples } => match ctx.batcher.classify(&model, tuples) {
            Ok(reply) => {
                let k = reply.n_classes.max(1);
                let distributions: Vec<Vec<f64>> =
                    reply.distributions.chunks(k).map(<[f64]>::to_vec).collect();
                let labels = distributions.iter().map(|d| argmax_class(d)).collect();
                (
                    Response::ClassifyBatch {
                        distributions,
                        labels,
                    },
                    false,
                )
            }
            Err(e) => (Response::from_error(&e), false),
        },
        Request::LoadModel { name, path } => {
            match ctx.registry.load(&name, std::path::Path::new(&path)) {
                Ok(info) => (Response::ModelLoaded(info), false),
                Err(e) => (Response::from_error(&e), false),
            }
        }
        Request::Swap { name, path } => {
            match ctx.registry.swap(&name, std::path::Path::new(&path)) {
                Ok(info) => (Response::ModelLoaded(info), false),
                Err(e) => (Response::from_error(&e), false),
            }
        }
        Request::Stats { format } => match format {
            StatsFormat::Json => (
                Response::Stats(StatsReport {
                    uptime_seconds: ctx.metrics.uptime_seconds(),
                    models: ctx.registry.info(),
                    metrics: ctx.metrics.snapshot(),
                    queue: ctx.batcher.queue_stats(),
                }),
                false,
            ),
            StatsFormat::Prometheus => (
                Response::StatsText {
                    text: ctx.metrics.render_prometheus(
                        &ctx.registry.info(),
                        &ctx.batcher.queue_stats(),
                        ctx.metrics.uptime_seconds(),
                    ),
                },
                false,
            ),
        },
        Request::Shutdown => (Response::ShuttingDown, true),
    }
}

/// Convenience used by the binary and tests: bind, report the address
/// through `on_bound`, and serve on the current thread until shutdown.
pub fn serve_until_shutdown(
    config: &ServeConfig,
    registry: Arc<ModelRegistry>,
    on_bound: impl FnOnce(SocketAddr),
) -> Result<()> {
    let server = Server::bind(config, registry)?;
    on_bound(server.local_addr());
    server.run()
}

// `ServeError` must be able to cross the reply channels and thread
// boundaries of this module.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServeError>();
    assert_send_sync::<ModelRegistry>();
    assert_send_sync::<ServeMetrics>();
};
