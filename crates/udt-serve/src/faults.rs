//! Deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] is a parsed description of *what* to break and
//! *when* — e.g. "panic in a worker on the 2nd batch", "stall the
//! connection reader with probability 0.3". Plans come from the
//! `UDT_FAULTS` env var (or the `--faults` flag) and are armed into a
//! [`FaultInjector`] that the batcher, server and registry paths consult
//! at their injection points. With no plan configured every check is a
//! single branch on an empty slice — serving pays nothing.
//!
//! **Determinism**: triggers are either counter-based (`nth=N`,
//! `every=N` — exact, independent of thread interleaving per point) or
//! probability-based with a per-point SplitMix64 stream seeded from
//! `UDT_FAULT_SEED` (the decision *sequence* per point reproduces given
//! the same seed and per-point hit order). The chaos suite
//! (`tests/chaos.rs`) uses counter triggers so every run exercises the
//! same failure.
//!
//! ## Spec grammar
//!
//! ```text
//! UDT_FAULTS="point:trigger[:delay],point:trigger[:delay],…"
//!
//! point   := delay_in_worker | panic_in_worker | truncate_frame
//!          | stall_reader | fail_model_load
//! trigger := nth=N | every=N | prob=P | always
//! delay   := <millis>ms        (delay_in_worker / stall_reader only)
//! ```
//!
//! Example: `UDT_FAULTS="panic_in_worker:nth=2,stall_reader:every=3:50ms"`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::error::ServeError;
use crate::Result;

/// A place in the serving stack where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// Sleep in a batch worker before serving a flush (simulates a slow
    /// model / CPU contention; drives queue growth and deadline expiry).
    DelayInWorker,
    /// Panic inside the per-job classification path (exercises the
    /// catch-unwind isolation and the no-poisoned-mutex guarantee).
    PanicInWorker,
    /// Write only half of a response frame, then sever the connection
    /// (exercises client-side framing errors and retries).
    TruncateFrame,
    /// Sleep in the connection read loop before servicing the next
    /// request (simulates a stalled handler pinning its connection).
    StallReader,
    /// Fail a `load_model`/`swap` request before it reaches the registry
    /// (exercises "old model keeps serving" semantics).
    FailModelLoad,
}

impl FaultPoint {
    /// Every injection point, for parsers and reports.
    pub const ALL: [FaultPoint; 5] = [
        FaultPoint::DelayInWorker,
        FaultPoint::PanicInWorker,
        FaultPoint::TruncateFrame,
        FaultPoint::StallReader,
        FaultPoint::FailModelLoad,
    ];

    /// The spec-grammar name of the point.
    pub fn name(&self) -> &'static str {
        match self {
            FaultPoint::DelayInWorker => "delay_in_worker",
            FaultPoint::PanicInWorker => "panic_in_worker",
            FaultPoint::TruncateFrame => "truncate_frame",
            FaultPoint::StallReader => "stall_reader",
            FaultPoint::FailModelLoad => "fail_model_load",
        }
    }
}

/// When a fault fires, relative to the sequence of hits on its point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire exactly once, on the Nth hit (1-based).
    Nth(u64),
    /// Fire on every Nth hit (`every=1` fires on all of them).
    Every(u64),
    /// Fire with probability `p` per hit, from the seeded per-point
    /// stream.
    Prob(f64),
    /// Fire on every hit.
    Always,
}

/// One parsed fault: where, when, and (for the sleep points) how long.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// The injection point.
    pub point: FaultPoint,
    /// The firing rule.
    pub trigger: Trigger,
    /// Sleep duration for [`FaultPoint::DelayInWorker`] /
    /// [`FaultPoint::StallReader`] (default 20 ms).
    pub delay: Duration,
}

/// A parsed, inert fault configuration (cheap to clone and compare;
/// carried inside `ServeConfig`). Armed into a live [`FaultInjector`]
/// when the server starts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// The faults to arm.
    pub specs: Vec<FaultSpec>,
    /// Seed for the probability streams.
    pub seed: u64,
}

impl FaultPlan {
    /// Parses a comma-separated spec list (see the module docs for the
    /// grammar). An empty string is the empty plan.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan> {
        let mut specs = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            specs.push(parse_spec(part)?);
        }
        Ok(FaultPlan { specs, seed })
    }

    /// Builds the plan from `UDT_FAULTS` / `UDT_FAULT_SEED` (absent vars
    /// mean no faults / seed 0). A malformed value is a configuration
    /// error — better to refuse to start than to silently skip the chaos
    /// a test asked for.
    pub fn from_env() -> Result<FaultPlan> {
        let seed = match std::env::var("UDT_FAULT_SEED") {
            Ok(raw) => raw.trim().parse().map_err(|_| {
                ServeError::Config(format!("UDT_FAULT_SEED: `{raw}` is not an integer"))
            })?,
            Err(_) => 0,
        };
        match std::env::var("UDT_FAULTS") {
            Ok(raw) => FaultPlan::parse(&raw, seed),
            Err(_) => Ok(FaultPlan {
                specs: Vec::new(),
                seed,
            }),
        }
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

fn parse_spec(part: &str) -> Result<FaultSpec> {
    let bad = |why: String| ServeError::Config(format!("fault spec `{part}`: {why}"));
    let mut fields = part.split(':');
    let point_name = fields.next().unwrap_or_default();
    let point = FaultPoint::ALL
        .iter()
        .copied()
        .find(|p| p.name() == point_name)
        .ok_or_else(|| {
            bad(format!(
                "unknown point `{point_name}` (expected one of: {})",
                FaultPoint::ALL.map(|p| p.name()).join(", ")
            ))
        })?;
    let trigger_raw = fields
        .next()
        .ok_or_else(|| bad("missing trigger (nth=N, every=N, prob=P or always)".into()))?;
    let trigger = if trigger_raw == "always" {
        Trigger::Always
    } else if let Some(n) = trigger_raw.strip_prefix("nth=") {
        Trigger::Nth(
            n.parse()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| bad(format!("nth wants an integer >= 1, got `{n}`")))?,
        )
    } else if let Some(n) = trigger_raw.strip_prefix("every=") {
        Trigger::Every(
            n.parse()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| bad(format!("every wants an integer >= 1, got `{n}`")))?,
        )
    } else if let Some(p) = trigger_raw.strip_prefix("prob=") {
        Trigger::Prob(
            p.parse()
                .ok()
                .filter(|p: &f64| (0.0..=1.0).contains(p))
                .ok_or_else(|| bad(format!("prob wants a number in [0, 1], got `{p}`")))?,
        )
    } else {
        return Err(bad(format!(
            "unknown trigger `{trigger_raw}` (expected nth=N, every=N, prob=P or always)"
        )));
    };
    let delay = match fields.next() {
        None => Duration::from_millis(20),
        Some(raw) => {
            let ms = raw
                .strip_suffix("ms")
                .and_then(|n| n.parse::<u64>().ok())
                .ok_or_else(|| bad(format!("delay wants `<millis>ms`, got `{raw}`")))?;
            Duration::from_millis(ms)
        }
    };
    if let Some(extra) = fields.next() {
        return Err(bad(format!("trailing field `{extra}`")));
    }
    Ok(FaultSpec {
        point,
        trigger,
        delay,
    })
}

/// One armed fault: the spec plus its live counters.
#[derive(Debug)]
struct Armed {
    spec: FaultSpec,
    /// Times the point was consulted for this spec.
    hits: AtomicU64,
    /// Times the fault actually fired.
    fired: AtomicU64,
    /// SplitMix64 state for [`Trigger::Prob`].
    rng: Mutex<u64>,
}

/// Count of one armed fault's activity, for reports and assertions.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCount {
    /// The spec-grammar name of the point.
    pub point: &'static str,
    /// Times the point was consulted.
    pub hits: u64,
    /// Times the fault fired.
    pub fired: u64,
}

/// The live injection registry the serving stack consults. Disabled
/// (empty) injectors cost one slice-length check per consultation.
#[derive(Debug, Default)]
pub struct FaultInjector {
    armed: Vec<Armed>,
}

impl FaultInjector {
    /// An injector that never fires.
    pub fn disabled() -> Arc<FaultInjector> {
        Arc::new(FaultInjector::default())
    }

    /// Arms a plan. Each spec gets an independent probability stream
    /// derived from the plan seed and its position, so adding a spec
    /// does not shift the decisions of the others.
    pub fn from_plan(plan: &FaultPlan) -> Arc<FaultInjector> {
        let armed = plan
            .specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let mut state = plan.seed ^ ((i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                // One warm-up step decorrelates near-identical seeds.
                rand::split_mix64(&mut state);
                Armed {
                    spec: spec.clone(),
                    hits: AtomicU64::new(0),
                    fired: AtomicU64::new(0),
                    rng: Mutex::new(state),
                }
            })
            .collect();
        Arc::new(FaultInjector { armed })
    }

    /// Whether any fault is armed at all (lets call sites skip work like
    /// formatting panic messages).
    pub fn active(&self) -> bool {
        !self.armed.is_empty()
    }

    /// Consults the injector at `point`: counts the hit and decides
    /// whether the fault fires there.
    pub fn fires(&self, point: FaultPoint) -> bool {
        let mut any = false;
        for armed in self.armed.iter().filter(|a| a.spec.point == point) {
            let hit = armed.hits.fetch_add(1, Ordering::SeqCst) + 1;
            let fire = match armed.spec.trigger {
                Trigger::Nth(n) => hit == n,
                Trigger::Every(n) => hit % n == 0,
                Trigger::Always => true,
                Trigger::Prob(p) => {
                    let mut state = armed.rng.lock().unwrap_or_else(|e| e.into_inner());
                    let draw =
                        (rand::split_mix64(&mut state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    draw < p
                }
            };
            if fire {
                armed.fired.fetch_add(1, Ordering::SeqCst);
                any = true;
            }
        }
        any
    }

    /// Consults a sleep point: `Some(duration)` when the fault fires.
    /// The longest configured delay wins if several specs fire at once.
    pub fn sleep_for(&self, point: FaultPoint) -> Option<Duration> {
        // `fires` counts all matching specs in one pass; re-derive the
        // duration from the armed list (all specs for a sleep point
        // share the hit, so take the max delay among them).
        if self.armed.iter().any(|a| a.spec.point == point) && self.fires(point) {
            self.armed
                .iter()
                .filter(|a| a.spec.point == point)
                .map(|a| a.spec.delay)
                .max()
        } else {
            None
        }
    }

    /// Activity counts per armed fault, in plan order.
    pub fn counts(&self) -> Vec<FaultCount> {
        self.armed
            .iter()
            .map(|a| FaultCount {
                point: a.spec.point.name(),
                hits: a.hits.load(Ordering::SeqCst),
                fired: a.fired.load(Ordering::SeqCst),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips_and_rejects_garbage() {
        let plan = FaultPlan::parse("panic_in_worker:nth=2,stall_reader:every=3:50ms", 7).unwrap();
        assert_eq!(plan.specs.len(), 2);
        assert_eq!(plan.specs[0].point, FaultPoint::PanicInWorker);
        assert_eq!(plan.specs[0].trigger, Trigger::Nth(2));
        assert_eq!(plan.specs[1].trigger, Trigger::Every(3));
        assert_eq!(plan.specs[1].delay, Duration::from_millis(50));
        assert!(FaultPlan::parse("", 0).unwrap().is_empty());
        assert!(FaultPlan::parse("delay_in_worker:always", 0).is_ok());
        assert!(FaultPlan::parse("delay_in_worker:prob=0.5:5ms", 0).is_ok());

        for bad in [
            "frobnicate:nth=1",
            "panic_in_worker",
            "panic_in_worker:soon",
            "panic_in_worker:nth=0",
            "panic_in_worker:prob=1.5",
            "stall_reader:always:fast",
            "stall_reader:always:50ms:extra",
        ] {
            let err = FaultPlan::parse(bad, 0).unwrap_err();
            assert!(
                matches!(err, ServeError::Config(_)),
                "{bad} should be a config error, got {err:?}"
            );
        }
    }

    #[test]
    fn counter_triggers_fire_exactly_where_asked() {
        let plan = FaultPlan::parse("panic_in_worker:nth=3", 0).unwrap();
        let inj = FaultInjector::from_plan(&plan);
        assert!(inj.active());
        let fired: Vec<bool> = (0..6)
            .map(|_| inj.fires(FaultPoint::PanicInWorker))
            .collect();
        assert_eq!(fired, [false, false, true, false, false, false]);
        // Other points are untouched.
        assert!(!inj.fires(FaultPoint::TruncateFrame));
        let counts = inj.counts();
        assert_eq!(counts[0].fired, 1);
        assert_eq!(counts[0].hits, 6);

        let plan = FaultPlan::parse("truncate_frame:every=2", 0).unwrap();
        let inj = FaultInjector::from_plan(&plan);
        let fired: Vec<bool> = (0..6)
            .map(|_| inj.fires(FaultPoint::TruncateFrame))
            .collect();
        assert_eq!(fired, [false, true, false, true, false, true]);
    }

    #[test]
    fn probability_triggers_are_seed_deterministic() {
        let draw = |seed| {
            let plan = FaultPlan::parse("stall_reader:prob=0.5", seed).unwrap();
            let inj = FaultInjector::from_plan(&plan);
            (0..64)
                .map(|_| inj.fires(FaultPoint::StallReader))
                .collect::<Vec<bool>>()
        };
        assert_eq!(draw(42), draw(42), "same seed, same decisions");
        assert_ne!(draw(42), draw(43), "different seed, different stream");
        let fired = draw(42).iter().filter(|&&f| f).count();
        assert!(
            (8..=56).contains(&fired),
            "p=0.5 over 64 draws fired {fired} times"
        );
    }

    #[test]
    fn sleep_points_report_their_delay() {
        let plan = FaultPlan::parse("delay_in_worker:nth=2:75ms", 0).unwrap();
        let inj = FaultInjector::from_plan(&plan);
        assert_eq!(inj.sleep_for(FaultPoint::DelayInWorker), None);
        assert_eq!(
            inj.sleep_for(FaultPoint::DelayInWorker),
            Some(Duration::from_millis(75))
        );
        assert_eq!(inj.sleep_for(FaultPoint::DelayInWorker), None);
        // Disabled injectors never sleep.
        assert_eq!(
            FaultInjector::disabled().sleep_for(FaultPoint::DelayInWorker),
            None
        );
    }
}
