//! The NDJSON wire protocol.
//!
//! Every request and every response is one JSON object on one line
//! (newline-delimited JSON), so the framing layer is `BufRead::read_line`
//! and nothing else. Requests carry a `"cmd"` discriminant; responses
//! carry `"ok"` plus either a `"result"` discriminant or an `"error"`
//! message:
//!
//! ```text
//! → {"cmd":"classify","model":"iris","tuple":{…}}
//! ← {"ok":true,"result":"classify","distribution":[0.9,0.1],"label":0}
//! → {"cmd":"classify_batch","model":"iris","tuples":[{…},{…}]}
//! ← {"ok":true,"result":"classify_batch","distributions":[[…],[…]],"labels":[0,1]}
//! → {"cmd":"load_model","name":"iris","path":"models/iris.json"}
//! → {"cmd":"swap","name":"iris","path":"models/iris-v2.json"}
//! ← {"ok":true,"result":"model_loaded","model":{…}}
//! → {"cmd":"stats"}
//! ← {"ok":true,"result":"stats","stats":{…}}
//! → {"cmd":"health"}
//! ← {"ok":true,"result":"health","health":{"live":true,"ready":true,…}}
//! → {"cmd":"stats","format":"prometheus"}
//! ← {"ok":true,"result":"stats_text","text":"# HELP udt_serve_…"}
//! → {"cmd":"shutdown"}
//! ← {"ok":true,"result":"shutting_down"}
//! ← {"ok":false,"error":"unknown model nope"}
//! ```
//!
//! Tuples use the same serde projection as the rest of the workspace
//! (`udt_data::Tuple`), and floats are printed with Rust's shortest
//! round-trip formatting, so a distribution crossing the socket is
//! **bit-for-bit** the distribution `classify_batch` produced.
//!
//! The envelope is parsed by hand over the [`serde::Value`] data model
//! rather than derived: hand parsing gives precise error messages for
//! malformed client input (missing/mistyped fields name themselves) and
//! keeps the externally visible format independent of derive-macro
//! conventions.

use serde::{Deserialize, Serialize, Value};
use udt_data::Tuple;

use crate::error::ServeError;
use crate::Result;

/// Metadata describing one registered model, as returned by `stats` and
/// `load_model`/`swap` responses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelInfo {
    /// Registry name the model is served under.
    pub name: String,
    /// Hot-swap generation: 1 for the first load, bumped by every swap.
    pub generation: u64,
    /// Total arena nodes.
    pub nodes: usize,
    /// Leaf count.
    pub leaves: usize,
    /// Tree depth.
    pub depth: usize,
    /// Number of classes the model distinguishes.
    pub n_classes: usize,
    /// Number of attributes the model was trained on.
    pub n_attributes: usize,
    /// Approximate arena heap footprint in bytes
    /// ([`udt_tree::FlatTree::heap_bytes`]).
    pub heap_bytes: usize,
}

/// One model's serving counters, as reported by `stats`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelMetricsSnapshot {
    /// Model name.
    pub model: String,
    /// Requests served (including failed ones).
    pub requests: u64,
    /// Tuples classified.
    pub tuples: u64,
    /// Requests that failed.
    pub errors: u64,
    /// Mean enqueue-to-reply latency, microseconds.
    pub mean_us: f64,
    /// Median latency (bucket upper bound), microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency (bucket upper bound), microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency (bucket upper bound), microseconds.
    pub p99_us: f64,
}

/// Scheduler configuration and occupancy, as reported by `stats`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Bounded queue capacity, in jobs.
    pub capacity: usize,
    /// Jobs waiting in the queue at snapshot time.
    pub depth: usize,
    /// Flush threshold: tuples per micro-batch.
    pub max_batch_tuples: usize,
    /// Flush threshold: microseconds a batch may wait for company.
    pub max_delay_us: u64,
    /// Admission policy when the queue is full: `"block"` or `"shed"`.
    pub policy: String,
    /// Request deadline in milliseconds (0 = no deadline): jobs older
    /// than this at dequeue are dropped with `deadline_exceeded`.
    pub deadline_ms: u64,
}

/// Server-wide overload and failure counters, as reported by `stats`.
/// These are the signals an operator alarms on: nonzero `sheds` means
/// admission control is rejecting traffic, `deadline_drops` means jobs
/// are expiring in the queue, `worker_panics` means a model or the
/// engine misbehaved (and was contained).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthStats {
    /// Requests rejected at admission because the queue was full.
    pub sheds: u64,
    /// Accepted jobs dropped at dequeue because their deadline passed.
    pub deadline_drops: u64,
    /// Worker panics caught and contained (each failed its own job
    /// with a structured error; the worker kept serving).
    pub worker_panics: u64,
    /// Connections refused by the max-in-flight-connections gate.
    pub rejected_connections: u64,
    /// Jobs that entered the queue (admitted; denominator for the drop
    /// counters above).
    pub queue_wait_count: u64,
    /// Median enqueue-to-dequeue wait, microseconds (bucket upper bound).
    pub queue_wait_p50_us: f64,
    /// 99th-percentile queue wait, microseconds (bucket upper bound).
    pub queue_wait_p99_us: f64,
}

/// The `health` response payload: the probe surface load balancers and
/// replica-set clients route on. **Liveness** (`live`) is "the process
/// answered at all" — it is `true` in every health response, because a
/// dead server sends nothing. **Readiness** (`ready`) is "this replica
/// can serve a classify right now": at least one model is registered,
/// the scheduler is accepting submissions, and no drain is in progress.
/// Unlike `stats`, the payload is intentionally small and allocation-
/// light — probes arrive every few hundred milliseconds, forever.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// The process is up and answering its socket (always `true` in a
    /// response; its absence — a refused or timed-out probe — is what
    /// "not live" looks like).
    pub live: bool,
    /// `models > 0 && accepting && !draining`: a classify sent now
    /// would be admitted and has a model to run against.
    pub ready: bool,
    /// Registered model count.
    pub models: usize,
    /// The scheduler queue is open to new submissions.
    pub accepting: bool,
    /// A shutdown has been requested; in-flight work is being drained.
    pub draining: bool,
    /// Corrupt model files quarantined at startup (`--preload`) instead
    /// of loaded. Nonzero means an operator has a disk to inspect.
    pub quarantined: u64,
}

/// The full `stats` response payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReport {
    /// Seconds since the server started.
    pub uptime_seconds: f64,
    /// Every registered model, sorted by name.
    pub models: Vec<ModelInfo>,
    /// Per-model serving counters, sorted by name.
    pub metrics: Vec<ModelMetricsSnapshot>,
    /// Scheduler state.
    pub queue: QueueStats,
    /// Server-wide overload and failure counters.
    pub health: HealthStats,
}

/// How a `stats` request wants its payload rendered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StatsFormat {
    /// The structured [`StatsReport`] object (the default).
    #[default]
    Json,
    /// Prometheus text exposition
    /// ([`crate::metrics::ServeMetrics::render_prometheus`]), delivered
    /// as one JSON-escaped string in a `stats_text` response.
    Prometheus,
}

impl StatsFormat {
    /// Wire name of the format.
    pub fn name(&self) -> &'static str {
        match self {
            StatsFormat::Json => "json",
            StatsFormat::Prometheus => "prometheus",
        }
    }
}

/// The canonical parser for the `"format"` request field and the
/// `udt-client stats --format` flag: `json` / `prometheus`,
/// case-insensitive.
impl std::str::FromStr for StatsFormat {
    type Err = ServeError;

    fn from_str(s: &str) -> Result<StatsFormat> {
        if s.eq_ignore_ascii_case("json") {
            Ok(StatsFormat::Json)
        } else if s.eq_ignore_ascii_case("prometheus") {
            Ok(StatsFormat::Prometheus)
        } else {
            Err(ServeError::Protocol(format!(
                "stats format must be `json` or `prometheus`, got `{s}`"
            )))
        }
    }
}

/// A request, one per line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Classify one tuple with the named model.
    Classify {
        /// Model name.
        model: String,
        /// The tuple to classify.
        tuple: Tuple,
    },
    /// Classify a batch of tuples with the named model.
    ClassifyBatch {
        /// Model name.
        model: String,
        /// The tuples to classify, order preserved in the response.
        tuples: Vec<Tuple>,
    },
    /// Load a persisted model file under a fresh name.
    LoadModel {
        /// Registry name to bind.
        name: String,
        /// Path (on the server's filesystem) of the persisted model.
        path: String,
    },
    /// Load a persisted model file and atomically replace the named
    /// binding (or create it if absent).
    Swap {
        /// Registry name to rebind.
        name: String,
        /// Path (on the server's filesystem) of the persisted model.
        path: String,
    },
    /// Report models, counters and scheduler state.
    Stats {
        /// Payload rendering; the `"format"` field is optional on the
        /// wire and defaults to JSON.
        format: StatsFormat,
    },
    /// Report liveness and readiness (see [`HealthReport`]).
    Health,
    /// Stop accepting connections and shut down cleanly.
    Shutdown,
}

/// A response, one per line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Classify`].
    Classify {
        /// Class distribution for the tuple.
        distribution: Vec<f64>,
        /// `argmax` class label.
        label: usize,
    },
    /// Answer to [`Request::ClassifyBatch`].
    ClassifyBatch {
        /// Class distribution per tuple, in request order.
        distributions: Vec<Vec<f64>>,
        /// `argmax` class label per tuple.
        labels: Vec<usize>,
    },
    /// Answer to [`Request::LoadModel`] / [`Request::Swap`].
    ModelLoaded(ModelInfo),
    /// Answer to [`Request::Stats`] with [`StatsFormat::Json`].
    Stats(StatsReport),
    /// Answer to [`Request::Stats`] with a textual format: the rendered
    /// exposition as one (JSON-escaped) string.
    StatsText {
        /// The rendered text, newlines included.
        text: String,
    },
    /// Answer to [`Request::Health`].
    Health(HealthReport),
    /// Answer to [`Request::Shutdown`].
    ShuttingDown,
    /// Any request that failed.
    Error {
        /// Structured failure code ([`ServeError::code`]) so clients can
        /// distinguish e.g. `overloaded` (retry later) from
        /// `unknown_model` (permanent) without parsing message text.
        code: String,
        /// Human-readable failure description.
        message: String,
    },
}

// ------------------------------------------------------------- helpers

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Map(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn field<'a>(v: &'a Value, key: &str, ctx: &str) -> Result<&'a Value> {
    v.get(key)
        .ok_or_else(|| ServeError::Protocol(format!("{ctx}: missing field `{key}`")))
}

fn string_field(v: &Value, key: &str, ctx: &str) -> Result<String> {
    field(v, key, ctx)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| ServeError::Protocol(format!("{ctx}: field `{key}` must be a string")))
}

fn typed_field<T: Deserialize>(v: &Value, key: &str, ctx: &str) -> Result<T> {
    T::deserialize(field(v, key, ctx)?)
        .map_err(|e| ServeError::Protocol(format!("{ctx}: bad field `{key}`: {e}")))
}

fn parse_line(line: &str, ctx: &str) -> Result<Value> {
    serde_json::from_str(line.trim()).map_err(|e| ServeError::Protocol(format!("{ctx}: {e}")))
}

fn render(v: &Value) -> String {
    serde_json::to_string(v).expect("protocol values always serialise")
}

// ------------------------------------------------------------- request

impl Request {
    /// Renders the request as one NDJSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let v = match self {
            Request::Classify { model, tuple } => obj(vec![
                ("cmd", Value::Str("classify".into())),
                ("model", Value::Str(model.clone())),
                ("tuple", tuple.serialize()),
            ]),
            Request::ClassifyBatch { model, tuples } => obj(vec![
                ("cmd", Value::Str("classify_batch".into())),
                ("model", Value::Str(model.clone())),
                ("tuples", tuples.serialize()),
            ]),
            Request::LoadModel { name, path } => obj(vec![
                ("cmd", Value::Str("load_model".into())),
                ("name", Value::Str(name.clone())),
                ("path", Value::Str(path.clone())),
            ]),
            Request::Swap { name, path } => obj(vec![
                ("cmd", Value::Str("swap".into())),
                ("name", Value::Str(name.clone())),
                ("path", Value::Str(path.clone())),
            ]),
            Request::Stats {
                format: StatsFormat::Json,
            } => obj(vec![("cmd", Value::Str("stats".into()))]),
            Request::Stats { format } => obj(vec![
                ("cmd", Value::Str("stats".into())),
                ("format", Value::Str(format.name().into())),
            ]),
            Request::Health => obj(vec![("cmd", Value::Str("health".into()))]),
            Request::Shutdown => obj(vec![("cmd", Value::Str("shutdown".into()))]),
        };
        render(&v)
    }

    /// Parses one NDJSON request line.
    pub fn parse(line: &str) -> Result<Request> {
        let v = parse_line(line, "request")?;
        let cmd = string_field(&v, "cmd", "request")?;
        match cmd.as_str() {
            "classify" => Ok(Request::Classify {
                model: string_field(&v, "model", "classify")?,
                tuple: typed_field(&v, "tuple", "classify")?,
            }),
            "classify_batch" => Ok(Request::ClassifyBatch {
                model: string_field(&v, "model", "classify_batch")?,
                tuples: typed_field(&v, "tuples", "classify_batch")?,
            }),
            "load_model" => Ok(Request::LoadModel {
                name: string_field(&v, "name", "load_model")?,
                path: string_field(&v, "path", "load_model")?,
            }),
            "swap" => Ok(Request::Swap {
                name: string_field(&v, "name", "swap")?,
                path: string_field(&v, "path", "swap")?,
            }),
            "stats" => {
                // `format` is optional; absent means JSON. Present but
                // invalid is a protocol error naming the input.
                let format = match v.get("format") {
                    None => StatsFormat::Json,
                    Some(f) => f
                        .as_str()
                        .ok_or_else(|| {
                            ServeError::Protocol("stats: field `format` must be a string".into())
                        })?
                        .parse()?,
                };
                Ok(Request::Stats { format })
            }
            "health" => Ok(Request::Health),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ServeError::Protocol(format!("unknown cmd `{other}`"))),
        }
    }
}

// ------------------------------------------------------------ response

impl Response {
    /// Renders the response as one NDJSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let v = match self {
            Response::Classify {
                distribution,
                label,
            } => obj(vec![
                ("ok", Value::Bool(true)),
                ("result", Value::Str("classify".into())),
                ("distribution", distribution.serialize()),
                ("label", label.serialize()),
            ]),
            Response::ClassifyBatch {
                distributions,
                labels,
            } => obj(vec![
                ("ok", Value::Bool(true)),
                ("result", Value::Str("classify_batch".into())),
                ("distributions", distributions.serialize()),
                ("labels", labels.serialize()),
            ]),
            Response::ModelLoaded(info) => obj(vec![
                ("ok", Value::Bool(true)),
                ("result", Value::Str("model_loaded".into())),
                ("model", info.serialize()),
            ]),
            Response::Stats(report) => obj(vec![
                ("ok", Value::Bool(true)),
                ("result", Value::Str("stats".into())),
                ("stats", report.serialize()),
            ]),
            Response::StatsText { text } => obj(vec![
                ("ok", Value::Bool(true)),
                ("result", Value::Str("stats_text".into())),
                ("text", Value::Str(text.clone())),
            ]),
            Response::Health(report) => obj(vec![
                ("ok", Value::Bool(true)),
                ("result", Value::Str("health".into())),
                ("health", report.serialize()),
            ]),
            Response::ShuttingDown => obj(vec![
                ("ok", Value::Bool(true)),
                ("result", Value::Str("shutting_down".into())),
            ]),
            Response::Error { code, message } => obj(vec![
                ("ok", Value::Bool(false)),
                ("code", Value::Str(code.clone())),
                ("error", Value::Str(message.clone())),
            ]),
        };
        render(&v)
    }

    /// Parses one NDJSON response line.
    pub fn parse(line: &str) -> Result<Response> {
        let v = parse_line(line, "response")?;
        let ok = match field(&v, "ok", "response")? {
            Value::Bool(b) => *b,
            _ => {
                return Err(ServeError::Protocol(
                    "response: field `ok` must be a bool".into(),
                ))
            }
        };
        if !ok {
            // `code` is optional on the wire (pre-code servers); absent
            // means the generic `error`.
            let code = match v.get("code") {
                None => "error".to_string(),
                Some(c) => c.as_str().map(str::to_string).ok_or_else(|| {
                    ServeError::Protocol("error response: field `code` must be a string".into())
                })?,
            };
            return Ok(Response::Error {
                code,
                message: string_field(&v, "error", "error response")?,
            });
        }
        let result = string_field(&v, "result", "response")?;
        match result.as_str() {
            "classify" => Ok(Response::Classify {
                distribution: typed_field(&v, "distribution", "classify response")?,
                label: typed_field(&v, "label", "classify response")?,
            }),
            "classify_batch" => Ok(Response::ClassifyBatch {
                distributions: typed_field(&v, "distributions", "classify_batch response")?,
                labels: typed_field(&v, "labels", "classify_batch response")?,
            }),
            "model_loaded" => Ok(Response::ModelLoaded(typed_field(
                &v,
                "model",
                "model_loaded response",
            )?)),
            "stats" => Ok(Response::Stats(typed_field(&v, "stats", "stats response")?)),
            "stats_text" => Ok(Response::StatsText {
                text: string_field(&v, "text", "stats_text response")?,
            }),
            "health" => Ok(Response::Health(typed_field(
                &v,
                "health",
                "health response",
            )?)),
            "shutting_down" => Ok(Response::ShuttingDown),
            other => Err(ServeError::Protocol(format!("unknown result `{other}`"))),
        }
    }

    /// Wraps a serving error as an error response, carrying its
    /// structured code.
    pub fn from_error(e: &ServeError) -> Response {
        Response::Error {
            code: e.code().to_string(),
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udt_data::toy;

    fn sample_stats() -> StatsReport {
        StatsReport {
            uptime_seconds: 1.5,
            models: vec![ModelInfo {
                name: "toy".into(),
                generation: 2,
                nodes: 5,
                leaves: 3,
                depth: 3,
                n_classes: 2,
                n_attributes: 1,
                heap_bytes: 420,
            }],
            metrics: vec![ModelMetricsSnapshot {
                model: "toy".into(),
                requests: 10,
                tuples: 40,
                errors: 1,
                mean_us: 12.5,
                p50_us: 8.0,
                p95_us: 32.0,
                p99_us: 64.0,
            }],
            queue: QueueStats {
                workers: 2,
                capacity: 128,
                depth: 0,
                max_batch_tuples: 64,
                max_delay_us: 500,
                policy: "shed".into(),
                deadline_ms: 250,
            },
            health: HealthStats {
                sheds: 3,
                deadline_drops: 1,
                worker_panics: 0,
                rejected_connections: 2,
                queue_wait_count: 10,
                queue_wait_p50_us: 8.0,
                queue_wait_p99_us: 64.0,
            },
        }
    }

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Classify {
                model: "toy".into(),
                tuple: toy::fig1_test_tuple().unwrap(),
            },
            Request::ClassifyBatch {
                model: "toy".into(),
                tuples: toy::table1_dataset().unwrap().tuples().to_vec(),
            },
            Request::LoadModel {
                name: "iris".into(),
                path: "/tmp/iris.json".into(),
            },
            Request::Swap {
                name: "iris".into(),
                path: "/tmp/iris2.json".into(),
            },
            Request::Stats {
                format: StatsFormat::Json,
            },
            Request::Stats {
                format: StatsFormat::Prometheus,
            },
            Request::Health,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.to_line();
            assert!(!line.contains('\n'), "one line per request");
            assert_eq!(Request::parse(&line).unwrap(), req, "line: {line}");
        }
        // A JSON-format stats request omits the field (wire back-compat
        // with pre-format clients), and a format-less line parses as
        // JSON.
        let line = Request::Stats {
            format: StatsFormat::Json,
        }
        .to_line();
        assert!(!line.contains("format"), "line: {line}");
        assert_eq!(
            Request::parse("{\"cmd\":\"stats\"}").unwrap(),
            Request::Stats {
                format: StatsFormat::Json
            }
        );
        // Unknown formats are rejected with the offending input named.
        let err = Request::parse("{\"cmd\":\"stats\",\"format\":\"xml\"}").unwrap_err();
        assert!(err.to_string().contains("xml"), "got: {err}");
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Classify {
                distribution: vec![0.1 + 0.2, 0.7],
                label: 1,
            },
            Response::ClassifyBatch {
                distributions: vec![vec![1.0, 0.0], vec![0.25, 0.75]],
                labels: vec![0, 1],
            },
            Response::ModelLoaded(sample_stats().models[0].clone()),
            Response::Stats(sample_stats()),
            Response::StatsText {
                text: "# HELP udt_serve_uptime_seconds x\nudt_serve_uptime_seconds 1\n".into(),
            },
            Response::Health(HealthReport {
                live: true,
                ready: false,
                models: 0,
                accepting: true,
                draining: false,
                quarantined: 1,
            }),
            Response::ShuttingDown,
            Response::Error {
                code: "unknown_model".into(),
                message: "unknown model \"x\"".into(),
            },
        ];
        for resp in resps {
            let line = resp.to_line();
            assert!(!line.contains('\n'), "one line per response");
            assert_eq!(Response::parse(&line).unwrap(), resp, "line: {line}");
        }
        // Error lines from pre-code servers (no `code` field) still parse,
        // with the generic code filled in.
        assert_eq!(
            Response::parse("{\"ok\":false,\"error\":\"boom\"}").unwrap(),
            Response::Error {
                code: "error".into(),
                message: "boom".into(),
            }
        );
        // `from_error` stamps the structured code onto the wire.
        let line = Response::from_error(&ServeError::Overloaded).to_line();
        assert!(line.contains("\"code\":\"overloaded\""), "line: {line}");
        let line = Response::from_error(&ServeError::DeadlineExceeded).to_line();
        assert!(
            line.contains("\"code\":\"deadline_exceeded\""),
            "line: {line}"
        );
    }

    #[test]
    fn distributions_cross_the_wire_bit_for_bit() {
        let dist = vec![0.1 + 0.2, 1.0 / 3.0, 1.0e-300, 0.0];
        let line = Response::Classify {
            distribution: dist.clone(),
            label: 0,
        }
        .to_line();
        match Response::parse(&line).unwrap() {
            Response::Classify { distribution, .. } => {
                for (a, b) in distribution.iter().zip(&dist) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_are_rejected_with_context() {
        let err = Request::parse("{not json").unwrap_err();
        assert!(err.to_string().contains("request"));
        let err = Request::parse("{\"nocmd\":1}").unwrap_err();
        assert!(err.to_string().contains("cmd"));
        let err = Request::parse("{\"cmd\":\"dance\"}").unwrap_err();
        assert!(err.to_string().contains("dance"));
        let err = Request::parse("{\"cmd\":\"classify\",\"model\":\"m\"}").unwrap_err();
        assert!(err.to_string().contains("tuple"));
        let err = Response::parse("{\"ok\":1}").unwrap_err();
        assert!(err.to_string().contains("ok"));
        let err = Response::parse("{\"ok\":true,\"result\":\"nope\"}").unwrap_err();
        assert!(err.to_string().contains("nope"));
    }
}
