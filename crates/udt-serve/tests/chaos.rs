//! Deterministic chaos suite: the serving stack under injected faults.
//!
//! Every test arms a seeded [`FaultPlan`] (counter triggers where the
//! exact failure matters, seeded probability where volume does) and
//! asserts the survival properties the robustness layer promises:
//!
//! * the server never deadlocks — every test ends in a clean shutdown
//!   with the run loop joined;
//! * every **accepted** request gets exactly one reply, and successful
//!   distributions stay **bit-for-bit** equal to a direct
//!   [`classify_batch`] call;
//! * every **rejected** request gets a structured error (`overloaded`,
//!   `deadline_exceeded`, `internal`, …), never silence;
//! * the health counters (sheds, deadline drops, worker panics,
//!   rejected connections) observe what happened.

use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use udt_data::toy;
use udt_serve::client::{BreakerState, ReplicaSet, ReplicaSetOptions, RetryPolicy};
use udt_serve::{Client, FaultPlan, ModelRegistry, QueuePolicy, ServeConfig, ServeError, Server};
use udt_tree::{
    classify_batch, persist, Algorithm, BatchScratch, DecisionTree, TreeBuilder, UdtConfig,
};

fn trained(algorithm: Algorithm) -> DecisionTree {
    TreeBuilder::new(
        UdtConfig::new(algorithm)
            .with_postprune(false)
            .with_min_node_weight(0.0),
    )
    .build(&toy::table1_dataset().expect("toy data"))
    .expect("toy build")
    .tree
}

/// Direct (ground-truth) distributions for the toy training tuples.
fn direct_distributions(tree: &DecisionTree) -> (Vec<udt_data::Tuple>, Vec<f64>, usize) {
    let data = toy::table1_dataset().expect("toy data");
    let tuples = data.tuples().to_vec();
    let mut scratch = BatchScratch::new();
    let direct = classify_batch(tree, &tuples, &mut scratch).expect("direct");
    let k = tree.n_classes();
    (tuples, direct, k)
}

/// Starts a chaos server: toy model preloaded, the given faults armed,
/// and `tweak` applied to the config before binding.
fn chaos_server(
    faults: &str,
    seed: u64,
    tweak: impl FnOnce(&mut ServeConfig),
) -> (std::net::SocketAddr, JoinHandle<()>) {
    let registry = Arc::new(ModelRegistry::new());
    registry
        .insert_tree("toy", trained(Algorithm::UdtEs))
        .expect("fresh name");
    let mut config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        faults: FaultPlan::parse(faults, seed).expect("valid fault spec"),
        // Keep shutdown snappy even when a test wedges a connection.
        drain_deadline: Duration::from_secs(2),
        ..ServeConfig::default()
    };
    tweak(&mut config);
    let server = Server::bind(&config, registry).expect("bind on loopback");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("server runs to clean shutdown"));
    (addr, handle)
}

fn assert_bits(dist: &[f64], expected: &[f64], what: &str) {
    assert_eq!(dist.len(), expected.len(), "{what}: distribution width");
    for (a, b) in dist.iter().zip(expected) {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: bit-for-bit");
    }
}

#[test]
fn worker_panic_hits_one_request_and_spares_every_other_connection() {
    let tree = trained(Algorithm::UdtEs);
    let (tuples, direct, k) = direct_distributions(&tree);
    // Exactly one job panics, deterministically: the first one a worker
    // picks up. Coalescing is disabled so the panic cannot take batch
    // companions with it under test (that isolation is covered by the
    // per-job boundary anyway).
    let (addr, handle) = chaos_server("panic_in_worker:nth=1", 7, |c| {
        c.max_batch_tuples = 1;
    });

    // Concurrent submitters on distinct connections: exactly one gets
    // the structured internal error, everyone else gets exact answers.
    let outcomes: Vec<(usize, Result<Vec<f64>, ServeError>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = tuples
            .iter()
            .enumerate()
            .map(|(i, tuple)| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    (i, client.classify("toy", tuple).map(|(dist, _)| dist))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    let mut panics = 0;
    for (i, outcome) in &outcomes {
        match outcome {
            Ok(dist) => assert_bits(dist, &direct[i * k..(i + 1) * k], "survivor"),
            Err(e) => {
                assert_eq!(e.code(), "internal", "structured worker-panic error");
                assert!(e.is_transient(), "worker panics are retryable");
                panics += 1;
            }
        }
    }
    assert_eq!(panics, 1, "the nth=1 fault fired exactly once");

    // The pool survived: a fresh request on a fresh connection is exact.
    let mut client = Client::connect(addr).expect("connect");
    let (dist, _) = client.classify("toy", &tuples[0]).expect("post-panic");
    assert_bits(&dist, &direct[0..k], "post-panic");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.health.worker_panics, 1);
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn shed_policy_rejects_loudly_and_answers_everything_it_accepts() {
    let tree = trained(Algorithm::UdtEs);
    let (tuples, direct, k) = direct_distributions(&tree);
    // One slow worker (50 ms per single-job flush), a one-slot queue,
    // shed policy: a burst must split into exact answers and structured
    // `overloaded` rejections — nothing blocks, nothing goes silent.
    let (addr, handle) = chaos_server("delay_in_worker:always:50ms", 11, |c| {
        c.workers = 1;
        c.max_batch_tuples = 1;
        c.queue_capacity = 1;
        c.queue_policy = QueuePolicy::Shed;
    });

    let n = tuples.len();
    let outcomes: Vec<(usize, Result<Vec<f64>, ServeError>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = tuples
            .iter()
            .enumerate()
            .map(|(i, tuple)| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    (i, client.classify("toy", tuple).map(|(dist, _)| dist))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    assert_eq!(outcomes.len(), n, "every request got exactly one reply");
    let mut shed = 0u64;
    for (i, outcome) in &outcomes {
        match outcome {
            Ok(dist) => assert_bits(dist, &direct[i * k..(i + 1) * k], "accepted"),
            Err(e) => {
                assert_eq!(*e, ServeError::Overloaded, "structured shed error");
                shed += 1;
            }
        }
    }
    assert!(shed >= 1, "the one-slot queue shed under an {n}-way burst");
    assert!(shed < n as u64, "the slow worker still served someone");

    let mut client = Client::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.queue.policy, "shed");
    assert_eq!(
        stats.health.sheds, shed,
        "shed counter matches observed rejections"
    );
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn expired_requests_get_deadline_exceeded_not_stale_answers() {
    // Every flush is delayed 30 ms past a 1 ms request budget: the job
    // must come back as `deadline_exceeded`, dropped at dequeue without
    // being classified.
    let (addr, handle) = chaos_server("delay_in_worker:always:30ms", 3, |c| {
        c.workers = 1;
        c.max_batch_tuples = 1;
        c.request_deadline = Some(Duration::from_millis(1));
    });
    let t = toy::fig1_test_tuple().expect("tuple");
    let mut client = Client::connect(addr).expect("connect");
    let err = client.classify("toy", &t).expect_err("expired in queue");
    assert_eq!(err, ServeError::DeadlineExceeded);
    assert!(err.is_transient());

    let stats = client.stats().expect("stats");
    assert_eq!(stats.queue.deadline_ms, 1);
    assert!(stats.health.deadline_drops >= 1);
    assert!(
        stats.metrics.iter().all(|m| m.requests == 0),
        "expired jobs are never classified"
    );
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn truncated_frames_are_transport_errors_and_a_retry_recovers_exactly() {
    let tree = trained(Algorithm::UdtEs);
    let (tuples, direct, k) = direct_distributions(&tree);
    let (addr, handle) = chaos_server("truncate_frame:nth=1", 5, |c| {
        c.max_batch_tuples = 1;
    });

    // The first response is severed mid-frame. The client must surface a
    // transient transport error — not hand half a JSON object to the
    // parser — and a fresh-connection retry must land the exact answer.
    let policy = RetryPolicy {
        attempts: 3,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
        seed: 99,
    };
    let mut attempts_used = 0;
    let dist = policy
        .run(|attempt| {
            attempts_used = attempt + 1;
            let mut client = Client::connect(addr)?;
            client.classify("toy", &tuples[0]).map(|(dist, _)| dist)
        })
        .expect("retry recovers");
    assert_eq!(
        attempts_used, 2,
        "first frame truncated, second attempt clean"
    );
    assert_bits(&dist, &direct[0..k], "post-retry");

    let mut client = Client::connect(addr).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn a_stalled_reader_pins_only_its_own_connection() {
    let tree = trained(Algorithm::UdtEs);
    let (tuples, direct, k) = direct_distributions(&tree);
    let (addr, handle) = chaos_server("stall_reader:nth=1:150ms", 13, |c| {
        c.max_batch_tuples = 1;
    });

    // Connection A eats the stall; connection B, opened after A's
    // request is in flight, is served normally in the meantime.
    let stalled = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect A");
        let t = toy::fig1_test_tuple().expect("tuple");
        let start = Instant::now();
        client.classify("toy", &t).expect("stalled but served");
        start.elapsed()
    });
    std::thread::sleep(Duration::from_millis(30));
    let mut client = Client::connect(addr).expect("connect B");
    let start = Instant::now();
    let (dist, _) = client.classify("toy", &tuples[0]).expect("B served");
    let b_latency = start.elapsed();
    assert_bits(&dist, &direct[0..k], "unstalled connection");
    let a_latency = stalled.join().expect("A joins");
    assert!(
        a_latency >= Duration::from_millis(150),
        "A ate the injected stall ({a_latency:?})"
    );
    assert!(
        b_latency < a_latency,
        "B ({b_latency:?}) did not wait behind A ({a_latency:?})"
    );
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn failed_model_load_leaves_the_old_model_serving() {
    let tree = trained(Algorithm::UdtEs);
    let (tuples, direct, k) = direct_distributions(&tree);
    let avg = trained(Algorithm::Avg);
    let path = std::env::temp_dir().join("udt-serve-chaos-swap.json");
    persist::save(&avg, &path).expect("save replacement");

    let (addr, handle) = chaos_server("fail_model_load:nth=1", 21, |_| {});
    let mut client = Client::connect(addr).expect("connect");

    // The injected load failure is structured, and generation 1 keeps
    // serving bit-for-bit.
    let err = client
        .swap("toy", path.to_str().expect("utf-8 path"))
        .expect_err("injected load failure");
    assert_eq!(err.code(), "io");
    let (dist, _) = client
        .classify("toy", &tuples[0])
        .expect("old model serves");
    assert_bits(&dist, &direct[0..k], "old generation");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.models[0].generation, 1, "no half-applied swap");

    // The fault was one-shot; the swap now lands and answers change.
    let info = client
        .swap("toy", path.to_str().unwrap())
        .expect("swap lands");
    assert_eq!(info.generation, 2);
    let mut scratch = BatchScratch::new();
    let avg_direct = classify_batch(&avg, &tuples[..1], &mut scratch).expect("direct avg");
    let (dist, _) = client
        .classify("toy", &tuples[0])
        .expect("new model serves");
    assert_bits(&dist, &avg_direct[0..k], "new generation");

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn excess_connections_get_a_structured_rejection_at_the_door() {
    let (addr, handle) = chaos_server("", 0, |c| {
        c.max_connections = 1;
    });

    // Claim the only slot and prove it serves.
    let mut first = Client::connect(addr).expect("first connection");
    let t = toy::fig1_test_tuple().expect("tuple");
    first.classify("toy", &t).expect("slot holder is served");

    // The second connection is told why before being dropped.
    let second = TcpStream::connect(addr).expect("tcp connect");
    let mut line = String::new();
    BufReader::new(&second)
        .read_line(&mut line)
        .expect("rejection line");
    assert!(line.contains("\"ok\":false"), "got: {line}");
    assert!(line.contains("\"code\":\"overloaded\""), "got: {line}");
    drop(second);

    let stats = first.stats().expect("stats over the held slot");
    assert_eq!(stats.health.rejected_connections, 1);

    // Freeing the slot readmits new connections (the gate decrements).
    drop(first);
    let mut readmitted = None;
    for _ in 0..40 {
        std::thread::sleep(Duration::from_millis(25));
        if let Ok(mut c) = Client::connect(addr) {
            if c.classify("toy", &t).is_ok() {
                readmitted = Some(c);
                break;
            }
        }
    }
    let mut client = readmitted.expect("slot freed after disconnect");
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn idle_connections_are_disconnected_after_the_idle_timeout() {
    let (addr, handle) = chaos_server("", 0, |c| {
        c.idle_timeout = Some(Duration::from_millis(100));
    });

    let idle = TcpStream::connect(addr).expect("connect");
    idle.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut line = String::new();
    let n = BufReader::new(&idle)
        .read_line(&mut line)
        .expect("EOF, not a read error");
    assert_eq!(n, 0, "the server closed the idle connection");

    // An active connection is not an idle one: requests reset the clock.
    let mut client = Client::connect(addr).expect("connect");
    let t = toy::fig1_test_tuple().expect("tuple");
    for _ in 0..4 {
        std::thread::sleep(Duration::from_millis(60));
        client
            .classify("toy", &t)
            .expect("active connection survives");
    }
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

/// A replica set over freshly started chaos servers, with a short
/// connect/read budget so a dead replica fails fast instead of hanging
/// the suite.
fn replica_set(addrs: &[std::net::SocketAddr], hedge: Option<Duration>, seed: u64) -> ReplicaSet {
    ReplicaSet::new(
        addrs.iter().map(|a| a.to_string()).collect(),
        ReplicaSetOptions {
            timeout: Some(Duration::from_secs(2)),
            hedge,
            seed,
            ..ReplicaSetOptions::default()
        },
    )
    .expect("at least one endpoint")
}

#[test]
fn replica_killed_mid_stream_loses_no_request_and_no_bits() {
    let tree = trained(Algorithm::UdtEs);
    let (tuples, direct, k) = direct_distributions(&tree);
    let (addr_a, handle_a) = chaos_server("", 0, |_| {});
    let (addr_b, handle_b) = chaos_server("", 0, |_| {});
    let mut set = replica_set(&[addr_a, addr_b], None, 77);

    // Stream classifies; kill replica A (the preferred endpoint) a third
    // of the way through. The contract: every request in the stream is
    // answered exactly once, bit-for-bit, and the set routes around the
    // corpse without the caller doing anything.
    const STREAM: usize = 30;
    let mut replies = 0usize;
    let mut handle_a = Some(handle_a);
    for i in 0..STREAM {
        if i == STREAM / 3 {
            let mut direct_client = Client::connect(addr_a).expect("connect to A");
            direct_client.shutdown().expect("A shuts down");
            handle_a
                .take()
                .expect("A killed once")
                .join()
                .expect("A joins");
        }
        let tuple = &tuples[i % tuples.len()];
        let (dist, _) = set
            .classify("toy", tuple)
            .expect("stream survives the kill");
        assert_bits(
            &dist,
            &direct[(i % tuples.len()) * k..(i % tuples.len() + 1) * k],
            "stream",
        );
        replies += 1;
    }
    assert_eq!(replies, STREAM, "exactly one reply per request");

    let snap = set.snapshot();
    assert!(snap[0].trips >= 1, "A's breaker tripped after the kill");
    assert!(
        snap[1].attempts >= (STREAM - STREAM / 3) as u64,
        "B served the rest of the stream ({} attempts)",
        snap[1].attempts
    );
    assert_eq!(snap[1].state, BreakerState::Closed, "B stayed healthy");

    let mut client = Client::connect(addr_b).expect("connect to B");
    client.shutdown().expect("B shuts down");
    handle_b.join().expect("B joins");
}

#[test]
fn flapping_replica_is_routed_around_without_losing_bits() {
    let tree = trained(Algorithm::UdtEs);
    let (tuples, direct, k) = direct_distributions(&tree);
    // Replica A answers, then truncates, alternating — a flapping
    // half-dead node. Replica B is clean. Every classify must still land
    // exactly one bit-for-bit reply, transparently.
    let (addr_a, handle_a) = chaos_server("truncate_frame:every=2", 9, |c| {
        c.max_batch_tuples = 1;
    });
    let (addr_b, handle_b) = chaos_server("", 0, |_| {});
    let mut set = replica_set(&[addr_a, addr_b], None, 123);

    const STREAM: usize = 16;
    for i in 0..STREAM {
        let tuple = &tuples[i % tuples.len()];
        let (dist, _) = set.classify("toy", tuple).expect("flapping is survivable");
        assert_bits(
            &dist,
            &direct[(i % tuples.len()) * k..(i % tuples.len() + 1) * k],
            "flap",
        );
    }
    let snap = set.snapshot();
    assert!(
        snap[1].attempts >= 1,
        "the truncations actually failed over"
    );
    // The flap alternates success and truncation, so A's consecutive
    // failure count keeps resetting below the trip threshold: a
    // half-dead replica is tolerated and drained, not amputated.
    assert_eq!(snap[0].trips, 0, "alternating failures never trip A");
    assert_eq!(snap[0].state, BreakerState::Closed);
    assert_eq!(
        snap[0].attempts, STREAM as u64,
        "with A never tripped, every request begins at A"
    );

    for (addr, handle) in [(addr_a, handle_a), (addr_b, handle_b)] {
        let mut client = Client::connect(addr).expect("connect");
        client.shutdown().expect("shutdown");
        handle.join().expect("join");
    }
}

#[test]
fn checksum_corruption_on_disk_is_refused_and_the_old_generation_serves() {
    let tree = trained(Algorithm::UdtEs);
    let (tuples, direct, k) = direct_distributions(&tree);
    let avg = trained(Algorithm::Avg);
    let path = std::env::temp_dir().join("udt-serve-chaos-corrupt.json");
    persist::save(&avg, &path).expect("save replacement");
    // Flip one bit in the body: the v3 footer checksum must catch it at
    // load, long before the registry considers swapping.
    let mut bytes = std::fs::read(&path).expect("read back");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).expect("write corrupted");

    let (addr, handle) = chaos_server("", 0, |_| {});
    let mut client = Client::connect(addr).expect("connect");

    let err = client
        .swap("toy", path.to_str().expect("utf-8 path"))
        .expect_err("corrupt file is refused");
    assert_eq!(err.code(), "model", "typed model error, not a crash: {err}");
    assert!(
        err.to_string().contains("corrupt") || err.to_string().contains("deserialisation"),
        "the error names the corruption: {err}"
    );
    // Generation 1 never stopped serving, bit-for-bit.
    let (dist, _) = client
        .classify("toy", &tuples[0])
        .expect("old model serves");
    assert_bits(&dist, &direct[0..k], "old generation after refused swap");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.models[0].generation, 1, "no half-applied swap");

    // Restore the file; the swap lands and answers change.
    persist::save(&avg, &path).expect("save clean");
    let info = client
        .swap("toy", path.to_str().unwrap())
        .expect("swap lands");
    assert_eq!(info.generation, 2);
    let mut scratch = BatchScratch::new();
    let avg_direct = classify_batch(&avg, &tuples[..1], &mut scratch).expect("direct avg");
    let (dist, _) = client
        .classify("toy", &tuples[0])
        .expect("new model serves");
    assert_bits(&dist, &avg_direct[0..k], "new generation");

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn hedge_storm_returns_one_exact_reply_per_request() {
    let tree = trained(Algorithm::UdtEs);
    let (tuples, direct, k) = direct_distributions(&tree);
    // Replica A is always slow (80 ms per flush); B is fast. With a
    // 10 ms hedge, every classify should race B and win there — and the
    // caller must still see exactly one reply, bit-for-bit, per request,
    // with the slow loser cancelled rather than leaking.
    let (addr_a, handle_a) = chaos_server("delay_in_worker:always:80ms", 31, |c| {
        c.workers = 1;
        c.max_batch_tuples = 1;
    });
    let (addr_b, handle_b) = chaos_server("", 0, |_| {});
    let launched_before = udt_obs::catalog::serve::HEDGES_LAUNCHED.get();
    let won_before = udt_obs::catalog::serve::HEDGES_WON.get();
    let mut set = replica_set(&[addr_a, addr_b], Some(Duration::from_millis(10)), 55);

    const STORM: usize = 8;
    for i in 0..STORM {
        let tuple = &tuples[i % tuples.len()];
        let (dist, _) = set.classify("toy", tuple).expect("hedged classify");
        assert_bits(
            &dist,
            &direct[(i % tuples.len()) * k..(i % tuples.len() + 1) * k],
            "hedge",
        );
    }
    let launched = udt_obs::catalog::serve::HEDGES_LAUNCHED.get() - launched_before;
    let won = udt_obs::catalog::serve::HEDGES_WON.get() - won_before;
    assert!(
        launched >= STORM as u64,
        "the slow primary forced a hedge per request (launched {launched})"
    );
    assert!(won >= 1, "the fast replica won at least one race");
    let snap = set.snapshot();
    assert!(snap[1].attempts >= STORM as u64, "B joined every race");

    for (addr, handle) in [(addr_a, handle_a), (addr_b, handle_b)] {
        let mut client = Client::connect(addr).expect("connect");
        client.shutdown().expect("shutdown");
        handle.join().expect("join");
    }
}

#[test]
fn mixed_chaos_storm_answers_every_accepted_request_exactly_once() {
    let tree = trained(Algorithm::UdtEs);
    let (tuples, direct, k) = direct_distributions(&tree);
    // Sustained fire: periodic worker panics plus seeded probabilistic
    // worker delays, several rounds of concurrent clients. The contract
    // under all of it: one reply per request — exact bits or a
    // structured error — then a clean, non-deadlocked shutdown.
    let (addr, handle) = chaos_server(
        "panic_in_worker:every=5,delay_in_worker:prob=0.2:5ms",
        42,
        |c| {
            c.workers = 2;
            c.max_batch_tuples = 1;
            c.queue_capacity = 8;
            c.queue_policy = QueuePolicy::Shed;
        },
    );

    const ROUNDS: usize = 4;
    let outcomes: Vec<(usize, Result<Vec<f64>, ServeError>)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..ROUNDS {
            for (i, tuple) in tuples.iter().enumerate() {
                handles.push(scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    (i, client.classify("toy", tuple).map(|(dist, _)| dist))
                }));
            }
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    assert_eq!(
        outcomes.len(),
        ROUNDS * tuples.len(),
        "exactly one reply per request, none lost, none duplicated"
    );
    let mut ok = 0u64;
    let mut structured = 0u64;
    for (i, outcome) in &outcomes {
        match outcome {
            Ok(dist) => {
                assert_bits(dist, &direct[i * k..(i + 1) * k], "storm survivor");
                ok += 1;
            }
            Err(e) => {
                assert!(
                    matches!(e.code(), "internal" | "overloaded"),
                    "structured failure, got code {:?}",
                    e.code()
                );
                structured += 1;
            }
        }
    }
    assert!(ok > 0, "the server kept serving through the storm");
    assert!(structured > 0, "every=5 panics actually fired");

    let mut client = Client::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert!(stats.health.worker_panics >= 1);
    assert_eq!(
        stats.health.worker_panics + stats.health.sheds,
        structured,
        "health counters account for every structured failure"
    );
    assert!(stats.health.queue_wait_count > 0, "queue wait was observed");
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread exits: no deadlock");
}
