//! Seeded determinism for the retry and circuit-breaker jitter.
//!
//! The robustness layer leans on randomness twice — retry backoff
//! jitter and breaker cooldown jitter — and both are seeded so chaos
//! runs can be replayed exactly. These tests pin the contract: the same
//! seed produces the same backoff schedule and the same failover /
//! trip / cooldown sequence, run after run; different seeds actually
//! diverge.

use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use udt_data::toy;
use udt_serve::client::{BreakerPolicy, BreakerState, ReplicaSet, ReplicaSetOptions, RetryPolicy};
use udt_serve::{ModelRegistry, ServeConfig, Server};
use udt_tree::{Algorithm, TreeBuilder, UdtConfig};

fn toy_server() -> (SocketAddr, JoinHandle<()>) {
    let registry = Arc::new(ModelRegistry::new());
    let tree = TreeBuilder::new(
        UdtConfig::new(Algorithm::UdtEs)
            .with_postprune(false)
            .with_min_node_weight(0.0),
    )
    .build(&toy::table1_dataset().expect("toy data"))
    .expect("toy build")
    .tree;
    registry.insert_tree("toy", tree).expect("fresh name");
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    };
    let server = Server::bind(&config, registry).expect("bind on loopback");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("clean shutdown"));
    (addr, handle)
}

/// An address that refuses connections: bind an ephemeral port, then
/// drop the listener. Nothing is listening there for the rest of the
/// test, and connect attempts fail fast.
fn dead_endpoint() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("reserve port");
    listener.local_addr().expect("local addr")
}

fn replica_set(endpoints: &[SocketAddr], seed: u64) -> ReplicaSet {
    ReplicaSet::new(
        endpoints.iter().map(|a| a.to_string()).collect(),
        ReplicaSetOptions {
            timeout: Some(Duration::from_secs(2)),
            hedge: None,
            // A trip parks the breaker for the rest of the test: the
            // sequences under comparison then cannot depend on how fast
            // the test loop happens to run.
            breaker: BreakerPolicy {
                failure_threshold: 3,
                base_cooldown: Duration::from_secs(600),
                max_cooldown: Duration::from_secs(600),
            },
            seed,
        },
    )
    .expect("non-empty set")
}

#[test]
fn backoff_schedule_is_identical_for_identical_seeds_and_diverges_otherwise() {
    let policy = RetryPolicy {
        attempts: 12,
        base_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_secs(2),
        seed: 0xfeed,
    };
    // Two independent jitter streams from the same state walk the same
    // schedule, draw for draw.
    let mut rng_a = 0xfeed_u64;
    let mut rng_b = 0xfeed_u64;
    let a: Vec<Duration> = (0..12).map(|n| policy.backoff(n, &mut rng_a)).collect();
    let b: Vec<Duration> = (0..12).map(|n| policy.backoff(n, &mut rng_b)).collect();
    assert_eq!(a, b, "same seed, same backoff schedule");

    // A different seed diverges somewhere in the schedule.
    let mut rng_c = 0xbeef_u64;
    let c: Vec<Duration> = (0..12).map(|n| policy.backoff(n, &mut rng_c)).collect();
    assert_ne!(a, c, "different seeds draw different jitter");

    // And the jitter never escapes its envelope: [exp/2, exp].
    for (n, d) in a.iter().enumerate() {
        let exp = Duration::from_millis(10)
            .saturating_mul(1 << n.min(20))
            .min(Duration::from_secs(2));
        assert!(*d >= exp.mul_f64(0.5) && *d <= exp, "attempt {n}: {d:?}");
    }
}

#[test]
fn failover_and_trip_sequences_are_identical_for_identical_seeds() {
    let dead = dead_endpoint();
    let (live, handle) = toy_server();
    let endpoints = [dead, live];
    let tuple = toy::fig1_test_tuple().expect("tuple");

    // Two replica sets, same seed, driven in lockstep through the same
    // failure sequence: the dead preferred replica fails three times,
    // trips, and everything lands on the live one.
    let mut set_a = replica_set(&endpoints, 42);
    let mut set_b = replica_set(&endpoints, 42);
    for step in 0..6 {
        let (dist_a, label_a) = set_a.classify("toy", &tuple).expect("A fails over");
        let (dist_b, label_b) = set_b.classify("toy", &tuple).expect("B fails over");
        assert_eq!(label_a, label_b);
        assert_eq!(dist_a, dist_b, "identical replies at step {step}");
        assert_eq!(
            set_a.snapshot(),
            set_b.snapshot(),
            "identical breaker state (attempts, trips, cooldowns) at step {step}"
        );
    }
    let snap = set_a.snapshot();
    assert_eq!(
        snap[0].attempts, 3,
        "dead replica probed exactly to threshold"
    );
    assert_eq!(snap[0].trips, 1);
    assert_eq!(snap[0].state, BreakerState::Open);
    assert_eq!(
        snap[1].attempts, 6,
        "every request served by the live replica"
    );
    assert_eq!(snap[1].state, BreakerState::Closed);
    // The drawn cooldown sits in the jitter envelope [base/2, base].
    assert!(
        snap[0].last_cooldown >= Duration::from_secs(300)
            && snap[0].last_cooldown <= Duration::from_secs(600),
        "cooldown {:?} outside the jitter envelope",
        snap[0].last_cooldown
    );

    // A different seed reaches the same routing decisions (those are
    // structural) but draws a different cooldown.
    let mut set_c = replica_set(&endpoints, 4242);
    for _ in 0..6 {
        set_c.classify("toy", &tuple).expect("C fails over");
    }
    let snap_c = set_c.snapshot();
    assert_eq!(snap_c[0].trips, 1);
    assert_ne!(
        snap_c[0].last_cooldown, snap[0].last_cooldown,
        "different seeds draw different cooldowns"
    );

    let mut client = udt_serve::Client::connect(live).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join().expect("server joins");
}
