//! End-to-end tests over a real loopback socket.
//!
//! The headline guarantee (ISSUE 4 acceptance): classifications served
//! through the NDJSON protocol are **bit-for-bit identical** to calling
//! `classify_batch` directly on the same tuples. The rest exercises the
//! operational surface — hot swap, stats, error handling for unknown
//! models and garbage input, and clean shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use udt_data::{toy, Dataset};
use udt_serve::{Client, ModelRegistry, ServeConfig, Server};
use udt_tree::{
    classify_batch, persist, Algorithm, BatchScratch, DecisionTree, TreeBuilder, UdtConfig,
};

fn trained(algorithm: Algorithm) -> DecisionTree {
    TreeBuilder::new(
        UdtConfig::new(algorithm)
            .with_postprune(false)
            .with_min_node_weight(0.0),
    )
    .build(&toy::table1_dataset().expect("toy data"))
    .expect("toy build")
    .tree
}

/// Starts a server on an ephemeral loopback port with the given models
/// preloaded; returns its address and the join handle of its run loop.
fn start_server(models: Vec<(&str, DecisionTree)>) -> (std::net::SocketAddr, JoinHandle<()>) {
    let registry = Arc::new(ModelRegistry::new());
    for (name, tree) in models {
        registry.insert_tree(name, tree).expect("fresh name");
    }
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServeConfig::default()
    };
    let server = Server::bind(&config, registry).expect("bind on loopback");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("server runs to clean shutdown"));
    (addr, handle)
}

/// The test workload: the Table 1 training tuples (uncertain), the
/// Fig. 1 test tuple, a few point tuples, and an attribute-less tuple
/// exercising the missing-attribute path.
fn workload() -> (Dataset, Vec<udt_data::Tuple>) {
    let data = toy::table1_dataset().expect("toy data");
    let mut tuples = data.tuples().to_vec();
    tuples.push(toy::fig1_test_tuple().expect("fig1 tuple"));
    tuples.push(udt_data::Tuple::from_points(&[-2.0], 0));
    tuples.push(udt_data::Tuple::from_points(&[1.5], 1));
    tuples.push(udt_data::Tuple::new(vec![], 0));
    (data, tuples)
}

#[test]
fn socket_served_classifications_are_bit_for_bit_equal_to_classify_batch() {
    let tree = trained(Algorithm::UdtEs);
    let (_, tuples) = workload();
    let mut scratch = BatchScratch::new();
    let direct = classify_batch(&tree, &tuples, &mut scratch).expect("direct classification");
    let k = tree.n_classes();

    let (addr, handle) = start_server(vec![("toy", tree)]);
    let mut client = Client::connect(addr).expect("connect");

    // One batched request: every distribution equals the direct result
    // to the last bit.
    let (dists, labels) = client.classify_batch("toy", &tuples).expect("batch");
    assert_eq!(dists.len(), tuples.len());
    assert_eq!(labels.len(), tuples.len());
    for (i, dist) in dists.iter().enumerate() {
        let expected = &direct[i * k..(i + 1) * k];
        assert_eq!(dist.len(), k);
        for (a, b) in dist.iter().zip(expected) {
            assert_eq!(a.to_bits(), b.to_bits(), "batch tuple {i}");
        }
    }

    // Single-tuple requests agree too (same engine, same bits).
    for (i, tuple) in tuples.iter().enumerate() {
        let (dist, label) = client.classify("toy", tuple).expect("single");
        let expected = &direct[i * k..(i + 1) * k];
        for (a, b) in dist.iter().zip(expected) {
            assert_eq!(a.to_bits(), b.to_bits(), "single tuple {i}");
        }
        assert_eq!(label, labels[i], "labels agree across request shapes");
    }

    client.shutdown().expect("clean shutdown");
    handle.join().expect("server thread");
}

#[test]
fn concurrent_clients_coalesce_and_all_get_exact_answers() {
    let tree = trained(Algorithm::UdtEs);
    let (_, tuples) = workload();
    let mut scratch = BatchScratch::new();
    let direct = classify_batch(&tree, &tuples, &mut scratch).expect("direct");
    let k = tree.n_classes();

    let (addr, handle) = start_server(vec![("toy", tree)]);
    std::thread::scope(|scope| {
        for (i, tuple) in tuples.iter().enumerate() {
            let expected = &direct[i * k..(i + 1) * k];
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let (dist, _) = client.classify("toy", tuple).expect("classify");
                for (a, b) in dist.iter().zip(expected) {
                    assert_eq!(a.to_bits(), b.to_bits(), "concurrent tuple {i}");
                }
            });
        }
    });

    let mut client = Client::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    let toy_metrics = stats
        .metrics
        .iter()
        .find(|m| m.model == "toy")
        .expect("toy metrics exist");
    assert_eq!(toy_metrics.requests, tuples.len() as u64);
    assert_eq!(toy_metrics.tuples, tuples.len() as u64);
    assert_eq!(toy_metrics.errors, 0);
    assert!(toy_metrics.p99_us >= toy_metrics.p50_us);
    // The same counters render as a Prometheus text exposition over the
    // same socket.
    let text = client.stats_prometheus().expect("prometheus stats");
    assert!(text.contains(&format!(
        "udt_serve_requests_total{{model=\"toy\"}} {}",
        // The prometheus request itself is not a classify request, but
        // the JSON stats call above is not either: the counter still
        // reads the classification total.
        tuples.len()
    )));
    assert!(text.contains("udt_serve_request_latency_seconds_bucket{model=\"toy\",le=\"+Inf\"}"));
    assert!(text.contains("udt_serve_uptime_seconds"));
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn hot_swap_changes_answers_without_interrupting_service() {
    let es_tree = trained(Algorithm::UdtEs);
    let avg_tree = trained(Algorithm::Avg);
    assert_ne!(es_tree.flat(), avg_tree.flat(), "the two models differ");

    // Persist the replacement where the server can load it.
    let path = std::env::temp_dir().join("udt-serve-swap-test.json");
    persist::save(&avg_tree, &path).expect("save replacement");

    let (_, tuples) = workload();
    let mut scratch = BatchScratch::new();
    let before_expected = classify_batch(&es_tree, &tuples, &mut scratch).expect("direct es");
    let after_expected = classify_batch(&avg_tree, &tuples, &mut scratch).expect("direct avg");

    let (addr, handle) = start_server(vec![("m", es_tree)]);
    let mut client = Client::connect(addr).expect("connect");

    let (before, _) = client.classify_batch("m", &tuples).expect("pre-swap");
    for (i, dist) in before.iter().enumerate() {
        for (a, b) in dist.iter().zip(&before_expected[i * 2..(i + 1) * 2]) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    let info = client
        .swap("m", path.to_str().expect("utf-8 temp path"))
        .expect("swap");
    assert_eq!(info.generation, 2);

    let (after, _) = client.classify_batch("m", &tuples).expect("post-swap");
    for (i, dist) in after.iter().enumerate() {
        for (a, b) in dist.iter().zip(&after_expected[i * 2..(i + 1) * 2]) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    // The registry reports the bumped generation in stats.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.models.len(), 1);
    assert_eq!(stats.models[0].generation, 2);
    assert!(stats.models[0].heap_bytes > 0);

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn load_model_endpoint_loads_and_refuses_duplicates() {
    let tree = trained(Algorithm::UdtEs);
    let path = std::env::temp_dir().join("udt-serve-load-test.json");
    persist::save(&tree, &path).expect("save model");

    let (addr, handle) = start_server(vec![]);
    let mut client = Client::connect(addr).expect("connect");

    // No models yet: classify errors but the connection survives.
    let t = toy::fig1_test_tuple().expect("tuple");
    let err = client.classify("disk", &t).expect_err("unknown model");
    assert!(err.to_string().contains("disk"));

    let info = client
        .load_model("disk", path.to_str().expect("utf-8 temp path"))
        .expect("load");
    assert_eq!(info.generation, 1);
    assert!(info.nodes > 0);
    assert!(client.classify("disk", &t).is_ok());

    // Loading the same name again is refused; a bad path is refused.
    let err = client
        .load_model("disk", path.to_str().unwrap())
        .expect_err("duplicate");
    assert!(err.to_string().contains("swap"));
    assert!(client.load_model("other", "/no/such/file.json").is_err());

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn garbage_lines_get_error_responses_and_the_connection_survives() {
    let (addr, handle) = start_server(vec![("toy", trained(Algorithm::UdtEs))]);

    // Raw socket: send garbage, then a valid request, on one connection.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();

    stream.write_all(b"this is not json\n").expect("write");
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("\"ok\":false"), "got: {line}");
    assert!(line.contains("error"), "got: {line}");

    line.clear();
    stream
        .write_all(b"{\"cmd\":\"classify\",\"model\":\"toy\"}\n")
        .expect("write");
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("\"ok\":false"), "got: {line}");
    assert!(line.contains("tuple"), "got: {line}");

    // Blank lines are ignored, and the connection still serves.
    line.clear();
    stream.write_all(b"\n{\"cmd\":\"stats\"}\n").expect("write");
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("\"ok\":true"), "got: {line}");

    let mut client = Client::connect(addr).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn shutdown_is_clean_even_with_other_connections_open() {
    let (addr, handle) = start_server(vec![("toy", trained(Algorithm::UdtEs))]);

    // An idle connection that never sends anything must not block the
    // server's shutdown (connection threads poll the stop flag).
    let idle = TcpStream::connect(addr).expect("idle connect");

    let mut client = Client::connect(addr).expect("connect");
    let t = toy::fig1_test_tuple().expect("tuple");
    client.classify("toy", &t).expect("served before shutdown");
    client.shutdown().expect("shutdown ack");

    // The run loop joins every connection thread and drains the queue.
    handle.join().expect("server thread exits cleanly");
    drop(idle);

    // New connections are refused (or reset) after shutdown.
    let gone = match TcpStream::connect(addr) {
        Err(_) => true,
        Ok(mut s) => {
            // If the OS briefly accepts, the write/read must fail or EOF.
            let _ = s.write_all(b"{\"cmd\":\"stats\"}\n");
            let mut buf = String::new();
            match BufReader::new(&mut s).read_line(&mut buf) {
                Ok(n) => n == 0,
                Err(_) => true,
            }
        }
    };
    assert!(gone, "server is gone");
}

#[test]
fn a_busy_client_cannot_block_shutdown() {
    // One client hammers requests in a loop; another requests shutdown.
    // The server must stop serving and `run()` must return even though
    // the busy connection never goes idle (connection threads check the
    // stop flag on every request, not only on read timeouts).
    let (addr, handle) = start_server(vec![("toy", trained(Algorithm::UdtEs))]);

    let spam_done = Arc::new(AtomicBool::new(false));
    let spam_flag = Arc::clone(&spam_done);
    let spammer = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("spammer connects");
        let mut served = 0u64;
        // Spin until the server drops us (shutdown) as a backstop.
        while !spam_flag.load(Ordering::Relaxed) {
            if client.stats().is_err() {
                break;
            }
            served += 1;
        }
        served
    });
    // Let the spammer establish steady traffic first.
    std::thread::sleep(Duration::from_millis(50));

    let mut client = Client::connect(addr).expect("connect");
    client.shutdown().expect("shutdown ack");
    // Must return despite the still-chattering client; a regression here
    // hangs the test rather than failing an assertion.
    handle.join().expect("server run loop exits");
    spam_done.store(true, Ordering::Relaxed);
    let served = spammer.join().expect("spammer thread");
    assert!(served > 0, "the busy client was actually served");
}

#[test]
fn backpressure_keeps_every_request_answered() {
    // A tiny queue with one slow-ish worker: submitters must block, not
    // fail, and every reply must still be exact.
    let tree = trained(Algorithm::UdtEs);
    let (_, tuples) = workload();
    let mut scratch = BatchScratch::new();
    let direct = classify_batch(&tree, &tuples, &mut scratch).expect("direct");
    let k = tree.n_classes();

    let registry = Arc::new(ModelRegistry::new());
    registry.insert_tree("toy", tree).expect("fresh");
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 2,
        max_batch_tuples: 4,
        ..ServeConfig::default()
    };
    let server = Server::bind(&config, registry).expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("run"));

    let (tx, rx) = mpsc::channel();
    std::thread::scope(|scope| {
        for round in 0..4 {
            for (i, tuple) in tuples.iter().enumerate() {
                let tx = tx.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let (dist, _) = client.classify("toy", tuple).expect("classify");
                    tx.send((round, i, dist)).expect("send result");
                });
            }
        }
    });
    drop(tx);
    let mut answered = 0;
    for (_, i, dist) in rx {
        answered += 1;
        for (a, b) in dist.iter().zip(&direct[i * k..(i + 1) * k]) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    assert_eq!(answered, 4 * tuples.len());

    let mut client = Client::connect(addr).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}
