//! Validates a Chrome trace-event JSON file produced by `udt-obs`
//! (`UDT_TRACE=...` or [`udt_tree::TreeBuilder::with_trace`]).
//!
//! Used by the CI trace smoke leg: parses the file, checks every event
//! is a complete `X` event with the fields Perfetto needs, and verifies
//! the spans on each thread are well-nested (pairwise disjoint or fully
//! contained). Exits 0 on a valid trace, 1 otherwise.
//!
//! ```text
//! validate_trace PATH
//! ```

use std::process::ExitCode;

use serde_json::Value;

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::Num(n) => Some(*n),
        _ => None,
    }
}

fn fail(msg: String) -> ExitCode {
    eprintln!("validate_trace: {msg}");
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        return fail("usage: validate_trace PATH".into());
    };
    let raw = match std::fs::read_to_string(&path) {
        Ok(raw) => raw,
        Err(e) => return fail(format!("cannot read {path}: {e}")),
    };
    let root: Value = match serde_json::from_str(&raw) {
        Ok(root) => root,
        Err(e) => return fail(format!("{path} is not valid JSON: {e}")),
    };
    let Some(events) = root.get("traceEvents").and_then(Value::as_seq) else {
        return fail(format!("{path} has no traceEvents array"));
    };
    if events.is_empty() {
        return fail(format!("{path} contains no events"));
    }

    // Per-thread (tid → [(start, end)]) span lists, in file order.
    let mut threads: Vec<(u64, Vec<(f64, f64)>)> = Vec::new();
    for (i, event) in events.iter().enumerate() {
        let check = |field: &str| {
            event
                .get(field)
                .ok_or_else(|| format!("event {i} is missing `{field}`"))
        };
        for field in ["name", "cat"] {
            match check(field).map(|v| v.as_str()) {
                Ok(Some(_)) => {}
                _ => return fail(format!("event {i}: `{field}` must be a string")),
            }
        }
        match check("ph").map(|v| v.as_str()) {
            Ok(Some("X")) => {}
            _ => return fail(format!("event {i} is not a complete `X` event")),
        }
        let number = |field: &str| match check(field).map(num) {
            Ok(Some(n)) if n >= 0.0 => Ok(n),
            _ => Err(format!(
                "event {i}: `{field}` must be a non-negative number"
            )),
        };
        for field in ["pid", "tid"] {
            if let Err(e) = number(field) {
                return fail(e);
            }
        }
        let (ts, dur) = match (number("ts"), number("dur")) {
            (Ok(ts), Ok(dur)) => (ts, dur),
            (Err(e), _) | (_, Err(e)) => return fail(e),
        };
        let tid = num(event.get("tid").expect("checked above")).expect("checked above") as u64;
        match threads.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, spans)) => spans.push((ts, ts + dur)),
            None => threads.push((tid, vec![(ts, ts + dur)])),
        }
    }

    // Well-nestedness per thread: with events sorted by start time
    // (ties: longest first — the writer's order), a span must either
    // start after the enclosing span ends, or end inside it.
    for (tid, spans) in &mut threads {
        spans.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap()
                .then(b.1.partial_cmp(&a.1).unwrap())
        });
        let mut stack: Vec<(f64, f64)> = Vec::new();
        for &(start, end) in spans.iter() {
            while let Some(&(_, open_end)) = stack.last() {
                if start >= open_end {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(_, open_end)) = stack.last() {
                if end > open_end {
                    return fail(format!(
                        "tid {tid}: span [{start}, {end}] straddles an enclosing \
                         span ending at {open_end}"
                    ));
                }
            }
            stack.push((start, end));
        }
    }

    println!(
        "trace OK: {} events across {} threads in {path}",
        events.len(),
        threads.len()
    );
    ExitCode::SUCCESS
}
