//! Phase-level timing probe for the split engine (development utility).
//!
//! Prints per-phase timings of the columnar engine and the naive
//! baseline on the benchmark workload so regressions in either phase are
//! easy to localise without a profiler.

use std::time::Instant;

use udt_bench::baseline_workload;
use udt_tree::baseline::{naive_find_best, NaiveAttributeEvents};
use udt_tree::events::AttributeEvents;
use udt_tree::fractional::FractionalTuple;
use udt_tree::split::{exhaustive::ExhaustiveSearch, SearchStats, SplitSearch};
use udt_tree::{Algorithm, Measure, TreeBuilder, UdtConfig};

fn time<T>(label: &str, reps: u32, mut f: impl FnMut() -> T) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    let per = start.elapsed().as_secs_f64() / reps as f64;
    println!("{label:40} {:>10.3} ms", per * 1e3);
    per
}

fn main() {
    // `profile_split [S] [--threads auto|N]` — S is the pdf sample
    // count; the thread flag goes through the canonical `ThreadCount`
    // parser shared with `UDT_THREADS` and `udt-serve --threads`.
    let mut s: usize = 40;
    let mut threads = udt_tree::ThreadCount::from_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            let raw = args.next().unwrap_or_default();
            threads = raw.parse().unwrap_or_else(|e| {
                eprintln!("profile_split: {e}");
                std::process::exit(2);
            });
        } else if let Ok(n) = arg.parse() {
            s = n;
        } else {
            eprintln!("usage: profile_split [S] [--threads auto|N]");
            std::process::exit(2);
        }
    }
    let data = baseline_workload(s);
    println!(
        "workload: {} tuples, {} attributes, s={s}, threads={threads}",
        data.len(),
        data.n_attributes()
    );
    let tuples: Vec<FractionalTuple> = data
        .tuples()
        .iter()
        .map(FractionalTuple::from_tuple)
        .collect();
    let k = data.n_attributes();
    let n_classes = data.n_classes();

    time("naive: build events (all attrs)", 50, || {
        (0..k)
            .filter_map(|j| NaiveAttributeEvents::build(&tuples, j, n_classes))
            .count()
    });
    time("columnar: build events (all attrs)", 50, || {
        (0..k)
            .filter_map(|j| AttributeEvents::build(&tuples, j, n_classes))
            .count()
    });

    let naive_events: Vec<(usize, NaiveAttributeEvents)> = (0..k)
        .filter_map(|j| NaiveAttributeEvents::build(&tuples, j, n_classes).map(|e| (j, e)))
        .collect();
    let columnar_events: Vec<(usize, AttributeEvents)> = (0..k)
        .filter_map(|j| AttributeEvents::build(&tuples, j, n_classes).map(|e| (j, e)))
        .collect();
    let candidates: usize = columnar_events
        .iter()
        .map(|(_, e)| e.n_positions() - 1)
        .sum();
    println!("candidates at root: {candidates}");

    time("naive: exhaustive scan", 50, || {
        naive_find_best(&naive_events, Measure::Entropy)
    });
    time("columnar: exhaustive scan", 50, || {
        let mut stats = SearchStats::default();
        ExhaustiveSearch.find_best(&columnar_events, Measure::Entropy, &mut stats)
    });

    time("naive: full build (exhaustive)", 10, || {
        udt_tree::baseline::naive_build_splits(
            &data,
            Measure::Entropy,
            udt_tree::baseline::NaiveSearch::Exhaustive,
            25,
            2.0,
            1e-6,
        )
    });
    let builder = TreeBuilder::new(
        UdtConfig::new(Algorithm::Udt)
            .with_postprune(false)
            .with_threads(threads),
    );
    time("columnar: full build (exhaustive)", 10, || {
        builder.build(&data).expect("build succeeds")
    });
}
