//! Pruning-effectiveness probe for the split engine (development
//! utility).
//!
//! Builds one tree per algorithm × dispersion measure on the benchmark
//! workload and prints the paper's pruning-effectiveness numbers (the
//! quantities behind Figs. 6–7): candidate split points in the search
//! space, how many were actually scored, how many pruning discarded,
//! and the prune fraction — alongside the entropy-like work and build
//! wall-clock. This replaces the old ad-hoc phase timing prints; phase
//! timings now come from the tracing layer.
//!
//! `--trace PATH` additionally runs one traced UDT-ES build (via
//! [`TreeBuilder::with_trace`]) and writes a Chrome trace-event file —
//! open it in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`
//! to see the per-phase and per-node spans.

use udt_tree::{Algorithm, Measure, ThreadCount, TreeBuilder, UdtConfig};

use udt_bench::baseline_workload;

/// The algorithm ladder of the paper, cheapest pruning first.
const ALGORITHMS: [Algorithm; 6] = [
    Algorithm::Avg,
    Algorithm::Udt,
    Algorithm::UdtBp,
    Algorithm::UdtLp,
    Algorithm::UdtGp,
    Algorithm::UdtEs,
];

const MEASURES: [Measure; 3] = [Measure::Entropy, Measure::Gini, Measure::GainRatio];

fn main() {
    // `profile_split [S] [--threads auto|N] [--trace PATH]` — S is the
    // pdf sample count; the thread flag goes through the canonical
    // `ThreadCount` parser shared with `UDT_THREADS` and
    // `udt-serve --threads`.
    let mut s: usize = 40;
    let mut threads = ThreadCount::from_env();
    let mut trace: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            let raw = args.next().unwrap_or_default();
            threads = raw.parse().unwrap_or_else(|e| {
                eprintln!("profile_split: {e}");
                std::process::exit(2);
            });
        } else if arg == "--trace" {
            match args.next() {
                Some(path) if !path.is_empty() => trace = Some(path),
                _ => {
                    eprintln!("profile_split: --trace needs an output path");
                    std::process::exit(2);
                }
            }
        } else if let Ok(n) = arg.parse() {
            s = n;
        } else {
            eprintln!("usage: profile_split [S] [--threads auto|N] [--trace PATH]");
            std::process::exit(2);
        }
    }
    let data = baseline_workload(s);
    println!(
        "workload: {} tuples, {} attributes, s={s}, threads={threads}",
        data.len(),
        data.n_attributes()
    );
    println!(
        "{:8} {:10} {:>12} {:>12} {:>12} {:>8} {:>13} {:>10}",
        "algo", "measure", "candidates", "scored", "pruned", "prune%", "entropy-like", "build ms"
    );
    for measure in MEASURES {
        for algorithm in ALGORITHMS {
            let report = TreeBuilder::new(
                UdtConfig::new(algorithm)
                    .with_measure(measure)
                    .with_postprune(false)
                    .with_threads(threads),
            )
            .build(&data)
            .expect("benchmark workload builds");
            let stats = &report.stats;
            println!(
                "{:8} {:10} {:>12} {:>12} {:>12} {:>7.1}% {:>13} {:>10.3}",
                algorithm.name(),
                format!("{measure:?}"),
                stats.candidate_points,
                stats.candidates_scored,
                stats.candidates_pruned(),
                stats.prune_fraction() * 100.0,
                stats.entropy_like_calculations(),
                report.elapsed.as_secs_f64() * 1e3,
            );
        }
    }
    if let Some(path) = trace {
        let report = TreeBuilder::new(
            UdtConfig::new(Algorithm::UdtEs)
                .with_postprune(false)
                .with_threads(threads),
        )
        .with_trace(&path)
        .build(&data)
        .expect("benchmark workload builds");
        println!(
            "trace: UDT-ES build ({} nodes) written to {path} — load it in Perfetto",
            report.tree.size()
        );
    }
}
