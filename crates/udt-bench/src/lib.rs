//! # udt-bench — shared fixtures for the Criterion benchmarks
//!
//! The benchmarks regenerate the timing figures of the paper (Fig. 6,
//! Fig. 8, Fig. 9, plus the §7.5 point-data claim) on scaled workloads.
//! This library crate only hosts the fixture helpers; the benchmarks
//! themselves live under `benches/`.

#![warn(missing_docs)]

use udt_data::repository::by_name;
use udt_data::uncertainty::{inject_uncertainty, UncertaintySpec};
use udt_data::Dataset;
use udt_prob::ErrorModel;

/// Generates the scaled point-valued stand-in for a Table 2 data set.
///
/// Panics on unknown names — benchmarks are compiled with known names only.
pub fn point_dataset(name: &str, scale: f64) -> Dataset {
    by_name(name)
        .unwrap_or_else(|| panic!("unknown data set {name}"))
        .generate(scale)
        .expect("generation succeeds at benchmark scale")
}

/// Injects baseline Gaussian uncertainty (`w`, `s`) into a point data set.
pub fn uncertain(data: &Dataset, w: f64, s: usize) -> Dataset {
    inject_uncertainty(
        data,
        &UncertaintySpec {
            w,
            s,
            model: ErrorModel::Gaussian,
        },
    )
    .expect("injection succeeds")
}

/// The benchmark workload used by the Fig. 6 and Fig. 7 style comparisons:
/// an "Iris"-shaped data set at 40 % scale with `w = 10 %`, `s` as given.
pub fn baseline_workload(s: usize) -> Dataset {
    uncertain(&point_dataset("Iris", 0.4), 0.10, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_produce_uncertain_data() {
        let ds = baseline_workload(20);
        assert!(!ds.is_empty());
        assert!(ds.total_samples() > ds.len() * ds.n_attributes());
    }

    #[test]
    #[should_panic(expected = "unknown data set")]
    fn unknown_dataset_panics() {
        let _ = point_dataset("NotARealDataset", 0.1);
    }
}
