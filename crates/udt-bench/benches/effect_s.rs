//! Fig. 8 benchmark: UDT-ES construction time as a function of the number
//! of sample points per pdf (`s`). The paper reports roughly linear growth.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use udt_bench::{point_dataset, uncertain};
use udt_tree::{Algorithm, TreeBuilder, UdtConfig};

fn bench_effect_s(c: &mut Criterion) {
    let point = point_dataset("Iris", 0.4);
    let mut group = c.benchmark_group("fig8_effect_of_s");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for s in [25usize, 50, 100, 150] {
        let data = uncertain(&point, 0.10, s);
        group.throughput(Throughput::Elements(s as u64));
        group.bench_with_input(BenchmarkId::from_parameter(s), &data, |b, data| {
            let builder = TreeBuilder::new(UdtConfig::new(Algorithm::UdtEs));
            b.iter(|| builder.build(data).expect("build succeeds"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_effect_s);
criterion_main!(benches);
