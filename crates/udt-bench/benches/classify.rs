//! Classification-time benchmark (§3.2): cost of fractionally propagating
//! an uncertain test tuple down a trained tree, compared with classifying
//! its point (averaged) projection.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use udt_bench::baseline_workload;
use udt_tree::{Algorithm, TreeBuilder, UdtConfig};

fn bench_classify(c: &mut Criterion) {
    let data = baseline_workload(50);
    let tree = TreeBuilder::new(UdtConfig::new(Algorithm::UdtEs))
        .build(&data)
        .expect("build succeeds")
        .tree;
    let averaged = data.to_averaged();

    let mut group = c.benchmark_group("classify");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("uncertain_tuples", |b| {
        b.iter(|| {
            data.tuples()
                .iter()
                .map(|t| tree.predict(t).expect("tree has classes"))
                .sum::<usize>()
        });
    });
    group.bench_function("point_tuples", |b| {
        b.iter(|| {
            averaged
                .tuples()
                .iter()
                .map(|t| tree.predict(t).expect("tree has classes"))
                .sum::<usize>()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_classify);
criterion_main!(benches);
