//! Thread-scaling bench: the persistent build pool across 1–8 threads.
//!
//! Two groups over a Fig. 6-scale UDT-ES workload (a Table 2 stand-in
//! with baseline Gaussian uncertainty):
//!
//! * `scaling_build` — the full end-to-end build (presort → search →
//!   partition → subtree pipeline → graft) at thread counts 1, 2, 4
//!   and 8. Builds are arena-bit-identical at every thread count (the
//!   `pool_determinism` regression test pins that), so this group
//!   measures pure execution-substrate speedup.
//! * `scaling_presort` — the newly parallel root pass in isolation:
//!   per-attribute presorted event-column construction
//!   ([`udt_tree::columns::build_root_with`]), the single `O(E log E)`
//!   phase that ran fully sequentially before the pool existed.
//!
//! `scripts/bench.sh` writes the measurements to `BENCH_scaling.json`
//! and prints the 1-thread / N-thread speedups. The numbers are bounded
//! by the host: on a single-core container every thread count measures
//! ≈ 1×; the ≥ 2× target at 4 threads needs ≥ 4 real cores.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use udt_bench::{point_dataset, uncertain};
use udt_tree::columns;
use udt_tree::fractional::FractionalTuple;
use udt_tree::{Algorithm, TreeBuilder, UdtConfig, WorkerPool};

/// Thread counts swept by both groups.
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn workload() -> udt_data::Dataset {
    // Segment at 50 % scale with s = 64: ~580 tuples × 19 numerical
    // attributes ≈ 700k root events — a build measured in hundreds of
    // milliseconds single-threaded, big enough that per-phase fan-out
    // dominates pool overhead.
    uncertain(&point_dataset("Segment", 0.5), 0.10, 64)
}

fn bench_build_scaling(c: &mut Criterion) {
    let data = workload();
    let mut group = c.benchmark_group("scaling_build");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for &threads in &THREADS {
        let builder = TreeBuilder::new(
            UdtConfig::new(Algorithm::UdtEs)
                .with_postprune(false)
                .with_threads(threads),
        );
        group.bench_function(&format!("threads{threads:02}"), |b| {
            b.iter(|| builder.build(&data).expect("build succeeds"));
        });
    }
    group.finish();
}

fn bench_presort_scaling(c: &mut Criterion) {
    let data = workload();
    let tuples: Vec<FractionalTuple> = data
        .tuples()
        .iter()
        .map(FractionalTuple::from_tuple)
        .collect();
    let numerical: Vec<usize> = data.schema().numerical_indices();
    let mut group = c.benchmark_group("scaling_presort");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for &threads in &THREADS {
        let pool = WorkerPool::for_concurrency(threads);
        group.bench_function(&format!("threads{threads:02}"), |b| {
            b.iter(|| columns::build_root_with(&tuples, &numerical, &pool));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build_scaling, bench_presort_scaling);
criterion_main!(benches);
