//! Fig. 9 benchmark: UDT-ES construction time as a function of the pdf
//! width `w`. Wider pdfs overlap more, creating more heterogeneous
//! intervals and therefore more work.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use udt_bench::{point_dataset, uncertain};
use udt_tree::{Algorithm, TreeBuilder, UdtConfig};

fn bench_effect_w(c: &mut Criterion) {
    let point = point_dataset("Iris", 0.4);
    let mut group = c.benchmark_group("fig9_effect_of_w");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for w in [0.025f64, 0.05, 0.10, 0.20, 0.30] {
        let data = uncertain(&point, w, 50);
        let label = format!("{:.1}%", w * 100.0);
        group.bench_with_input(BenchmarkId::from_parameter(label), &data, |b, data| {
            let builder = TreeBuilder::new(UdtConfig::new(Algorithm::UdtEs));
            b.iter(|| builder.build(data).expect("build succeeds"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_effect_w);
criterion_main!(benches);
