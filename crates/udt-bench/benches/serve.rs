//! Serving throughput over a real loopback socket: micro-batched
//! requests vs a one-request-at-a-time loop.
//!
//! A `udt-serve` endpoint is started in-process with a trained UDT-ES
//! model, and every benchmark classifies the same uncertain (or
//! averaged/point) tuple set end to end — NDJSON encode, TCP round
//! trip(s), scheduler queue, worker classification with its long-lived
//! warm `BatchScratch`, NDJSON decode:
//!
//! * `single_*` issues one `classify` request per tuple, sequentially —
//!   the naive integration a client might start with; each tuple pays a
//!   full round trip plus a scheduler wake-up.
//! * `batch_*` issues one `classify_batch` request for the whole set —
//!   the intended integration; framing, syscalls, queue hops and reply
//!   wake-ups amortise across the batch.
//!
//! A third pair measures the failover machinery itself: the same
//! sequential point stream through a bare `Client` vs a two-replica
//! `ReplicaSet` whose preferred endpoint is healthy, so every request
//! pays the circuit-breaker bookkeeping (availability check, attempt
//! accounting, success recording) but never actually reroutes. ISSUE 10
//! pins that overhead below 1% of the direct path.
//!
//! `scripts/bench.sh` writes these measurements to `BENCH_serve.json`
//! and prints the batched-vs-single speedup; ISSUE 4 requires ≥ 3× on
//! the uncertain workload.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use udt_bench::baseline_workload;
use udt_serve::{Client, ModelRegistry, ReplicaSet, ReplicaSetOptions, ServeConfig, Server};
use udt_tree::{Algorithm, TreeBuilder, UdtConfig};

fn bench_serve(c: &mut Criterion) {
    let data = baseline_workload(60);
    let tree = TreeBuilder::new(UdtConfig::new(Algorithm::UdtEs))
        .build(&data)
        .expect("build succeeds")
        .tree;
    let averaged = data.to_averaged();

    let registry = Arc::new(ModelRegistry::new());
    registry.insert_tree("bench", tree).expect("fresh name");
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServeConfig::default()
    };
    let server = Server::bind(&config, registry).expect("bind on loopback");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run().expect("clean run"));

    let mut group = c.benchmark_group("serve_throughput");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));

    // Uncertain tuples: fractional propagation dominated by real work,
    // so the protocol overhead shows up as the single/batch gap.
    group.bench_function("single_uncertain", |b| {
        let mut client = Client::connect(addr).expect("connect");
        b.iter(|| {
            data.tuples()
                .iter()
                .map(|t| client.classify("bench", t).expect("served").1)
                .sum::<usize>()
        });
    });
    group.bench_function("batch_uncertain", |b| {
        let mut client = Client::connect(addr).expect("connect");
        b.iter(|| {
            client
                .classify_batch("bench", data.tuples())
                .expect("served")
                .1
                .len()
        });
    });

    // Point (averaged) tuples: classification is nearly free, so this
    // pair measures almost pure protocol + scheduling overhead.
    group.bench_function("single_point", |b| {
        let mut client = Client::connect(addr).expect("connect");
        b.iter(|| {
            averaged
                .tuples()
                .iter()
                .map(|t| client.classify("bench", t).expect("served").1)
                .sum::<usize>()
        });
    });
    group.bench_function("batch_point", |b| {
        let mut client = Client::connect(addr).expect("connect");
        b.iter(|| {
            client
                .classify_batch("bench", averaged.tuples())
                .expect("served")
                .1
                .len()
        });
    });
    group.finish();

    // Failover overhead on the healthy path: both replica-set endpoints
    // point at the live server, so the preferred one always answers and
    // the measured gap vs the direct client is pure breaker bookkeeping.
    let mut group = c.benchmark_group("serve_failover");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("direct_point", |b| {
        let mut client = Client::connect(addr).expect("connect");
        b.iter(|| {
            averaged
                .tuples()
                .iter()
                .map(|t| client.classify("bench", t).expect("served").1)
                .sum::<usize>()
        });
    });
    group.bench_function("replica_set_point", |b| {
        let mut set = ReplicaSet::new(
            vec![addr.to_string(), addr.to_string()],
            ReplicaSetOptions::default(),
        )
        .expect("two endpoints");
        b.iter(|| {
            averaged
                .tuples()
                .iter()
                .map(|t| set.classify("bench", t).expect("served").1)
                .sum::<usize>()
        });
    });
    group.finish();

    let mut client = Client::connect(addr).expect("connect");
    client.shutdown().expect("shutdown");
    server_thread.join().expect("server thread");
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
