//! Overhead proof for the `udt-obs` instrumentation layer.
//!
//! The observability contract is that a **disabled** span site costs a
//! few relaxed atomic loads — cheap enough that instrumenting the
//! builder's node step cannot move build times by more than noise. Two
//! enforcement layers:
//!
//! * an absolute gate that runs even under `-- --test` (the CI bench
//!   smoke): tens of millions of disabled span sites and counter
//!   increments must average under 25 ns each. A node step costs at
//!   least a few microseconds, so 25 ns per site keeps the
//!   instrumented step within 2 % of an uninstrumented one on any
//!   hardware this runs on — without comparing against checked-in
//!   timings from a different machine;
//! * criterion measurements of the individual site costs and of a full
//!   instrumented build, for eyeballing trends in `BENCH` trajectories.

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use udt_bench::baseline_workload;
use udt_obs::trace;
use udt_obs::Counter;
use udt_tree::{Algorithm, TreeBuilder, UdtConfig};

static GATE_COUNTER: Counter = Counter::new("udt_bench_overhead_gate_total", "");

/// The absolute per-site bound, generous enough for slow CI hardware
/// while still two orders of magnitude under a node step.
const MAX_NS_PER_SITE: f64 = 25.0;

/// Measures `reps` iterations of `f` and returns nanoseconds per call.
fn ns_per_call(reps: u64, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_nanos() as f64 / reps as f64
}

/// The hard gate: fails the bench (and the CI smoke) outright if a
/// disabled instrumentation site stops being almost free.
fn assert_disabled_sites_are_cheap() {
    assert!(
        !trace::active(),
        "overhead gate must run with tracing disabled"
    );
    let reps = 20_000_000u64;
    let span_ns = ns_per_call(reps, || {
        std::hint::black_box(trace::span("gate", "bench"));
    });
    let counter_ns = ns_per_call(reps, || {
        GATE_COUNTER.incr();
    });
    println!("disabled span site: {span_ns:.2} ns, counter incr: {counter_ns:.2} ns");
    assert!(
        span_ns < MAX_NS_PER_SITE,
        "disabled span site costs {span_ns:.2} ns (bound {MAX_NS_PER_SITE} ns)"
    );
    assert!(
        counter_ns < MAX_NS_PER_SITE,
        "counter increment costs {counter_ns:.2} ns (bound {MAX_NS_PER_SITE} ns)"
    );
}

fn bench_site_costs(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group.bench_function("disabled_span_site", |b| {
        b.iter(|| std::hint::black_box(trace::span("bench", "bench")))
    });
    group.bench_function("counter_incr", |b| b.iter(|| GATE_COUNTER.incr()));
    group.finish();
}

fn bench_instrumented_build(c: &mut Criterion) {
    let data = baseline_workload(20);
    let builder = TreeBuilder::new(UdtConfig::new(Algorithm::UdtEs).with_postprune(false));
    let mut group = c.benchmark_group("obs_overhead");
    group.bench_function("instrumented_build_udt_es", |b| {
        b.iter(|| builder.build(&data).expect("benchmark workload builds"))
    });
    group.finish();
}

criterion_group!(benches, bench_site_costs, bench_instrumented_build);

fn main() {
    assert_disabled_sites_are_cheap();
    let mut criterion = Criterion::default();
    benches(&mut criterion);
    criterion.final_summary();
}
