//! Fig. 6 benchmark: tree-construction time of AVG, UDT, UDT-BP, UDT-LP,
//! UDT-GP and UDT-ES on the baseline uncertain workload.
//!
//! The paper's claim is about the *ordering* (UDT slowest, each pruning
//! stage faster, AVG fastest); absolute times depend on the machine and the
//! synthetic substrate.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use udt_bench::baseline_workload;
use udt_tree::{Algorithm, TreeBuilder, UdtConfig};

fn bench_split_algorithms(c: &mut Criterion) {
    let data = baseline_workload(40);
    let mut group = c.benchmark_group("fig6_build_time");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for algorithm in Algorithm::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(algorithm.name()),
            &algorithm,
            |b, &algorithm| {
                let builder = TreeBuilder::new(UdtConfig::new(algorithm));
                b.iter(|| builder.build(&data).expect("build succeeds"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_split_algorithms);
criterion_main!(benches);
