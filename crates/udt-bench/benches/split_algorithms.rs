//! Fig. 6 benchmark: tree-construction time of AVG, UDT, UDT-BP, UDT-LP,
//! UDT-GP and UDT-ES on the baseline uncertain workload — plus the
//! columnar-engine acceptance comparison against the checked-in naive
//! baseline.
//!
//! The paper's claim is about the *ordering* (UDT slowest, each pruning
//! stage faster, AVG fastest); absolute times depend on the machine and
//! the synthetic substrate. The `columnar_vs_naive` group measures the
//! engine refactor itself: the naive baseline rebuilds and re-sorts every
//! attribute's events at every node and scores candidates through cloned
//! counters, while the production engine presorts once at the root,
//! partitions stably, and scores over borrowed cumulative rows.
//!
//! Run `scripts/bench.sh` to execute this bench and capture the
//! measurement trajectory in `BENCH_split.json`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use udt_bench::baseline_workload;
use udt_tree::baseline::{
    naive_build_splits, naive_find_best, naive_pruned_find_best, NaiveAttributeEvents, NaiveSearch,
};
use udt_tree::columns::{self, Scratch};
use udt_tree::fractional::FractionalTuple;
use udt_tree::split::{es, exhaustive::ExhaustiveSearch, SearchStats, SplitSearch};
use udt_tree::{Algorithm, CountsRepr, KernelKind, Measure, ScoreProfile, TreeBuilder, UdtConfig};

fn bench_split_algorithms(c: &mut Criterion) {
    let data = baseline_workload(40);
    let mut group = c.benchmark_group("fig6_build_time");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for algorithm in Algorithm::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(algorithm.name()),
            &algorithm,
            |b, &algorithm| {
                let builder = TreeBuilder::new(UdtConfig::new(algorithm));
                b.iter(|| builder.build(&data).expect("build succeeds"));
            },
        );
    }
    group.finish();
}

/// The ISSUE acceptance comparison: full tree construction through the
/// columnar engine versus the checked-in naive per-node-rebuild baseline,
/// identical pre-pruning settings, no post-pruning on either side. Two
/// pairings:
///
/// * `udt_es_*` — the paper's flagship pruned algorithm (the production
///   default), where the naive engine's per-node re-sorting, per-position
///   counter allocations and clone-based bound math dominate;
/// * `udt_exhaustive_*` — the plain UDT scan, a lower bound on the
///   speedup since both engines pay the same irreducible entropy
///   evaluations.
fn bench_columnar_vs_naive(c: &mut Criterion) {
    let data = baseline_workload(100);
    let mut group = c.benchmark_group("columnar_vs_naive");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("udt_es_naive_rebuild", |b| {
        b.iter(|| {
            naive_build_splits(
                &data,
                Measure::Entropy,
                NaiveSearch::GlobalPruned(Some(0.10)),
                25,
                2.0,
                1e-6,
            )
        });
    });
    group.bench_function("udt_es_columnar", |b| {
        let builder = TreeBuilder::new(UdtConfig::new(Algorithm::UdtEs).with_postprune(false));
        b.iter(|| builder.build(&data).expect("build succeeds"));
    });
    group.bench_function("udt_exhaustive_naive_rebuild", |b| {
        b.iter(|| {
            naive_build_splits(
                &data,
                Measure::Entropy,
                NaiveSearch::Exhaustive,
                25,
                2.0,
                1e-6,
            )
        });
    });
    group.bench_function("udt_exhaustive_columnar", |b| {
        let builder = TreeBuilder::new(UdtConfig::new(Algorithm::Udt).with_postprune(false));
        b.iter(|| builder.build(&data).expect("build succeeds"));
    });
    group.finish();
}

/// The engine-level acceptance comparison: one node's complete split
/// search — prepare the per-attribute scoring structures, then find the
/// best split. The naive engine pays a rebuild (sort + one `ClassCounts`
/// allocation per position) every node; the columnar engine walks its
/// presorted columns linearly into flat cumulative rows. The root sort is
/// excluded from the columnar side because the production builder pays it
/// exactly once per tree, not per node.
fn bench_node_search_step(c: &mut Criterion) {
    let data = baseline_workload(100);
    let tuples: Vec<FractionalTuple> = data
        .tuples()
        .iter()
        .map(FractionalTuple::from_tuple)
        .collect();
    let labels: Vec<u32> = tuples.iter().map(|t| t.label as u32).collect();
    let numerical: Vec<usize> = data.schema().numerical_indices();
    let n_classes = data.n_classes();
    let root = columns::build_root(&tuples, &numerical);
    let root_state = columns::root_state(&tuples, &root, udt_tree::PartitionMode::View);
    let mut scratch = Scratch::new(tuples.len());
    scratch.load_weights(&root_state);

    let mut group = c.benchmark_group("node_search_step");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("es_naive_rebuild", |b| {
        b.iter(|| {
            let events: Vec<(usize, NaiveAttributeEvents)> = numerical
                .iter()
                .filter_map(|&j| NaiveAttributeEvents::build(&tuples, j, n_classes).map(|e| (j, e)))
                .collect();
            naive_pruned_find_best(&events, Measure::Entropy, Some(0.10))
        });
    });
    group.bench_function("es_columnar", |b| {
        b.iter(|| {
            let events: Vec<(usize, udt_tree::events::AttributeEvents)> = root_state
                .columns
                .iter()
                .zip(&root.columns)
                .filter_map(|(col, root_col)| {
                    columns::events_from_column(col, root_col, &labels, n_classes, &mut scratch)
                        .map(|e| (root_col.attribute, e))
                })
                .collect();
            let mut stats = SearchStats::default();
            es::search().find_best(&events, Measure::Entropy, &mut stats)
        });
    });
    // The same node step through the non-default score profiles: the
    // simd kernel batch-scores candidates (and, with f32 counts, halves
    // the cumulative-matrix traffic); construction builds the matrices
    // in the requested representation from the start.
    for (label, profile) in [
        (
            "es_columnar_simd",
            ScoreProfile {
                kernel: KernelKind::Simd,
                counts: CountsRepr::F64,
            },
        ),
        (
            "es_columnar_simd_f32",
            ScoreProfile {
                kernel: KernelKind::Simd,
                counts: CountsRepr::F32,
            },
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let events: Vec<(usize, udt_tree::events::AttributeEvents)> = root_state
                    .columns
                    .iter()
                    .zip(&root.columns)
                    .filter_map(|(col, root_col)| {
                        columns::events_from_column_with(
                            col,
                            root_col,
                            &labels,
                            n_classes,
                            &mut scratch,
                            profile,
                        )
                        .map(|e| (root_col.attribute, e))
                    })
                    .collect();
                let mut stats = SearchStats::default();
                es::search().find_best(&events, Measure::Entropy, &mut stats)
            });
        });
    }
    group.bench_function("exhaustive_naive_rebuild", |b| {
        b.iter(|| {
            let events: Vec<(usize, NaiveAttributeEvents)> = numerical
                .iter()
                .filter_map(|&j| NaiveAttributeEvents::build(&tuples, j, n_classes).map(|e| (j, e)))
                .collect();
            naive_find_best(&events, Measure::Entropy)
        });
    });
    group.bench_function("exhaustive_columnar", |b| {
        b.iter(|| {
            let events: Vec<(usize, udt_tree::events::AttributeEvents)> = root_state
                .columns
                .iter()
                .zip(&root.columns)
                .filter_map(|(col, root_col)| {
                    columns::events_from_column(col, root_col, &labels, n_classes, &mut scratch)
                        .map(|e| (root_col.attribute, e))
                })
                .collect();
            let mut stats = SearchStats::default();
            ExhaustiveSearch.find_best(&events, Measure::Entropy, &mut stats)
        });
    });
    group.finish();
}

/// The raw score-kernel axis: pure batch candidate scoring (no event
/// construction, no search bookkeeping) over prebuilt root matrices,
/// one bench per kernel × count-representation combination, reported as
/// candidates per second. This isolates the vectorized inner loop the
/// `UDT_KERNEL` / `UDT_COUNTS` knobs select.
fn bench_score_kernel(c: &mut Criterion) {
    let data = baseline_workload(100);
    let tuples: Vec<FractionalTuple> = data
        .tuples()
        .iter()
        .map(FractionalTuple::from_tuple)
        .collect();
    let n_classes = data.n_classes();
    let base: Vec<udt_tree::events::AttributeEvents> = (0..data.n_attributes())
        .filter_map(|j| udt_tree::events::AttributeEvents::build(&tuples, j, n_classes))
        .collect();
    let candidates: u64 = base.iter().map(|ev| (ev.n_positions() - 1) as u64).sum();

    let mut group = c.benchmark_group("score_kernel");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .throughput(criterion::Throughput::Elements(candidates));
    for (label, kernel, counts) in [
        ("scalar_f64", KernelKind::Scalar, CountsRepr::F64),
        ("scalar_f32", KernelKind::Scalar, CountsRepr::F32),
        ("simd_f64", KernelKind::Simd, CountsRepr::F64),
        ("simd_f32", KernelKind::Simd, CountsRepr::F32),
    ] {
        let events: Vec<udt_tree::events::AttributeEvents> = base
            .iter()
            .map(|ev| ev.clone().with_profile(ScoreProfile { kernel, counts }))
            .collect();
        group.bench_function(label, |b| {
            let mut scores = Vec::new();
            b.iter(|| {
                let mut acc = 0.0f64;
                for ev in &events {
                    ev.score_range_into(0..ev.n_positions() - 1, Measure::Entropy, &mut scores);
                    for &s in &scores {
                        if s.is_finite() {
                            acc += s;
                        }
                    }
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_split_algorithms,
    bench_columnar_vs_naive,
    bench_node_search_step,
    bench_score_kernel
);
criterion_main!(benches);
