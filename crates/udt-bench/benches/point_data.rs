//! §7.5 benchmark: applying the bounding / end-point-sampling techniques to
//! plain point data. With many tuples, UDT-ES reduces the number of
//! entropy computations relative to the exhaustive classical search.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use udt_bench::point_dataset;
use udt_tree::point::build_point_tree;
use udt_tree::Algorithm;

fn bench_point_data(c: &mut Criterion) {
    // A larger point-valued workload (no pdfs): the "Segment" stand-in.
    let data = point_dataset("Segment", 0.3);
    let mut group = c.benchmark_group("section7_5_point_data");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for algorithm in [Algorithm::Udt, Algorithm::UdtGp, Algorithm::UdtEs] {
        group.bench_with_input(
            BenchmarkId::from_parameter(algorithm.name()),
            &algorithm,
            |b, &algorithm| {
                b.iter(|| build_point_tree(&data, algorithm).expect("build succeeds"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_point_data);
criterion_main!(benches);
