//! Partition-traffic bench: owned column copies vs zero-copy root views.
//!
//! Both partition modes build bit-identical trees (asserted by the
//! `partition_view_regression` tests); what differs is the data moved
//! per recursion level — an owned child column copies the full
//! `(position, tuple, mass)` triple (20 bytes/event) while a view child
//! carries only surviving root event ids (4 bytes/event) plus sparse
//! scale factors. This bench builds the same UDT-ES tree depth-capped at
//! 4, 8 and 12 in each mode, records wall-clock per build, and annotates
//! each measurement with the total bytes the partition layer allocated
//! (`throughput_bytes` in the JSON written by `scripts/bench.sh` →
//! `BENCH_partition.json`). The deeper the tree, the more often every
//! root event is re-partitioned and the wider the gap.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use udt_bench::{point_dataset, uncertain};
use udt_tree::{Algorithm, PartitionMode, TreeBuilder, UdtConfig};

fn config(depth: usize, mode: PartitionMode) -> UdtConfig {
    UdtConfig::new(Algorithm::UdtEs)
        .with_postprune(false)
        .with_max_depth(depth)
        // Let nodes split down to single tuples so the depth cap, not
        // the weight floor, decides how deep the partition cascade runs.
        .with_min_node_weight(0.5)
        .with_partition_mode(mode)
}

fn bench_partition_traffic(c: &mut Criterion) {
    let data = uncertain(&point_dataset("Iris", 1.0), 0.10, 24);
    let mut group = c.benchmark_group("partition_traffic");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for &depth in &[4usize, 8, 12] {
        for mode in [PartitionMode::Owned, PartitionMode::View] {
            let builder = TreeBuilder::new(config(depth, mode));
            // One instrumented build up front: the partition byte count
            // is deterministic, so it annotates every timed iteration.
            let report = builder.build(&data).expect("build succeeds");
            group.throughput(Throughput::Bytes(report.stats.partition_bytes));
            group.bench_function(&format!("depth{depth:02}_{}", mode.name()), |b| {
                b.iter(|| builder.build(&data).expect("build succeeds"));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_partition_traffic);
criterion_main!(benches);
