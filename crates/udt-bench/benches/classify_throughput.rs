//! Serving-path throughput: batch arena classification vs the per-tuple
//! recursive reference.
//!
//! Both sides classify the same tuples through the same tree and produce
//! bit-for-bit identical distributions (asserted by the regression tests
//! in `udt-tree`); the difference is purely mechanical. The single-tuple
//! path allocates its override table, accumulator and restricted-pdf
//! clones per call, while `classify_batch` reuses a [`BatchScratch`]
//! arena across tuples and skips pdf materialisation on one-sided splits.
//! `scripts/bench.sh` writes these measurements to `BENCH_classify.json`
//! and prints the batch-vs-single speedups.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use udt_bench::baseline_workload;
use udt_tree::classify::{classify_batch, BatchScratch};
use udt_tree::{Algorithm, TreeBuilder, UdtConfig};

fn bench_classify_throughput(c: &mut Criterion) {
    let data = baseline_workload(60);
    let tree = TreeBuilder::new(UdtConfig::new(Algorithm::UdtEs))
        .build(&data)
        .expect("build succeeds")
        .tree;
    let averaged = data.to_averaged();

    let mut group = c.benchmark_group("classify_throughput");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));

    // Uncertain tuples: full fractional propagation with pdf restriction.
    group.bench_function("single_uncertain", |b| {
        b.iter(|| {
            data.tuples()
                .iter()
                .map(|t| tree.predict_distribution(t).expect("tree has classes")[0])
                .sum::<f64>()
        });
    });
    group.bench_function("batch_uncertain", |b| {
        let mut scratch = BatchScratch::new();
        b.iter(|| classify_batch(&tree, data.tuples(), &mut scratch).expect("tree has classes")[0]);
    });

    // Point (averaged) tuples: every split is one-sided, the batch walk
    // never materialises a pdf.
    group.bench_function("single_point", |b| {
        b.iter(|| {
            averaged
                .tuples()
                .iter()
                .map(|t| tree.predict_distribution(t).expect("tree has classes")[0])
                .sum::<f64>()
        });
    });
    group.bench_function("batch_point", |b| {
        let mut scratch = BatchScratch::new();
        b.iter(|| {
            classify_batch(&tree, averaged.tuples(), &mut scratch).expect("tree has classes")[0]
        });
    });
    group.finish();
}

criterion_group!(benches, bench_classify_throughput);
criterion_main!(benches);
