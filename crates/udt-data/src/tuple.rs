//! Labelled training/test tuples.
//!
//! A [`Tuple`] couples a feature vector of [`UncertainValue`]s with a class
//! label (§3.1). Class labels are small integer indices into the data set's
//! class-name table; this keeps tuples compact and lets the tree code use
//! plain `Vec<f64>` class-count accumulators.

use serde::{Deserialize, Serialize};

use crate::value::UncertainValue;

/// A labelled tuple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tuple {
    values: Vec<UncertainValue>,
    label: usize,
}

impl Tuple {
    /// Creates a tuple from its feature values and class label.
    pub fn new(values: Vec<UncertainValue>, label: usize) -> Self {
        Tuple { values, label }
    }

    /// Creates a point-valued tuple from plain numbers (all attributes
    /// numerical and certain).
    pub fn from_points(points: &[f64], label: usize) -> Self {
        Tuple {
            values: points.iter().map(|&v| UncertainValue::point(v)).collect(),
            label,
        }
    }

    /// The tuple's class label index.
    pub fn label(&self) -> usize {
        self.label
    }

    /// The tuple's feature values.
    pub fn values(&self) -> &[UncertainValue] {
        &self.values
    }

    /// The value of attribute `j`.
    pub fn value(&self, j: usize) -> &UncertainValue {
        &self.values[j]
    }

    /// Number of attributes in the tuple.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Replaces the value of attribute `j`, returning a new tuple. Used by
    /// the fractional-tuple machinery when a pdf is restricted to a
    /// sub-domain.
    pub fn with_value(&self, j: usize, value: UncertainValue) -> Tuple {
        let mut values = self.values.clone();
        values[j] = value;
        Tuple {
            values,
            label: self.label,
        }
    }

    /// The Averaging representative of the tuple: every value collapsed to
    /// its summary statistic (§4.1).
    pub fn to_averaged(&self) -> Tuple {
        Tuple {
            values: self.values.iter().map(|v| v.to_averaged()).collect(),
            label: self.label,
        }
    }

    /// Total number of pdf sample points across all attributes — the
    /// information-explosion factor discussed in §3.2.
    pub fn total_samples(&self) -> usize {
        self.values.iter().map(|v| v.sample_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udt_prob::SampledPdf;

    #[test]
    fn point_tuple_construction() {
        let t = Tuple::from_points(&[1.0, 2.0, 3.0], 1);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.label(), 1);
        assert_eq!(t.value(1).expected(), 2.0);
        assert_eq!(t.total_samples(), 3);
    }

    #[test]
    fn with_value_replaces_one_attribute() {
        let t = Tuple::from_points(&[1.0, 2.0], 0);
        let pdf = SampledPdf::new(vec![0.0, 4.0], vec![0.5, 0.5]).unwrap();
        let t2 = t.with_value(1, UncertainValue::Numeric(pdf));
        assert_eq!(t2.value(0).expected(), 1.0);
        assert_eq!(t2.value(1).expected(), 2.0);
        assert_eq!(t2.value(1).sample_count(), 2);
        assert_eq!(t2.label(), 0);
        // The original tuple is untouched.
        assert_eq!(t.value(1).sample_count(), 1);
    }

    #[test]
    fn averaging_collapses_every_value() {
        let pdf = SampledPdf::new(vec![0.0, 10.0], vec![0.5, 0.5]).unwrap();
        let t = Tuple::new(
            vec![UncertainValue::Numeric(pdf), UncertainValue::point(7.0)],
            2,
        );
        assert_eq!(t.total_samples(), 3);
        let avg = t.to_averaged();
        assert_eq!(avg.total_samples(), 2);
        assert_eq!(avg.value(0).expected(), 5.0);
        assert_eq!(avg.label(), 2);
    }
}
