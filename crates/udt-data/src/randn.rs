//! Gaussian sampling helper.
//!
//! The allowed dependency set includes `rand` but not `rand_distr`, so the
//! standard-normal sampler needed by the noise-perturbation (§4.4) and the
//! synthetic data generators is implemented here with the Box–Muller
//! transform.

use rand::Rng;

/// Draws one standard-normal variate using the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws one normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use udt_prob::stats::Summary;

    #[test]
    fn standard_normal_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        let s = Summary::of(&samples);
        assert!(s.mean.abs() < 0.03, "mean {}", s.mean);
        assert!((s.std_dev() - 1.0).abs() < 0.03, "sd {}", s.std_dev());
    }

    #[test]
    fn scaled_normal_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let samples: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 10.0, 3.0)).collect();
        let s = Summary::of(&samples);
        assert!((s.mean - 10.0).abs() < 0.1);
        assert!((s.std_dev() - 3.0).abs() < 0.1);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        let mut b = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }
}
