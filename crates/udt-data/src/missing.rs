//! Missing-value handling (§2 of the paper).
//!
//! The paper notes that its framework subsumes classical missing-value
//! handling: "we can take the average of the pdf of the attribute in
//! question over the tuples where the value is present. The result is a
//! pdf, which can be used as a 'guess' distribution of the attribute's
//! value in the missing tuples." This module implements that fill-in:
//! missing numerical values become the mixture of the observed pdfs,
//! missing categorical values become the observed category distribution.

use udt_prob::{DiscreteDist, SampledPdf};

use crate::attribute::AttributeKind;
use crate::dataset::Dataset;
use crate::error::DataError;
use crate::tuple::Tuple;
use crate::value::UncertainValue;
use crate::Result;

/// A data set in which some attribute values may be absent.
///
/// `values[i][j]` is `None` when tuple `i` is missing attribute `j`.
#[derive(Debug, Clone, PartialEq)]
pub struct IncompleteDataset {
    schema: crate::attribute::Schema,
    class_names: Vec<String>,
    rows: Vec<(Vec<Option<UncertainValue>>, usize)>,
}

impl IncompleteDataset {
    /// Creates an empty incomplete data set.
    pub fn new(schema: crate::attribute::Schema, class_names: Vec<String>) -> Self {
        IncompleteDataset {
            schema,
            class_names,
            rows: Vec::new(),
        }
    }

    /// Appends a row (no validation beyond arity).
    pub fn push(&mut self, values: Vec<Option<UncertainValue>>, label: usize) -> Result<()> {
        if values.len() != self.schema.len() {
            return Err(DataError::ArityMismatch {
                expected: self.schema.len(),
                found: values.len(),
            });
        }
        if label >= self.class_names.len() {
            return Err(DataError::LabelOutOfRange {
                label,
                classes: self.class_names.len(),
            });
        }
        self.rows.push((values, label));
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the data set has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of missing cells across the whole data set.
    pub fn missing_cells(&self) -> usize {
        self.rows
            .iter()
            .map(|(values, _)| values.iter().filter(|v| v.is_none()).count())
            .sum()
    }

    /// Fills every missing value with the paper's "guess" distribution —
    /// the average of the observed pdfs of that attribute — and returns a
    /// complete [`Dataset`]. Fails if some attribute has no observed value
    /// at all.
    pub fn fill_in(&self) -> Result<Dataset> {
        if self.rows.is_empty() {
            return Err(DataError::EmptyDataset);
        }
        // Build one guess value per attribute.
        let mut guesses: Vec<UncertainValue> = Vec::with_capacity(self.schema.len());
        for j in 0..self.schema.len() {
            let attr = self.schema.attribute(j).expect("index in range");
            let observed: Vec<&UncertainValue> = self
                .rows
                .iter()
                .filter_map(|(values, _)| values[j].as_ref())
                .collect();
            if observed.is_empty() {
                return Err(DataError::InvalidParameter {
                    name: "attribute with no observed values",
                    value: j as f64,
                });
            }
            let guess = match attr.kind {
                AttributeKind::Numerical => {
                    let parts: Vec<(f64, &SampledPdf)> = observed
                        .iter()
                        .filter_map(|v| v.as_numeric().map(|p| (1.0, p)))
                        .collect();
                    UncertainValue::Numeric(SampledPdf::mixture(&parts)?)
                }
                AttributeKind::Categorical { cardinality } => {
                    let mut weights = vec![0.0; cardinality];
                    for v in &observed {
                        if let Some(d) = v.as_categorical() {
                            for (c, w) in weights.iter_mut().enumerate() {
                                *w += d.prob(c);
                            }
                        }
                    }
                    UncertainValue::Categorical(DiscreteDist::new(weights)?)
                }
            };
            guesses.push(guess);
        }

        let mut out = Dataset::new(self.schema.clone(), self.class_names.clone());
        for (values, label) in &self.rows {
            let filled: Vec<UncertainValue> = values
                .iter()
                .enumerate()
                .map(|(j, v)| v.clone().unwrap_or_else(|| guesses[j].clone()))
                .collect();
            out.push(Tuple::new(filled, *label))?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{Attribute, Schema};

    fn incomplete() -> IncompleteDataset {
        let schema = Schema::new(vec![
            Attribute::numerical("x"),
            Attribute::categorical("colour", 2),
        ]);
        let mut ds = IncompleteDataset::new(schema, vec!["a".into(), "b".into()]);
        ds.push(
            vec![
                Some(UncertainValue::point(1.0)),
                Some(UncertainValue::category(0, 2)),
            ],
            0,
        )
        .unwrap();
        ds.push(vec![Some(UncertainValue::point(3.0)), None], 1)
            .unwrap();
        ds.push(vec![None, Some(UncertainValue::category(1, 2))], 1)
            .unwrap();
        ds
    }

    #[test]
    fn counting_and_validation() {
        let ds = incomplete();
        assert_eq!(ds.len(), 3);
        assert!(!ds.is_empty());
        assert_eq!(ds.missing_cells(), 2);
        let mut bad = incomplete();
        assert!(bad.push(vec![None], 0).is_err());
        assert!(bad
            .push(vec![None, Some(UncertainValue::category(0, 2))], 9)
            .is_err());
    }

    #[test]
    fn fill_in_uses_the_average_observed_distribution() {
        let filled = incomplete().fill_in().unwrap();
        assert_eq!(filled.len(), 3);
        // The missing numerical cell of row 3 becomes the mixture of the
        // observed values 1.0 and 3.0 — mean 2.0, two sample points.
        let guess = filled.tuple(2).value(0).as_numeric().unwrap();
        assert_eq!(guess.len(), 2);
        assert!((guess.mean() - 2.0).abs() < 1e-12);
        // The missing categorical cell of row 2 becomes the observed 50/50
        // category distribution.
        let cat = filled.tuple(1).value(1).as_categorical().unwrap();
        assert!((cat.prob(0) - 0.5).abs() < 1e-12);
        assert!((cat.prob(1) - 0.5).abs() < 1e-12);
        // Observed values are untouched.
        assert_eq!(filled.tuple(0).value(0).expected(), 1.0);
    }

    #[test]
    fn fill_in_requires_at_least_one_observation_per_attribute() {
        let schema = Schema::new(vec![Attribute::numerical("x")]);
        let mut ds = IncompleteDataset::new(schema, vec!["a".into()]);
        ds.push(vec![None], 0).unwrap();
        assert!(ds.fill_in().is_err());
        let empty = IncompleteDataset::new(
            Schema::new(vec![Attribute::numerical("x")]),
            vec!["a".into()],
        );
        assert!(empty.fill_in().is_err());
    }

    #[test]
    fn filled_dataset_is_trainable_downstream() {
        // The filled data set passes the normal Dataset validation, so it
        // can feed the tree builder directly.
        let filled = incomplete().fill_in().unwrap();
        assert_eq!(filled.n_attributes(), 2);
        assert_eq!(filled.class_counts(), vec![1, 2]);
    }
}
