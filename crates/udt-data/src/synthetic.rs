//! Synthetic class-conditional data generators.
//!
//! The paper's accuracy and efficiency experiments run on ten UCI data
//! sets, which cannot be redistributed or downloaded in this environment.
//! Per the substitution policy in `DESIGN.md`, each data set is replaced by
//! a deterministic synthetic generator that matches its published *shape*
//! (tuple count, attribute count, class count, integer vs real domain).
//!
//! The generative model is a per-class mixture of axis-aligned Gaussians:
//! every class owns a small number of cluster centres drawn uniformly in
//! the unit hyper-cube, and a tuple of that class is a Gaussian sample
//! around one of those centres, scaled to the attribute range. This keeps
//! the classification task learnable but non-trivial (classes overlap, so
//! split-point search matters), which is what the paper's relative
//! comparisons require.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::randn;
use crate::tuple::Tuple;
use crate::Result;

/// Specification of a synthetic class-conditional data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Data set name (for reports).
    pub name: String,
    /// Number of tuples to generate.
    pub tuples: usize,
    /// Number of numerical attributes.
    pub attributes: usize,
    /// Number of classes.
    pub classes: usize,
    /// Gaussian clusters per class.
    pub clusters_per_class: usize,
    /// Relative spread of each cluster (fraction of the attribute range);
    /// larger values make classes overlap more and the task harder.
    pub cluster_spread: f64,
    /// When true, every generated value is rounded to an integer, mimicking
    /// the integer-domain data sets ("PenDigits", "Vehicle", "Satellite")
    /// that the paper singles out as quantisation-noise dominated.
    pub integer_domain: bool,
    /// Width of each attribute's value range.
    pub range_width: f64,
    /// RNG seed; generation is fully deterministic given the spec.
    pub seed: u64,
}

impl SyntheticSpec {
    /// A reasonable default spec used by unit tests: 200 tuples, 4 real
    /// attributes, 3 classes.
    pub fn small(seed: u64) -> Self {
        SyntheticSpec {
            name: "small".to_string(),
            tuples: 200,
            attributes: 4,
            classes: 3,
            clusters_per_class: 2,
            cluster_spread: 0.08,
            integer_domain: false,
            range_width: 100.0,
            seed,
        }
    }

    /// Generates the point-valued data set described by this spec.
    pub fn generate(&self) -> Result<Dataset> {
        if self.tuples == 0 {
            return Err(DataError::InvalidParameter {
                name: "tuples",
                value: 0.0,
            });
        }
        if self.attributes == 0 {
            return Err(DataError::InvalidParameter {
                name: "attributes",
                value: 0.0,
            });
        }
        if self.classes == 0 {
            return Err(DataError::InvalidParameter {
                name: "classes",
                value: 0.0,
            });
        }
        if self.clusters_per_class == 0 {
            return Err(DataError::InvalidParameter {
                name: "clusters_per_class",
                value: 0.0,
            });
        }
        if !(self.cluster_spread > 0.0) || !(self.range_width > 0.0) {
            return Err(DataError::InvalidParameter {
                name: "cluster_spread/range_width",
                value: self.cluster_spread.min(self.range_width),
            });
        }

        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);

        // Cluster centres in the unit hypercube, per class.
        let mut centres: Vec<Vec<Vec<f64>>> = Vec::with_capacity(self.classes);
        for _ in 0..self.classes {
            let mut class_centres = Vec::with_capacity(self.clusters_per_class);
            for _ in 0..self.clusters_per_class {
                class_centres.push((0..self.attributes).map(|_| rng.gen::<f64>()).collect());
            }
            centres.push(class_centres);
        }

        let mut ds = Dataset::numerical(self.attributes, self.classes);
        for i in 0..self.tuples {
            // Round-robin class assignment keeps classes balanced, like the
            // mostly-balanced UCI sets the paper uses.
            let class = i % self.classes;
            let cluster = rng.gen_range(0..self.clusters_per_class);
            let centre = &centres[class][cluster];
            let mut values = Vec::with_capacity(self.attributes);
            for &c in centre {
                let unit = randn::normal(&mut rng, c, self.cluster_spread);
                let mut v = unit * self.range_width;
                if self.integer_domain {
                    v = v.round();
                }
                values.push(v);
            }
            ds.push(Tuple::from_points(&values, class))?;
        }
        Ok(ds)
    }
}

/// Generates a data set in which every attribute value is a bag of raw
/// repeated measurements (like the "JapaneseVowel" LPC coefficients):
/// between `min_samples` and `max_samples` noisy readings around the
/// latent class-dependent value. Returns tuples whose values are
/// histogram-derived pdfs built directly from those raw samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepeatedMeasurementSpec {
    /// Data set name.
    pub name: String,
    /// Number of tuples.
    pub tuples: usize,
    /// Number of attributes.
    pub attributes: usize,
    /// Number of classes (speakers).
    pub classes: usize,
    /// Minimum raw samples per attribute value.
    pub min_samples: usize,
    /// Maximum raw samples per attribute value.
    pub max_samples: usize,
    /// Measurement noise standard deviation relative to the range.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RepeatedMeasurementSpec {
    /// Generates the uncertain data set: each value's pdf is built from its
    /// raw samples with [`udt_prob::SampledPdf::from_raw_samples`].
    pub fn generate(&self) -> Result<Dataset> {
        if self.tuples == 0 || self.attributes == 0 || self.classes == 0 {
            return Err(DataError::InvalidParameter {
                name: "tuples/attributes/classes",
                value: 0.0,
            });
        }
        if self.min_samples == 0 || self.max_samples < self.min_samples {
            return Err(DataError::InvalidParameter {
                name: "min_samples/max_samples",
                value: self.min_samples as f64,
            });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        // Latent per-class attribute profiles in [0, 1].
        let profiles: Vec<Vec<f64>> = (0..self.classes)
            .map(|_| (0..self.attributes).map(|_| rng.gen::<f64>()).collect())
            .collect();

        let mut ds = Dataset::numerical(self.attributes, self.classes);
        for i in 0..self.tuples {
            let class = i % self.classes;
            let mut values = Vec::with_capacity(self.attributes);
            for j in 0..self.attributes {
                let latent = profiles[class][j] + randn::normal(&mut rng, 0.0, self.noise / 2.0);
                let n = rng.gen_range(self.min_samples..=self.max_samples);
                let samples: Vec<f64> = (0..n)
                    .map(|_| randn::normal(&mut rng, latent, self.noise))
                    .collect();
                let pdf = udt_prob::SampledPdf::from_raw_samples(&samples)?;
                values.push(crate::value::UncertainValue::Numeric(pdf));
            }
            ds.push(Tuple::new(values, class))?;
        }
        Ok(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_matches_spec_shape() {
        let spec = SyntheticSpec::small(42);
        let ds = spec.generate().unwrap();
        assert_eq!(ds.len(), 200);
        assert_eq!(ds.n_attributes(), 4);
        assert_eq!(ds.n_classes(), 3);
        // Round-robin labels keep classes balanced to within one tuple.
        let counts = ds.class_counts();
        assert!(counts.iter().all(|&c| (66..=67).contains(&c)));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = SyntheticSpec::small(7).generate().unwrap();
        let b = SyntheticSpec::small(7).generate().unwrap();
        let c = SyntheticSpec::small(8).generate().unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn integer_domain_rounds_values() {
        let mut spec = SyntheticSpec::small(3);
        spec.integer_domain = true;
        let ds = spec.generate().unwrap();
        for t in ds.tuples() {
            for v in t.values() {
                let x = v.expected();
                assert_eq!(x, x.round());
            }
        }
    }

    #[test]
    fn classes_are_separable_better_than_chance() {
        // A crude nearest-centroid check: with modest spread, at least 60 %
        // of tuples are closest to their own class centroid, so the data
        // carries usable class signal for the decision-tree experiments.
        let ds = SyntheticSpec::small(11).generate().unwrap();
        let k = ds.n_attributes();
        let mut centroids = vec![vec![0.0; k]; ds.n_classes()];
        let counts = ds.class_counts();
        for t in ds.tuples() {
            for j in 0..k {
                centroids[t.label()][j] += t.value(j).expected() / counts[t.label()] as f64;
            }
        }
        let mut correct = 0;
        for t in ds.tuples() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d: f64 = (0..k)
                    .map(|j| (t.value(j).expected() - centroid[j]).powi(2))
                    .sum();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if best == t.label() {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / ds.len() as f64 > 0.6,
            "only {correct}/200 tuples near own centroid"
        );
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut spec = SyntheticSpec::small(1);
        spec.tuples = 0;
        assert!(spec.generate().is_err());
        let mut spec = SyntheticSpec::small(1);
        spec.classes = 0;
        assert!(spec.generate().is_err());
        let mut spec = SyntheticSpec::small(1);
        spec.cluster_spread = 0.0;
        assert!(spec.generate().is_err());
    }

    #[test]
    fn repeated_measurements_have_variable_sample_counts() {
        let spec = RepeatedMeasurementSpec {
            name: "jv".into(),
            tuples: 90,
            attributes: 3,
            classes: 9,
            min_samples: 7,
            max_samples: 29,
            noise: 0.05,
            seed: 5,
        };
        let ds = spec.generate().unwrap();
        assert_eq!(ds.len(), 90);
        assert_eq!(ds.n_classes(), 9);
        let mut counts: Vec<usize> = Vec::new();
        for t in ds.tuples() {
            for v in t.values() {
                counts.push(v.sample_count());
                assert!(v.sample_count() <= 29);
            }
        }
        // Sample counts vary across values (raw measurements, not a fixed s).
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max > min);
    }

    #[test]
    fn repeated_measurement_spec_validation() {
        let mut spec = RepeatedMeasurementSpec {
            name: "jv".into(),
            tuples: 10,
            attributes: 2,
            classes: 2,
            min_samples: 5,
            max_samples: 4,
            noise: 0.1,
            seed: 0,
        };
        assert!(spec.generate().is_err());
        spec.max_samples = 5;
        assert!(spec.generate().is_ok());
        spec.tuples = 0;
        assert!(spec.generate().is_err());
    }
}
