//! Controlled noise perturbation (§4.4 of the paper).
//!
//! To test the hypothesis that "the closer the uncertainty model matches
//! the true error, the better the accuracy", the paper perturbs each point
//! value with artificial Gaussian noise of standard deviation
//! `σ = (u · |A_j|) / 4` (parameter `u`), and then injects modelled
//! uncertainty of width `w` on top. [`perturb`] implements the
//! perturbation; [`model_w_for_u`] implements the paper's equation (2)
//! predicting the best-matching `w` for a given `u`.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::randn;
use crate::value::UncertainValue;
use crate::Result;

/// Perturbs every point-valued numerical attribute value by adding
/// Gaussian noise with zero mean and standard deviation
/// `(u · |A_j|) / 4`, where `|A_j|` is the attribute's range width.
///
/// `u = 0` returns an identical copy. Values that are already uncertain
/// are left untouched (the paper perturbs the raw point data *before*
/// uncertainty is added).
pub fn perturb(data: &Dataset, u: f64, seed: u64) -> Result<Dataset> {
    if !u.is_finite() || u < 0.0 {
        return Err(DataError::InvalidParameter {
            name: "u",
            value: u,
        });
    }
    if data.is_empty() {
        return Err(DataError::EmptyDataset);
    }
    if u == 0.0 {
        return Ok(data.clone());
    }

    let mut sigmas = vec![0.0f64; data.n_attributes()];
    for j in data.schema().numerical_indices() {
        sigmas[j] = u * data.attribute_width(j)? / 4.0;
    }

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Dataset::new(data.schema().clone(), data.class_names().to_vec());
    for tuple in data.tuples() {
        let mut new_tuple = tuple.clone();
        for j in 0..tuple.arity() {
            let Some(pdf) = tuple.value(j).as_numeric() else {
                continue;
            };
            if !pdf.is_point() || sigmas[j] <= 0.0 {
                continue;
            }
            let noisy = randn::normal(&mut rng, pdf.mean(), sigmas[j]);
            new_tuple = new_tuple.with_value(j, UncertainValue::point(noisy));
        }
        out.push(new_tuple)?;
    }
    Ok(out)
}

/// The paper's equation (2): given the artificially injected perturbation
/// `u` and the estimated latent error `kappa = ε·4/|A|` (expressed, like
/// `u` and `w`, as a fraction of the attribute range), the uncertainty
/// width that best models the total error is
/// `w = sqrt(kappa² + u²)`.
pub fn model_w_for_u(kappa: f64, u: f64) -> f64 {
    (kappa * kappa + u * u).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use udt_prob::stats::Summary;

    fn dataset(n: usize) -> Dataset {
        let mut ds = Dataset::numerical(1, 2);
        for i in 0..n {
            ds.push(Tuple::from_points(&[i as f64], i % 2)).unwrap();
        }
        ds
    }

    #[test]
    fn zero_perturbation_is_identity() {
        let ds = dataset(50);
        let p = perturb(&ds, 0.0, 1).unwrap();
        assert_eq!(ds, p);
    }

    #[test]
    fn perturbation_noise_has_the_prescribed_magnitude() {
        let ds = dataset(2000);
        let u = 0.2;
        let p = perturb(&ds, u, 99).unwrap();
        // |A| = 1999, so σ = 0.2 · 1999 / 4 ≈ 99.95.
        let deltas: Vec<f64> = ds
            .tuples()
            .iter()
            .zip(p.tuples())
            .map(|(a, b)| b.value(0).expected() - a.value(0).expected())
            .collect();
        let s = Summary::of(&deltas);
        assert!(
            s.mean.abs() < 10.0,
            "noise should be zero-mean, got {}",
            s.mean
        );
        let sigma = 0.2 * 1999.0 / 4.0;
        assert!((s.std_dev() - sigma).abs() < sigma * 0.1);
    }

    #[test]
    fn perturbation_is_deterministic_per_seed() {
        let ds = dataset(20);
        assert_eq!(perturb(&ds, 0.1, 5).unwrap(), perturb(&ds, 0.1, 5).unwrap());
        assert_ne!(perturb(&ds, 0.1, 5).unwrap(), perturb(&ds, 0.1, 6).unwrap());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let ds = dataset(5);
        assert!(perturb(&ds, -0.1, 0).is_err());
        assert!(perturb(&ds, f64::NAN, 0).is_err());
        assert!(perturb(&Dataset::numerical(1, 1), 0.1, 0).is_err());
    }

    #[test]
    fn model_w_matches_equation_2() {
        assert_eq!(model_w_for_u(0.0, 0.0), 0.0);
        assert!((model_w_for_u(0.3, 0.4) - 0.5).abs() < 1e-12);
        // With no latent error the best w equals u.
        assert_eq!(model_w_for_u(0.0, 0.25), 0.25);
    }
}
