//! Uncertain attribute values.
//!
//! Under the paper's uncertainty model (§3.2) a numerical feature value is
//! represented not by a single number `v` but by a pdf `f` over a bounded
//! interval `[a, b]`; a categorical feature value (§7.2) is a discrete
//! distribution over the attribute's categories. [`UncertainValue`] is the
//! sum type covering both, plus the degenerate point case used by the AVG
//! baseline and by certain (error-free) data.

use serde::{Deserialize, Serialize};
use udt_prob::{DiscreteDist, SampledPdf};

/// A single (possibly uncertain) attribute value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UncertainValue {
    /// A numerical value represented by a bounded, discretised pdf.
    Numeric(SampledPdf),
    /// A categorical value represented by a discrete distribution over the
    /// attribute's categories.
    Categorical(DiscreteDist),
}

impl UncertainValue {
    /// A certain (point) numerical value.
    pub fn point(v: f64) -> Self {
        UncertainValue::Numeric(SampledPdf::point(v).expect("finite point value"))
    }

    /// A certain categorical value (category `c` out of `cardinality`).
    pub fn category(c: usize, cardinality: usize) -> Self {
        UncertainValue::Categorical(
            DiscreteDist::certain(c, cardinality).expect("category within cardinality"),
        )
    }

    /// Whether this value is numerical.
    pub fn is_numeric(&self) -> bool {
        matches!(self, UncertainValue::Numeric(_))
    }

    /// Whether this value is categorical.
    pub fn is_categorical(&self) -> bool {
        matches!(self, UncertainValue::Categorical(_))
    }

    /// The pdf of a numerical value, if this is one.
    pub fn as_numeric(&self) -> Option<&SampledPdf> {
        match self {
            UncertainValue::Numeric(pdf) => Some(pdf),
            UncertainValue::Categorical(_) => None,
        }
    }

    /// The distribution of a categorical value, if this is one.
    pub fn as_categorical(&self) -> Option<&DiscreteDist> {
        match self {
            UncertainValue::Categorical(d) => Some(d),
            UncertainValue::Numeric(_) => None,
        }
    }

    /// The value's summary statistic used by the Averaging approach (§4.1):
    /// the expected value for numerical values, the most likely category
    /// (as `f64`) for categorical values.
    pub fn expected(&self) -> f64 {
        match self {
            UncertainValue::Numeric(pdf) => pdf.mean(),
            UncertainValue::Categorical(d) => d.mode() as f64,
        }
    }

    /// Number of sample points carried by this value (1 for certain
    /// values). This is the `s` factor driving UDT's extra cost (§4.2).
    pub fn sample_count(&self) -> usize {
        match self {
            UncertainValue::Numeric(pdf) => pdf.len(),
            UncertainValue::Categorical(d) => d.cardinality(),
        }
    }

    /// Collapses the value to its Averaging representative: a point pdf at
    /// the mean for numerical values, a certain distribution at the mode
    /// for categorical values.
    pub fn to_averaged(&self) -> UncertainValue {
        match self {
            UncertainValue::Numeric(pdf) => UncertainValue::point(pdf.mean()),
            UncertainValue::Categorical(d) => UncertainValue::category(d.mode(), d.cardinality()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_value_roundtrip() {
        let v = UncertainValue::point(3.5);
        assert!(v.is_numeric());
        assert!(!v.is_categorical());
        assert_eq!(v.expected(), 3.5);
        assert_eq!(v.sample_count(), 1);
        assert!(v.as_numeric().unwrap().is_point());
        assert!(v.as_categorical().is_none());
    }

    #[test]
    fn categorical_value_roundtrip() {
        let v = UncertainValue::category(2, 5);
        assert!(v.is_categorical());
        assert_eq!(v.expected(), 2.0);
        assert_eq!(v.sample_count(), 5);
        assert!(v.as_categorical().unwrap().is_certain());
        assert!(v.as_numeric().is_none());
    }

    #[test]
    fn expected_of_uncertain_numeric_is_the_mean() {
        // Tuple 3 of Table 1: mean +2.0.
        let pdf = SampledPdf::new(vec![-1.0, 1.0, 10.0], vec![5.0, 1.0, 2.0]).unwrap();
        let v = UncertainValue::Numeric(pdf);
        assert!((v.expected() - 2.0).abs() < 1e-12);
        assert_eq!(v.sample_count(), 3);
    }

    #[test]
    fn to_averaged_collapses_distributions() {
        let pdf = SampledPdf::new(vec![0.0, 10.0], vec![0.5, 0.5]).unwrap();
        let avg = UncertainValue::Numeric(pdf).to_averaged();
        assert_eq!(avg.sample_count(), 1);
        assert_eq!(avg.expected(), 5.0);

        let d = DiscreteDist::new(vec![0.2, 0.5, 0.3]).unwrap();
        let avg = UncertainValue::Categorical(d).to_averaged();
        assert_eq!(avg.expected(), 1.0);
        assert!(avg.as_categorical().unwrap().is_certain());
    }
}
