//! Attribute declarations and schemas.
//!
//! The paper's data model (§3.1) has `k` feature attributes, each either
//! numerical (real-valued, possibly uncertain — the paper's focus) or
//! categorical (finite domain, §7.2). A [`Schema`] is an ordered list of
//! [`Attribute`]s shared by every tuple of a [`crate::Dataset`].

use serde::{Deserialize, Serialize};

/// The kind of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttributeKind {
    /// A real-valued attribute; values are pdfs over a bounded interval.
    Numerical,
    /// A categorical attribute with the given number of categories; values
    /// are discrete distributions over `0..cardinality`.
    Categorical {
        /// Number of distinct categories in the attribute domain.
        cardinality: usize,
    },
}

impl AttributeKind {
    /// Whether this is a numerical attribute.
    pub fn is_numerical(&self) -> bool {
        matches!(self, AttributeKind::Numerical)
    }

    /// Whether this is a categorical attribute.
    pub fn is_categorical(&self) -> bool {
        matches!(self, AttributeKind::Categorical { .. })
    }
}

/// A named, typed feature attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribute {
    /// Human-readable attribute name.
    pub name: String,
    /// Attribute kind.
    pub kind: AttributeKind,
}

impl Attribute {
    /// Creates a numerical attribute.
    pub fn numerical(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            kind: AttributeKind::Numerical,
        }
    }

    /// Creates a categorical attribute with the given cardinality.
    pub fn categorical(name: impl Into<String>, cardinality: usize) -> Self {
        Attribute {
            name: name.into(),
            kind: AttributeKind::Categorical { cardinality },
        }
    }
}

/// An ordered collection of attributes describing every tuple in a data
/// set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Creates a schema from a list of attributes.
    pub fn new(attributes: Vec<Attribute>) -> Self {
        Schema { attributes }
    }

    /// Creates a schema of `k` numerical attributes named `A1..Ak`, the
    /// shape used throughout the paper's experiments.
    pub fn numerical(k: usize) -> Self {
        Schema {
            attributes: (1..=k)
                .map(|i| Attribute::numerical(format!("A{i}")))
                .collect(),
        }
    }

    /// Number of attributes (`k` in the paper).
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Whether the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// The attribute at index `j`, if any.
    pub fn attribute(&self, j: usize) -> Option<&Attribute> {
        self.attributes.get(j)
    }

    /// All attributes in order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Indices of all numerical attributes.
    pub fn numerical_indices(&self) -> Vec<usize> {
        self.attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind.is_numerical())
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of all categorical attributes.
    pub fn categorical_indices(&self) -> Vec<usize> {
        self.attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind.is_categorical())
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_constructors() {
        let a = Attribute::numerical("radius");
        assert_eq!(a.name, "radius");
        assert!(a.kind.is_numerical());
        assert!(!a.kind.is_categorical());

        let c = Attribute::categorical("tld", 6);
        assert!(c.kind.is_categorical());
        assert_eq!(c.kind, AttributeKind::Categorical { cardinality: 6 });
    }

    #[test]
    fn numerical_schema_names_attributes_like_the_paper() {
        let s = Schema::numerical(3);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.attribute(0).unwrap().name, "A1");
        assert_eq!(s.attribute(2).unwrap().name, "A3");
        assert!(s.attribute(3).is_none());
        assert_eq!(s.numerical_indices(), vec![0, 1, 2]);
        assert!(s.categorical_indices().is_empty());
    }

    #[test]
    fn mixed_schema_partitions_indices() {
        let s = Schema::new(vec![
            Attribute::numerical("temp"),
            Attribute::categorical("colour", 3),
            Attribute::numerical("speed"),
        ]);
        assert_eq!(s.numerical_indices(), vec![0, 2]);
        assert_eq!(s.categorical_indices(), vec![1]);
    }

    #[test]
    fn empty_schema() {
        let s = Schema::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
