//! Labelled data sets.
//!
//! A [`Dataset`] is a schema, a class-name table and a bag of labelled
//! tuples (§3.1: `d` training tuples over `k` attributes with labels from
//! `C`). It validates tuples against the schema at insertion time and
//! provides the derived quantities the experiments need: per-attribute
//! ranges (`|A_j|`, used to scale the uncertainty width `w·|A_j|`), class
//! frequencies, and Averaging projections.

use serde::{Deserialize, Serialize};

use crate::attribute::{AttributeKind, Schema};
use crate::error::DataError;
use crate::tuple::Tuple;
use crate::value::UncertainValue;
use crate::Result;

/// A labelled, schema-validated collection of tuples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    schema: Schema,
    class_names: Vec<String>,
    tuples: Vec<Tuple>,
}

impl Dataset {
    /// Creates an empty data set with the given schema and class names.
    pub fn new(schema: Schema, class_names: Vec<String>) -> Self {
        Dataset {
            schema,
            class_names,
            tuples: Vec::new(),
        }
    }

    /// Creates an empty data set with `k` numerical attributes and
    /// `classes` classes named `C0..`, the shape used by the synthetic
    /// generators.
    pub fn numerical(k: usize, classes: usize) -> Self {
        Dataset::new(
            Schema::numerical(k),
            (0..classes).map(|c| format!("C{c}")).collect(),
        )
    }

    /// The data set schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Class names, indexed by label.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Number of classes (`|C|`).
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Number of attributes (`k`).
    pub fn n_attributes(&self) -> usize {
        self.schema.len()
    }

    /// Number of tuples (`d` / `m`).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the data set has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// All tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// The tuple at `index`.
    pub fn tuple(&self, index: usize) -> &Tuple {
        &self.tuples[index]
    }

    /// Validates and appends a tuple.
    pub fn push(&mut self, tuple: Tuple) -> Result<()> {
        if tuple.arity() != self.schema.len() {
            return Err(DataError::ArityMismatch {
                expected: self.schema.len(),
                found: tuple.arity(),
            });
        }
        if tuple.label() >= self.class_names.len() {
            return Err(DataError::LabelOutOfRange {
                label: tuple.label(),
                classes: self.class_names.len(),
            });
        }
        for (j, value) in tuple.values().iter().enumerate() {
            let attr = self.schema.attribute(j).expect("arity checked above");
            match (&attr.kind, value) {
                (AttributeKind::Numerical, UncertainValue::Numeric(_)) => {}
                (AttributeKind::Categorical { cardinality }, UncertainValue::Categorical(d)) => {
                    if d.cardinality() != *cardinality {
                        return Err(DataError::CategoryOutOfRange {
                            attribute: j,
                            cardinality: *cardinality,
                        });
                    }
                }
                _ => {
                    return Err(DataError::KindMismatch {
                        attribute: j,
                        name: attr.name.clone(),
                    });
                }
            }
        }
        self.tuples.push(tuple);
        Ok(())
    }

    /// Builds a data set from parts, validating every tuple.
    pub fn from_tuples(
        schema: Schema,
        class_names: Vec<String>,
        tuples: Vec<Tuple>,
    ) -> Result<Self> {
        let mut ds = Dataset::new(schema, class_names);
        for t in tuples {
            ds.push(t)?;
        }
        Ok(ds)
    }

    /// Per-class tuple counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for t in &self.tuples {
            counts[t.label()] += 1;
        }
        counts
    }

    /// The range `(min, max)` of attribute `j`'s expected values over the
    /// whole data set — the `|A_j|` quantity of §4.3 used to scale the
    /// uncertainty width. Returns an error for empty data sets or
    /// categorical attributes.
    pub fn attribute_range(&self, j: usize) -> Result<(f64, f64)> {
        if self.tuples.is_empty() {
            return Err(DataError::EmptyDataset);
        }
        let attr = self.schema.attribute(j).ok_or(DataError::KindMismatch {
            attribute: j,
            name: format!("A{j}"),
        })?;
        if !attr.kind.is_numerical() {
            return Err(DataError::KindMismatch {
                attribute: j,
                name: attr.name.clone(),
            });
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for t in &self.tuples {
            let v = t.value(j).expected();
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Ok((lo, hi))
    }

    /// Width of attribute `j`'s range (`|A_j|`), zero for constant
    /// attributes.
    pub fn attribute_width(&self, j: usize) -> Result<f64> {
        let (lo, hi) = self.attribute_range(j)?;
        Ok(hi - lo)
    }

    /// The Averaging projection of the data set: every value replaced by
    /// its summary statistic (§4.1). The schema and labels are unchanged.
    pub fn to_averaged(&self) -> Dataset {
        Dataset {
            schema: self.schema.clone(),
            class_names: self.class_names.clone(),
            tuples: self.tuples.iter().map(|t| t.to_averaged()).collect(),
        }
    }

    /// A new data set with the same schema/classes containing only the
    /// tuples at `indices` (cloned, in the given order).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            schema: self.schema.clone(),
            class_names: self.class_names.clone(),
            tuples: indices.iter().map(|&i| self.tuples[i].clone()).collect(),
        }
    }

    /// Total number of pdf sample points across the whole data set — the
    /// `m·s` information-explosion factor of §4.2.
    pub fn total_samples(&self) -> usize {
        self.tuples.iter().map(|t| t.total_samples()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use udt_prob::{DiscreteDist, SampledPdf};

    fn two_class_dataset() -> Dataset {
        let mut ds = Dataset::numerical(2, 2);
        ds.push(Tuple::from_points(&[0.0, 10.0], 0)).unwrap();
        ds.push(Tuple::from_points(&[2.0, 30.0], 1)).unwrap();
        ds.push(Tuple::from_points(&[4.0, 20.0], 0)).unwrap();
        ds
    }

    #[test]
    fn push_validates_arity_label_and_kind() {
        let mut ds = Dataset::numerical(2, 2);
        assert!(matches!(
            ds.push(Tuple::from_points(&[1.0], 0)),
            Err(DataError::ArityMismatch {
                expected: 2,
                found: 1
            })
        ));
        assert!(matches!(
            ds.push(Tuple::from_points(&[1.0, 2.0], 5)),
            Err(DataError::LabelOutOfRange {
                label: 5,
                classes: 2
            })
        ));
        let bad_kind = Tuple::new(
            vec![UncertainValue::point(1.0), UncertainValue::category(0, 3)],
            0,
        );
        assert!(matches!(
            ds.push(bad_kind),
            Err(DataError::KindMismatch { attribute: 1, .. })
        ));
        assert!(ds.push(Tuple::from_points(&[1.0, 2.0], 1)).is_ok());
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn categorical_cardinality_is_checked() {
        let schema = Schema::new(vec![Attribute::categorical("colour", 3)]);
        let mut ds = Dataset::new(schema, vec!["a".into(), "b".into()]);
        let wrong = Tuple::new(vec![UncertainValue::category(0, 4)], 0);
        assert!(matches!(
            ds.push(wrong),
            Err(DataError::CategoryOutOfRange {
                attribute: 0,
                cardinality: 3
            })
        ));
        let ok = Tuple::new(
            vec![UncertainValue::Categorical(
                DiscreteDist::new(vec![0.2, 0.3, 0.5]).unwrap(),
            )],
            1,
        );
        assert!(ds.push(ok).is_ok());
    }

    #[test]
    fn ranges_and_counts() {
        let ds = two_class_dataset();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.n_attributes(), 2);
        assert_eq!(ds.n_classes(), 2);
        assert_eq!(ds.class_counts(), vec![2, 1]);
        assert_eq!(ds.attribute_range(0).unwrap(), (0.0, 4.0));
        assert_eq!(ds.attribute_width(1).unwrap(), 20.0);
        assert!(ds.attribute_range(7).is_err());
        assert!(Dataset::numerical(2, 2).attribute_range(0).is_err());
    }

    #[test]
    fn subset_selects_by_index() {
        let ds = two_class_dataset();
        let sub = ds.subset(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.tuple(0).value(0).expected(), 4.0);
        assert_eq!(sub.tuple(1).value(0).expected(), 0.0);
        assert_eq!(sub.schema(), ds.schema());
    }

    #[test]
    fn averaging_projection_reduces_sample_counts() {
        let mut ds = Dataset::numerical(1, 2);
        let pdf = SampledPdf::new(vec![0.0, 1.0, 2.0], vec![1.0, 1.0, 2.0]).unwrap();
        ds.push(Tuple::new(vec![UncertainValue::Numeric(pdf)], 0))
            .unwrap();
        assert_eq!(ds.total_samples(), 3);
        let avg = ds.to_averaged();
        assert_eq!(avg.total_samples(), 1);
        assert!((avg.tuple(0).value(0).expected() - 1.25).abs() < 1e-12);
    }
}
