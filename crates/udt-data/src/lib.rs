//! # udt-data — data model and data-set substrate for uncertain decision trees
//!
//! This crate supplies everything the tree-construction crate consumes:
//!
//! * the **uncertain data model** of §3 of the paper — attributes
//!   ([`Attribute`]), uncertain values ([`UncertainValue`]), labelled tuples
//!   ([`Tuple`]) and data sets ([`Dataset`]);
//! * **uncertainty injection** (§4.3): converting a point-valued data set
//!   into an uncertain one by fitting a Gaussian or uniform error model of
//!   relative width `w` discretised to `s` sample points
//!   ([`uncertainty::inject_uncertainty`]);
//! * **controlled noise perturbation** (§4.4): adding Gaussian noise of
//!   relative magnitude `u` to point values before uncertainty is modelled
//!   ([`noise::perturb`]);
//! * **synthetic data-set generators** standing in for the ten UCI data
//!   sets of Table 2 ([`repository`]), including a raw-repeated-measurement
//!   generator mirroring the "JapaneseVowel" data set;
//! * the **hand-crafted example** of Table 1 ([`toy`]), used by the worked
//!   examples and integration tests;
//! * **evaluation splits**: train/test splits and k-fold cross validation
//!   ([`split`]).

// Negated float comparisons (`!(x > 0.0)`) are deliberate NaN guards
// throughout this crate: a NaN parameter must take the rejection branch.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Parallel-slice index loops mirror the paper's subscript notation and
// often index several arrays at once; iterator rewrites obscure that.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod attribute;
pub mod dataset;
pub mod error;
pub mod missing;
pub mod noise;
pub mod randn;
pub mod repository;
pub mod split;
pub mod synthetic;
pub mod toy;
pub mod tuple;
pub mod uncertainty;
pub mod value;

pub use attribute::{Attribute, AttributeKind, Schema};
pub use dataset::Dataset;
pub use error::DataError;
pub use tuple::Tuple;
pub use value::UncertainValue;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DataError>;
