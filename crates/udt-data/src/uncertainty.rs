//! Uncertainty injection (§4.3 of the paper).
//!
//! The paper's sensitivity experiments start from point-valued data sets
//! and *augment* them with synthetic uncertainty: for each tuple `t_i` and
//! numerical attribute `A_j`, the reported point value `v_{i,j}` becomes
//! the mean of a pdf over `[a_{i,j}, b_{i,j}]` whose width is `w · |A_j|`
//! (a fraction `w` of the attribute's global range), shaped by either a
//! Gaussian or a uniform error model and discretised to `s` sample points.
//!
//! [`inject_uncertainty`] implements exactly that transformation.

use serde::{Deserialize, Serialize};
use udt_prob::ErrorModel;

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::value::UncertainValue;
use crate::Result;

/// Parameters of the §4.3 uncertainty-injection procedure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UncertaintySpec {
    /// Width of the pdf domain as a fraction of the attribute range
    /// (`w` in the paper, e.g. `0.10` for the 10 % baseline).
    pub w: f64,
    /// Number of sample points per pdf (`s` in the paper, 100 by default).
    pub s: usize,
    /// The error model shaping the pdf.
    pub model: ErrorModel,
}

impl UncertaintySpec {
    /// The paper's baseline setting: `s = 100`, `w = 10 %`, Gaussian.
    pub fn baseline() -> Self {
        UncertaintySpec {
            w: 0.10,
            s: 100,
            model: ErrorModel::Gaussian,
        }
    }

    /// Returns a copy with a different `w`.
    pub fn with_w(self, w: f64) -> Self {
        UncertaintySpec { w, ..self }
    }

    /// Returns a copy with a different `s`.
    pub fn with_s(self, s: usize) -> Self {
        UncertaintySpec { s, ..self }
    }

    /// Returns a copy with a different error model.
    pub fn with_model(self, model: ErrorModel) -> Self {
        UncertaintySpec { model, ..self }
    }
}

impl Default for UncertaintySpec {
    fn default() -> Self {
        UncertaintySpec::baseline()
    }
}

/// Converts a point-valued data set into an uncertain one.
///
/// For every numerical attribute `A_j`, the attribute's global range width
/// `|A_j|` is computed once over `data`; every tuple's point value then
/// becomes a pdf of width `w·|A_j|` centred on it, discretised to `s`
/// points under `spec.model`. Categorical attributes and attributes with a
/// degenerate (zero-width) range are left untouched. Values that are
/// already uncertain (more than one sample point) are also left untouched,
/// so the function is idempotent on already-injected data.
pub fn inject_uncertainty(data: &Dataset, spec: &UncertaintySpec) -> Result<Dataset> {
    if !(spec.w > 0.0) || !spec.w.is_finite() {
        return Err(DataError::InvalidParameter {
            name: "w",
            value: spec.w,
        });
    }
    if spec.s == 0 {
        return Err(DataError::InvalidParameter {
            name: "s",
            value: 0.0,
        });
    }
    if data.is_empty() {
        return Err(DataError::EmptyDataset);
    }

    // Pre-compute |A_j| for every numerical attribute.
    let mut widths = vec![0.0f64; data.n_attributes()];
    for j in data.schema().numerical_indices() {
        widths[j] = data.attribute_width(j)?;
    }

    let mut out = Dataset::new(data.schema().clone(), data.class_names().to_vec());
    for tuple in data.tuples() {
        let mut new_tuple = tuple.clone();
        for j in 0..tuple.arity() {
            let value = tuple.value(j);
            let Some(pdf) = value.as_numeric() else {
                continue;
            };
            if !pdf.is_point() {
                continue;
            }
            let width = widths[j] * spec.w;
            if width <= 0.0 {
                continue;
            }
            let injected = spec.model.discretise(pdf.mean(), width, spec.s)?;
            new_tuple = new_tuple.with_value(j, UncertainValue::Numeric(injected));
        }
        out.push(new_tuple)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    fn point_dataset() -> Dataset {
        let mut ds = Dataset::numerical(2, 2);
        ds.push(Tuple::from_points(&[0.0, 100.0], 0)).unwrap();
        ds.push(Tuple::from_points(&[10.0, 200.0], 1)).unwrap();
        ds.push(Tuple::from_points(&[5.0, 150.0], 0)).unwrap();
        ds
    }

    #[test]
    fn injection_preserves_means_and_sets_sample_counts() {
        let ds = point_dataset();
        let spec = UncertaintySpec::baseline().with_s(50);
        let uds = inject_uncertainty(&ds, &spec).unwrap();
        assert_eq!(uds.len(), ds.len());
        for (orig, new) in ds.tuples().iter().zip(uds.tuples()) {
            assert_eq!(orig.label(), new.label());
            for j in 0..2 {
                let pdf = new.value(j).as_numeric().unwrap();
                assert_eq!(pdf.len(), 50);
                assert!((pdf.mean() - orig.value(j).expected()).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn injection_width_scales_with_attribute_range() {
        let ds = point_dataset();
        // |A1| = 10, |A2| = 100; w = 20 % so widths 2 and 20.
        let spec = UncertaintySpec::baseline().with_w(0.2).with_s(10);
        let uds = inject_uncertainty(&ds, &spec).unwrap();
        let p0 = uds.tuple(0).value(0).as_numeric().unwrap();
        let p1 = uds.tuple(0).value(1).as_numeric().unwrap();
        assert!(p0.hi() - p0.lo() <= 2.0 + 1e-9);
        assert!(p1.hi() - p1.lo() <= 20.0 + 1e-9);
        assert!(p1.hi() - p1.lo() > 10.0);
    }

    #[test]
    fn uniform_and_gaussian_models_differ_in_shape() {
        let ds = point_dataset();
        let g = inject_uncertainty(&ds, &UncertaintySpec::baseline().with_s(21)).unwrap();
        let u = inject_uncertainty(
            &ds,
            &UncertaintySpec::baseline()
                .with_s(21)
                .with_model(ErrorModel::Uniform),
        )
        .unwrap();
        let gp = g.tuple(0).value(0).as_numeric().unwrap();
        let up = u.tuple(0).value(0).as_numeric().unwrap();
        // Gaussian mass is concentrated near the centre; uniform is flat.
        assert!(gp.mass()[10] > up.mass()[10]);
        assert!((up.mass()[0] - up.mass()[10]).abs() < 1e-12);
    }

    #[test]
    fn injection_is_idempotent_and_skips_constant_attributes() {
        let mut ds = Dataset::numerical(2, 2);
        ds.push(Tuple::from_points(&[1.0, 5.0], 0)).unwrap();
        ds.push(Tuple::from_points(&[1.0, 7.0], 1)).unwrap();
        let spec = UncertaintySpec::baseline().with_s(9);
        let once = inject_uncertainty(&ds, &spec).unwrap();
        // Attribute 0 is constant, so it stays a point value.
        assert_eq!(once.tuple(0).value(0).sample_count(), 1);
        assert_eq!(once.tuple(0).value(1).sample_count(), 9);
        // Re-injecting leaves the already-uncertain values untouched.
        let twice = inject_uncertainty(&once, &spec).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let ds = point_dataset();
        assert!(inject_uncertainty(&ds, &UncertaintySpec::baseline().with_w(0.0)).is_err());
        assert!(inject_uncertainty(&ds, &UncertaintySpec::baseline().with_s(0)).is_err());
        let empty = Dataset::numerical(1, 1);
        assert!(inject_uncertainty(&empty, &UncertaintySpec::baseline()).is_err());
    }
}
