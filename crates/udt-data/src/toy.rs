//! The hand-crafted example of Table 1 / Figs. 1–3 of the paper.
//!
//! Six one-attribute tuples with two classes ("A" and "B") whose means are
//! pairwise indistinguishable (all even-numbered tuples share one mean, all
//! odd-numbered tuples share the other), so the Averaging approach cannot
//! separate them, while the Distribution-based approach can reach 100 %
//! training accuracy. These tuples drive the worked examples and several
//! integration tests.

use udt_prob::SampledPdf;

use crate::dataset::Dataset;
use crate::tuple::Tuple;
use crate::value::UncertainValue;
use crate::Result;

/// Class label "A" (index 0).
pub const CLASS_A: usize = 0;
/// Class label "B" (index 1).
pub const CLASS_B: usize = 1;

/// Builds the six example tuples in the spirit of the paper's Table 1.
///
/// The published table is only partially reproduced in the paper text (it
/// spells out tuple 3's distribution and every tuple's mean), so the
/// remaining tuples are constructed to preserve the example's defining
/// properties:
///
/// * tuples 1, 3, 5 have mean exactly `+2.5` and tuples 2, 4, 6 have mean
///   exactly `−2.5` (the masses are dyadic rationals, so the means are
///   *bitwise* equal in floating point), so the Averaging approach can
///   only ever split the set into {odd-numbered} vs {even-numbered} tuples
///   and misclassifies at least two of them;
/// * class "A" tuples concentrate their probability mass near ±10 while
///   class "B" tuples concentrate theirs near ±1, so a distribution-based
///   tree separates the classes and classifies all six tuples correctly
///   (the §4.2 demonstration).
pub fn table1_tuples() -> Result<Vec<Tuple>> {
    // Every mass is a dyadic rational so each tuple's mean is exactly +2.5
    // or −2.5 with no floating-point residue.
    let specs: [(usize, Vec<f64>, Vec<f64>); 6] = [
        // Tuple 1: class A, mean +2.5, all mass at ±10.
        (CLASS_A, vec![-10.0, 10.0], vec![0.375, 0.625]),
        // Tuple 2: class A, mean −2.5, all mass at ±10.
        (CLASS_A, vec![-10.0, 10.0], vec![0.625, 0.375]),
        // Tuple 3: class A, mean +2.5, 87.5 % of the mass at ±10.
        (
            CLASS_A,
            vec![-10.0, -1.0, 1.0, 10.0],
            vec![0.3125, 0.0625, 0.0625, 0.5625],
        ),
        // Tuple 4: class B, mean −2.5, 75 % of the mass at ±1.
        (CLASS_B, vec![-10.0, -1.0, 1.0], vec![0.25, 0.375, 0.375]),
        // Tuple 5: class B, mean +2.5, 75 % of the mass at ±1.
        (CLASS_B, vec![-1.0, 1.0, 10.0], vec![0.375, 0.375, 0.25]),
        // Tuple 6: class B, mean −2.5, 68.75 % of the mass at ±1.
        (
            CLASS_B,
            vec![-10.0, -1.0, 1.0],
            vec![0.3125, 0.03125, 0.65625],
        ),
    ];
    let mut tuples = Vec::with_capacity(6);
    for (label, points, mass) in specs {
        let pdf = SampledPdf::new(points, mass)?;
        tuples.push(Tuple::new(vec![UncertainValue::Numeric(pdf)], label));
    }
    Ok(tuples)
}

/// Builds the Table 1 data set (one numerical attribute, classes "A"/"B").
pub fn table1_dataset() -> Result<Dataset> {
    let mut ds = Dataset::new(
        crate::attribute::Schema::numerical(1),
        vec!["A".to_string(), "B".to_string()],
    );
    for t in table1_tuples()? {
        ds.push(t)?;
    }
    Ok(ds)
}

/// The test tuple of Fig. 1: a single uncertain attribute whose pdf spans
/// `[-2.5, 2]` with 30 % of its mass at or below −1.
pub fn fig1_test_tuple() -> Result<Tuple> {
    let pdf = SampledPdf::new(
        vec![-2.5, -2.0, -1.0, 0.0, 1.0, 2.0],
        vec![0.1, 0.1, 0.1, 0.2, 0.3, 0.2],
    )?;
    Ok(Tuple::new(vec![UncertainValue::Numeric(pdf)], CLASS_A))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_means_alternate_and_are_bitwise_equal() {
        let tuples = table1_tuples().unwrap();
        assert_eq!(tuples.len(), 6);
        for (i, t) in tuples.iter().enumerate() {
            let mean = t.value(0).expected();
            let expected = if i % 2 == 0 { 2.5 } else { -2.5 };
            // Exact equality is intentional: the whole point of the example
            // is that Averaging sees literally identical values.
            assert_eq!(mean, expected, "tuple {} mean", i + 1);
        }
    }

    #[test]
    fn table1_class_labels_match_the_paper() {
        let tuples = table1_tuples().unwrap();
        let labels: Vec<usize> = tuples.iter().map(|t| t.label()).collect();
        assert_eq!(
            labels,
            vec![CLASS_A, CLASS_A, CLASS_A, CLASS_B, CLASS_B, CLASS_B]
        );
    }

    #[test]
    fn table1_dataset_shape() {
        let ds = table1_dataset().unwrap();
        assert_eq!(ds.len(), 6);
        assert_eq!(ds.n_attributes(), 1);
        assert_eq!(ds.class_names(), &["A".to_string(), "B".to_string()]);
        assert_eq!(ds.class_counts(), vec![3, 3]);
    }

    #[test]
    fn fig1_tuple_splits_30_70_at_minus_one() {
        let t = fig1_test_tuple().unwrap();
        let pdf = t.value(0).as_numeric().unwrap();
        assert!((pdf.prob_le(-1.0) - 0.3).abs() < 1e-12);
        assert!((pdf.prob_gt(-1.0) - 0.7).abs() < 1e-12);
        assert_eq!(pdf.lo(), -2.5);
        assert_eq!(pdf.hi(), 2.0);
    }
}
