//! Error types for the data-model crate.

use udt_prob::ProbError;

/// Errors produced while constructing or manipulating data sets.
#[derive(Debug, Clone, PartialEq, thiserror::Error)]
pub enum DataError {
    /// A tuple's arity did not match the schema.
    #[error("tuple has {found} values but the schema has {expected} attributes")]
    ArityMismatch {
        /// Number of attributes in the schema.
        expected: usize,
        /// Number of values in the offending tuple.
        found: usize,
    },

    /// A class label index was out of range.
    #[error("class label {label} is out of range (data set has {classes} classes)")]
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of classes declared.
        classes: usize,
    },

    /// A value's type did not match its attribute declaration.
    #[error("value for attribute {attribute} ({name}) has the wrong kind")]
    KindMismatch {
        /// Attribute index.
        attribute: usize,
        /// Attribute name.
        name: String,
    },

    /// A categorical value referenced a category outside the declared
    /// cardinality.
    #[error("categorical value for attribute {attribute} exceeds cardinality {cardinality}")]
    CategoryOutOfRange {
        /// Attribute index.
        attribute: usize,
        /// Declared cardinality.
        cardinality: usize,
    },

    /// An operation that requires tuples was invoked on an empty data set.
    #[error("operation requires a non-empty data set")]
    EmptyDataset,

    /// An invalid parameter was supplied (e.g. zero folds, w <= 0).
    #[error("invalid parameter {name}: {value}")]
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },

    /// An error bubbled up from the probability substrate.
    #[error("probability error: {0}")]
    Prob(#[from] ProbError),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = DataError::ArityMismatch {
            expected: 4,
            found: 2,
        };
        assert!(e.to_string().contains('4') && e.to_string().contains('2'));
        let e = DataError::Prob(ProbError::EmptyPdf);
        assert!(e.to_string().contains("probability error"));
    }

    #[test]
    fn prob_errors_convert() {
        fn inner() -> crate::Result<()> {
            Err(ProbError::EmptySupport)?
        }
        assert!(matches!(inner(), Err(DataError::Prob(_))));
    }
}
