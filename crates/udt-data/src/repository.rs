//! The Table 2 data-set repository.
//!
//! The paper evaluates on ten UCI data sets (Table 2). Those files are not
//! available offline, so — per the substitution policy in `DESIGN.md` —
//! this module declares one [`DatasetSpec`] per data set, carrying the
//! published shape (tuple count, attribute count, class count, domain
//! type) and a deterministic synthetic generator matching it.
//!
//! Because the published sizes are large (e.g. "PenDigits" has 10 992
//! tuples × 16 attributes, i.e. ≈ 1.8 M pdf sample points at `s = 100`),
//! every generator accepts a `scale` factor in `(0, 1]`; experiments and
//! benchmarks default to a reduced scale so the whole suite runs on a
//! laptop, while `scale = 1.0` reproduces the paper's full sizes.

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::synthetic::{RepeatedMeasurementSpec, SyntheticSpec};
use crate::Result;

/// How a data set's uncertainty is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UncertaintySource {
    /// Point values; uncertainty is injected synthetically (§4.3).
    Injected,
    /// Raw repeated measurements; the pdf is built from the raw samples
    /// (the "JapaneseVowel" case).
    RawSamples,
}

/// Descriptor of one Table 2 data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Data set name as printed in the paper.
    pub name: &'static str,
    /// Published number of tuples.
    pub tuples: usize,
    /// Published number of numerical attributes used for classification.
    pub attributes: usize,
    /// Published number of classes.
    pub classes: usize,
    /// Whether the attribute domains are integral (quantisation-noise
    /// dominated: "PenDigits", "Vehicle", "Satellite").
    pub integer_domain: bool,
    /// Whether the data set ships a train/test split (otherwise 10-fold
    /// cross-validation is used, as in the paper).
    pub has_train_test_split: bool,
    /// How uncertainty is obtained for this data set.
    pub uncertainty: UncertaintySource,
    /// Seed used by the synthetic generator.
    pub seed: u64,
}

impl DatasetSpec {
    /// Generates the data set at the given scale factor (`0 < scale <= 1`).
    /// The returned data set is point-valued for [`UncertaintySource::Injected`]
    /// specs (uncertainty is added separately with
    /// [`crate::uncertainty::inject_uncertainty`]) and already uncertain for
    /// [`UncertaintySource::RawSamples`] specs.
    pub fn generate(&self, scale: f64) -> Result<Dataset> {
        if !(scale > 0.0 && scale <= 1.0) {
            return Err(DataError::InvalidParameter {
                name: "scale",
                value: scale,
            });
        }
        let tuples = ((self.tuples as f64 * scale).round() as usize)
            .max(self.classes * 4)
            .min(self.tuples);
        match self.uncertainty {
            UncertaintySource::Injected => SyntheticSpec {
                name: self.name.to_string(),
                tuples,
                attributes: self.attributes,
                classes: self.classes,
                clusters_per_class: 2,
                cluster_spread: 0.07,
                integer_domain: self.integer_domain,
                range_width: if self.integer_domain { 100.0 } else { 10.0 },
                seed: self.seed,
            }
            .generate(),
            UncertaintySource::RawSamples => RepeatedMeasurementSpec {
                name: self.name.to_string(),
                tuples,
                attributes: self.attributes,
                classes: self.classes,
                min_samples: 7,
                max_samples: 29,
                noise: 0.06,
                seed: self.seed,
            }
            .generate(),
        }
    }
}

/// The ten data sets of Table 2, in the paper's order, with their published
/// shapes.
pub fn table2_specs() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "JapaneseVowel",
            tuples: 640,
            attributes: 12,
            classes: 9,
            integer_domain: false,
            has_train_test_split: true,
            uncertainty: UncertaintySource::RawSamples,
            seed: 1,
        },
        DatasetSpec {
            name: "PenDigits",
            tuples: 10_992,
            attributes: 16,
            classes: 10,
            integer_domain: true,
            has_train_test_split: true,
            uncertainty: UncertaintySource::Injected,
            seed: 2,
        },
        DatasetSpec {
            name: "PageBlocks",
            tuples: 5_473,
            attributes: 10,
            classes: 5,
            integer_domain: false,
            has_train_test_split: false,
            uncertainty: UncertaintySource::Injected,
            seed: 3,
        },
        DatasetSpec {
            name: "Satellite",
            tuples: 6_435,
            attributes: 36,
            classes: 6,
            integer_domain: true,
            has_train_test_split: true,
            uncertainty: UncertaintySource::Injected,
            seed: 4,
        },
        DatasetSpec {
            name: "Segment",
            tuples: 2_310,
            attributes: 19,
            classes: 7,
            integer_domain: false,
            has_train_test_split: false,
            uncertainty: UncertaintySource::Injected,
            seed: 5,
        },
        DatasetSpec {
            name: "Vehicle",
            tuples: 846,
            attributes: 18,
            classes: 4,
            integer_domain: true,
            has_train_test_split: false,
            uncertainty: UncertaintySource::Injected,
            seed: 6,
        },
        DatasetSpec {
            name: "BreastCancer",
            tuples: 569,
            attributes: 30,
            classes: 2,
            integer_domain: false,
            has_train_test_split: false,
            uncertainty: UncertaintySource::Injected,
            seed: 7,
        },
        DatasetSpec {
            name: "Ionosphere",
            tuples: 351,
            attributes: 34,
            classes: 2,
            integer_domain: false,
            has_train_test_split: false,
            uncertainty: UncertaintySource::Injected,
            seed: 8,
        },
        DatasetSpec {
            name: "Glass",
            tuples: 214,
            attributes: 9,
            classes: 6,
            integer_domain: false,
            has_train_test_split: false,
            uncertainty: UncertaintySource::Injected,
            seed: 9,
        },
        DatasetSpec {
            name: "Iris",
            tuples: 150,
            attributes: 4,
            classes: 3,
            integer_domain: false,
            has_train_test_split: false,
            uncertainty: UncertaintySource::Injected,
            seed: 10,
        },
    ]
}

/// Looks a spec up by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<DatasetSpec> {
    table2_specs()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

/// Convenience accessor for the "JapaneseVowel"-like raw-measurement data
/// set at the given scale.
pub fn japanese_vowel(scale: f64) -> Result<Dataset> {
    by_name("JapaneseVowel")
        .expect("JapaneseVowel is always in the repository")
        .generate(scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repository_lists_the_ten_table2_datasets() {
        let specs = table2_specs();
        assert_eq!(specs.len(), 10);
        let names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        assert!(names.contains(&"JapaneseVowel"));
        assert!(names.contains(&"Iris"));
        assert!(names.contains(&"PenDigits"));
        // Exactly the three integer-domain sets called out in §4.3.
        let integral: Vec<&str> = specs
            .iter()
            .filter(|s| s.integer_domain)
            .map(|s| s.name)
            .collect();
        assert_eq!(integral, vec!["PenDigits", "Satellite", "Vehicle"]);
        // Only JapaneseVowel uses raw-sample uncertainty.
        assert!(specs.iter().all(
            |s| (s.uncertainty == UncertaintySource::RawSamples) == (s.name == "JapaneseVowel")
        ));
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(by_name("iris").is_some());
        assert!(by_name("IRIS").is_some());
        assert!(by_name("NoSuchDataset").is_none());
    }

    #[test]
    fn scaled_generation_matches_shape() {
        let iris = by_name("Iris").unwrap();
        let ds = iris.generate(1.0).unwrap();
        assert_eq!(ds.len(), 150);
        assert_eq!(ds.n_attributes(), 4);
        assert_eq!(ds.n_classes(), 3);

        let small = iris.generate(0.2).unwrap();
        assert_eq!(small.len(), 30);
        assert_eq!(small.n_attributes(), 4);

        assert!(iris.generate(0.0).is_err());
        assert!(iris.generate(1.5).is_err());
    }

    #[test]
    fn scaling_never_collapses_a_class() {
        for spec in table2_specs() {
            let ds = spec.generate(0.05).unwrap();
            let counts = ds.class_counts();
            assert!(
                counts.iter().all(|&c| c > 0),
                "{}: a class vanished at small scale",
                spec.name
            );
        }
    }

    #[test]
    fn japanese_vowel_values_are_raw_sample_pdfs() {
        let ds = japanese_vowel(0.2).unwrap();
        assert_eq!(ds.n_attributes(), 12);
        assert_eq!(ds.n_classes(), 9);
        // Values carry between 1 and 29 distinct sample points (duplicates
        // in raw samples may merge).
        for t in ds.tuples().iter().take(10) {
            for v in t.values() {
                assert!(v.sample_count() <= 29);
            }
        }
    }

    #[test]
    fn integer_domain_sets_generate_integral_values() {
        let ds = by_name("Vehicle").unwrap().generate(0.1).unwrap();
        for t in ds.tuples().iter().take(20) {
            for v in t.values() {
                let x = v.expected();
                assert_eq!(x, x.round());
            }
        }
    }
}
