//! Train/test splits and k-fold cross validation.
//!
//! The paper's accuracy experiments (§4.3) use the data sets' provided
//! train/test partition when one exists and 10-fold cross validation
//! otherwise. Both are provided here with deterministic, seedable
//! shuffling so that experiments are reproducible.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::Result;

/// A train/test pair of datasets.
#[derive(Debug, Clone)]
pub struct TrainTest {
    /// The training partition.
    pub train: Dataset,
    /// The testing partition.
    pub test: Dataset,
}

/// Splits `data` into a training part containing `train_fraction` of the
/// tuples and a test part containing the rest, after a seeded shuffle.
///
/// `train_fraction` must lie strictly between 0 and 1 and both partitions
/// must be non-empty.
pub fn train_test_split(data: &Dataset, train_fraction: f64, seed: u64) -> Result<TrainTest> {
    if !(0.0 < train_fraction && train_fraction < 1.0) {
        return Err(DataError::InvalidParameter {
            name: "train_fraction",
            value: train_fraction,
        });
    }
    if data.len() < 2 {
        return Err(DataError::EmptyDataset);
    }
    let mut indices: Vec<usize> = (0..data.len()).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let n_train = ((data.len() as f64 * train_fraction).round() as usize).clamp(1, data.len() - 1);
    let (train_idx, test_idx) = indices.split_at(n_train);
    Ok(TrainTest {
        train: data.subset(train_idx),
        test: data.subset(test_idx),
    })
}

/// Produces `k` cross-validation folds: each fold is a (train, test) pair
/// where the test part is one of `k` roughly equal shares of a seeded
/// shuffle and the train part is everything else.
///
/// Requires `2 <= k <= data.len()`.
pub fn k_folds(data: &Dataset, k: usize, seed: u64) -> Result<Vec<TrainTest>> {
    if k < 2 {
        return Err(DataError::InvalidParameter {
            name: "k",
            value: k as f64,
        });
    }
    if data.len() < k {
        return Err(DataError::InvalidParameter {
            name: "k (exceeds tuple count)",
            value: k as f64,
        });
    }
    let mut indices: Vec<usize> = (0..data.len()).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    indices.shuffle(&mut rng);

    // Distribute the remainder one extra tuple per leading fold so fold
    // sizes differ by at most one.
    let base = data.len() / k;
    let extra = data.len() % k;
    let mut folds = Vec::with_capacity(k);
    let mut start = 0;
    for fold in 0..k {
        let size = base + usize::from(fold < extra);
        let test_idx: Vec<usize> = indices[start..start + size].to_vec();
        let train_idx: Vec<usize> = indices[..start]
            .iter()
            .chain(indices[start + size..].iter())
            .copied()
            .collect();
        folds.push(TrainTest {
            train: data.subset(&train_idx),
            test: data.subset(&test_idx),
        });
        start += size;
    }
    Ok(folds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    fn dataset(n: usize) -> Dataset {
        let mut ds = Dataset::numerical(1, 2);
        for i in 0..n {
            ds.push(Tuple::from_points(&[i as f64], i % 2)).unwrap();
        }
        ds
    }

    #[test]
    fn train_test_split_partitions_all_tuples() {
        let ds = dataset(20);
        let tt = train_test_split(&ds, 0.7, 42).unwrap();
        assert_eq!(tt.train.len(), 14);
        assert_eq!(tt.test.len(), 6);
        // No tuple lost or duplicated: the multiset of attribute values is
        // preserved.
        let mut values: Vec<f64> = tt
            .train
            .tuples()
            .iter()
            .chain(tt.test.tuples())
            .map(|t| t.value(0).expected())
            .collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected: Vec<f64> = (0..20).map(|i| i as f64).collect();
        assert_eq!(values, expected);
    }

    #[test]
    fn train_test_split_is_deterministic_per_seed() {
        let ds = dataset(30);
        let a = train_test_split(&ds, 0.5, 7).unwrap();
        let b = train_test_split(&ds, 0.5, 7).unwrap();
        assert_eq!(a.train, b.train);
        let c = train_test_split(&ds, 0.5, 8).unwrap();
        assert_ne!(a.train, c.train);
    }

    #[test]
    fn train_test_split_rejects_bad_parameters() {
        let ds = dataset(10);
        assert!(train_test_split(&ds, 0.0, 1).is_err());
        assert!(train_test_split(&ds, 1.0, 1).is_err());
        assert!(train_test_split(&dataset(1), 0.5, 1).is_err());
    }

    #[test]
    fn k_folds_cover_every_tuple_exactly_once_as_test() {
        let ds = dataset(23);
        let folds = k_folds(&ds, 10, 3).unwrap();
        assert_eq!(folds.len(), 10);
        let mut test_values: Vec<f64> = folds
            .iter()
            .flat_map(|f| f.test.tuples().iter().map(|t| t.value(0).expected()))
            .collect();
        test_values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected: Vec<f64> = (0..23).map(|i| i as f64).collect();
        assert_eq!(test_values, expected);
        for f in &folds {
            assert_eq!(f.train.len() + f.test.len(), 23);
            // Fold sizes differ by at most one.
            assert!(f.test.len() == 2 || f.test.len() == 3);
        }
    }

    #[test]
    fn k_folds_rejects_bad_parameters() {
        let ds = dataset(5);
        assert!(k_folds(&ds, 1, 0).is_err());
        assert!(k_folds(&ds, 6, 0).is_err());
        assert!(k_folds(&ds, 5, 0).is_ok());
    }
}
