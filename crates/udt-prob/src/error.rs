//! Error types for the probability substrate.

/// Errors produced while constructing or manipulating probability objects.
#[derive(Debug, Clone, PartialEq, thiserror::Error)]
pub enum ProbError {
    /// A pdf was constructed with no sample points.
    #[error("a pdf requires at least one sample point")]
    EmptyPdf,

    /// Sample points were not strictly increasing.
    #[error("pdf sample points must be strictly increasing (index {index})")]
    UnsortedPoints {
        /// Index of the first offending point.
        index: usize,
    },

    /// A probability mass was negative or not finite.
    #[error("probability mass at index {index} is invalid: {value}")]
    InvalidMass {
        /// Index of the offending mass.
        index: usize,
        /// The offending value.
        value: f64,
    },

    /// The total probability mass was zero or not finite, so the
    /// distribution cannot be normalised.
    #[error("total probability mass is not normalisable: {total}")]
    ZeroMass {
        /// The total mass encountered.
        total: f64,
    },

    /// An interval `[lo, hi]` was supplied with `lo > hi` or non-finite
    /// bounds.
    #[error("invalid interval [{lo}, {hi}]")]
    InvalidInterval {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },

    /// A model parameter was out of range (e.g. non-positive width or
    /// standard deviation).
    #[error("invalid parameter {name}: {value}")]
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },

    /// A discrete distribution was built from an empty support.
    #[error("a discrete distribution requires at least one category")]
    EmptySupport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = ProbError::UnsortedPoints { index: 3 };
        assert!(e.to_string().contains("strictly increasing"));
        let e = ProbError::InvalidMass {
            index: 1,
            value: -0.5,
        };
        assert!(e.to_string().contains("-0.5"));
        let e = ProbError::InvalidInterval { lo: 2.0, hi: 1.0 };
        assert!(e.to_string().contains("[2, 1]"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(ProbError::EmptyPdf, ProbError::EmptyPdf);
        assert_ne!(ProbError::EmptyPdf, ProbError::EmptySupport);
    }
}
