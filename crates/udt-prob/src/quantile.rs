//! Quantiles and percentile pseudo-end-points.
//!
//! §7.3 of the paper handles *unbounded* pdfs by generating artificial
//! "end points" at the 10-, 20-, …, 90-percentiles of each class's
//! cumulative tuple-count function, so that the interval-based pruning
//! algorithms (UDT-GP / UDT-ES) still have a finite set of interval
//! boundaries to work with. This module provides the quantile machinery on
//! a single [`SampledPdf`] and the combined pseudo-end-point generator over
//! a weighted collection of pdfs.

use crate::pdf::SampledPdf;

/// Returns the `q`-quantile of a pdf, i.e. the smallest sample point `x`
/// with `P[X <= x] >= q`. `q` is clamped into `[0, 1]`.
pub fn quantile(pdf: &SampledPdf, q: f64) -> f64 {
    let q = q.clamp(0.0, 1.0);
    let cum = pdf.cumulative();
    // First index whose cumulative mass reaches q.
    match cum.binary_search_by(|c| c.partial_cmp(&q).expect("cumulative masses are finite")) {
        Ok(i) => pdf.points()[i],
        Err(i) if i < cum.len() => pdf.points()[i],
        Err(_) => pdf.hi(),
    }
}

/// Returns deciles (10 %, 20 %, …, 90 %) of a pdf — the paper's suggested
/// percentile grid for unbounded pdfs.
pub fn deciles(pdf: &SampledPdf) -> Vec<f64> {
    (1..=9).map(|i| quantile(pdf, i as f64 / 10.0)).collect()
}

/// Generates pseudo-end-points for a weighted collection of pdfs by taking
/// `per_group` evenly-spaced quantiles of the *combined* weighted
/// cumulative tuple-count function of each group (§7.3: one cumulative
/// frequency function per class).
///
/// Each entry of `groups` is a list of `(weight, pdf)` pairs belonging to
/// one class. The returned points are sorted and deduplicated.
pub fn pseudo_end_points(groups: &[Vec<(f64, &SampledPdf)>], per_group: usize) -> Vec<f64> {
    let mut out: Vec<f64> = Vec::new();
    for group in groups {
        let total: f64 = group.iter().map(|(w, _)| *w).sum();
        if total <= 0.0 || per_group == 0 {
            continue;
        }
        // Collect the weighted sample points of the whole group and sort
        // them: the group's cumulative tuple count is a step function over
        // these points.
        let mut pairs: Vec<(f64, f64)> = Vec::new();
        for (w, pdf) in group {
            for (x, m) in pdf.iter() {
                pairs.push((x, w * m));
            }
        }
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite sample points"));
        for i in 1..=per_group {
            let target = total * i as f64 / (per_group + 1) as f64;
            let mut acc = 0.0;
            let mut chosen = pairs.last().map(|p| p.0).unwrap_or(0.0);
            for &(x, m) in &pairs {
                acc += m;
                if acc >= target {
                    chosen = x;
                    break;
                }
            }
            out.push(chosen);
        }
    }
    out.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_pdf(lo: f64, hi: f64, s: usize) -> SampledPdf {
        let points: Vec<f64> = (0..s)
            .map(|i| lo + (hi - lo) * i as f64 / (s - 1) as f64)
            .collect();
        SampledPdf::new(points, vec![1.0; s]).unwrap()
    }

    #[test]
    fn quantile_of_uniform_pdf_is_linear() {
        let p = uniform_pdf(0.0, 100.0, 101);
        // Each of the 101 points carries mass 1/101; the 0.5 quantile is
        // near the middle of the domain.
        let med = quantile(&p, 0.5);
        assert!((med - 50.0).abs() <= 1.0, "median = {med}");
        assert_eq!(quantile(&p, 0.0), 0.0);
        assert_eq!(quantile(&p, 1.0), 100.0);
        // Out-of-range quantiles are clamped.
        assert_eq!(quantile(&p, -3.0), 0.0);
        assert_eq!(quantile(&p, 7.0), 100.0);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let p = SampledPdf::new(vec![0.0, 1.0, 5.0, 9.0], vec![0.1, 0.4, 0.4, 0.1]).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = quantile(&p, i as f64 / 20.0);
            assert!(q >= prev);
            prev = q;
        }
    }

    #[test]
    fn deciles_returns_nine_sorted_points() {
        let p = uniform_pdf(0.0, 1.0, 1000);
        let d = deciles(&p);
        assert_eq!(d.len(), 9);
        assert!(d.windows(2).all(|w| w[0] <= w[1]));
        assert!((d[4] - 0.5).abs() < 0.01);
    }

    #[test]
    fn pseudo_end_points_cover_each_class() {
        let a = uniform_pdf(0.0, 1.0, 50);
        let b = uniform_pdf(10.0, 11.0, 50);
        let groups = vec![vec![(1.0, &a)], vec![(1.0, &b)]];
        let pts = pseudo_end_points(&groups, 9);
        assert!(!pts.is_empty());
        // Points from both class regions are present.
        assert!(pts.iter().any(|&x| x <= 1.0));
        assert!(pts.iter().any(|&x| x >= 10.0));
        // Sorted and deduplicated.
        assert!(pts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn pseudo_end_points_handles_degenerate_input() {
        assert!(pseudo_end_points(&[], 9).is_empty());
        let a = uniform_pdf(0.0, 1.0, 10);
        let groups = vec![vec![(0.0, &a)]];
        assert!(pseudo_end_points(&groups, 9).is_empty());
        let groups = vec![vec![(1.0, &a)]];
        assert!(pseudo_end_points(&groups, 0).is_empty());
    }
}
