//! Small numeric helpers: error function, descriptive statistics and
//! confidence intervals.
//!
//! The paper relies on a handful of standard statistical building blocks:
//! the Gaussian cdf (for the truncated-Gaussian error model of §4.3), the
//! sample mean/variance (for fitting pdfs to repeated measurements, §7.1)
//! and 95 % confidence intervals (used in §4.4 to locate the plateau of the
//! accuracy-vs-`w` curve). None of the allowed dependency crates provide
//! these, so they are implemented here.

/// The error function `erf(x)`, computed with the Abramowitz & Stegun
/// formula 7.1.26 (maximum absolute error ≈ 1.5e-7, far below what the
/// decision-tree experiments can resolve).
///
/// ```
/// use udt_prob::stats::erf;
/// assert!((erf(0.0)).abs() < 1e-7);
/// assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
/// assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    // Constants of A&S 7.1.26.
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;

    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Cumulative distribution function of the standard normal distribution.
///
/// ```
/// use udt_prob::stats::std_normal_cdf;
/// assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-9);
/// assert!(std_normal_cdf(5.0) > 0.999999);
/// ```
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Cdf of a normal distribution with the given `mean` and `std_dev`.
pub fn normal_cdf(x: f64, mean: f64, std_dev: f64) -> f64 {
    if std_dev <= 0.0 {
        // Degenerate distribution: a step function at the mean.
        return if x < mean { 0.0 } else { 1.0 };
    }
    std_normal_cdf((x - mean) / std_dev)
}

/// Probability density of a normal distribution at `x`.
pub fn normal_pdf(x: f64, mean: f64, std_dev: f64) -> f64 {
    if std_dev <= 0.0 {
        return 0.0;
    }
    let z = (x - mean) / std_dev;
    (-0.5 * z * z).exp() / (std_dev * (2.0 * std::f64::consts::PI).sqrt())
}

/// Descriptive statistics of a sample, computed in a single pass with
/// Welford's algorithm for numerical stability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Sample mean. Zero when the sample is empty.
    pub mean: f64,
    /// Unbiased sample variance (divides by `n - 1`). Zero when fewer than
    /// two observations are present.
    pub variance: f64,
    /// Smallest observation (`+inf` when empty).
    pub min: f64,
    /// Largest observation (`-inf` when empty).
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics over `values`. Non-finite values are
    /// ignored.
    pub fn of(values: &[f64]) -> Self {
        let mut count = 0usize;
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            if !v.is_finite() {
                continue;
            }
            count += 1;
            let delta = v - mean;
            mean += delta / count as f64;
            m2 += delta * (v - mean);
            min = min.min(v);
            max = max.max(v);
        }
        let variance = if count > 1 {
            m2 / (count - 1) as f64
        } else {
            0.0
        };
        Summary {
            count,
            mean: if count == 0 { 0.0 } else { mean },
            variance,
            min,
            max,
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Width of the sample range (`max - min`), or zero if fewer than two
    /// observations are present.
    pub fn range(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.max - self.min
        }
    }
}

/// A symmetric confidence interval around a mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Centre of the interval (the sample mean).
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
}

impl ConfidenceInterval {
    /// 95 % normal-approximation confidence interval for the mean of
    /// `values`. With fewer than two observations the half-width is zero.
    ///
    /// The paper (§4.4) uses 95 % confidence intervals over repeated
    /// accuracy trials to find the plateau of the accuracy-vs-`w` curve;
    /// the normal approximation is adequate for the 10-fold × multi-trial
    /// sample sizes involved.
    pub fn ci95(values: &[f64]) -> Self {
        const Z95: f64 = 1.959964;
        let s = Summary::of(values);
        if s.count < 2 {
            return ConfidenceInterval {
                mean: s.mean,
                half_width: 0.0,
            };
        }
        let se = s.std_dev() / (s.count as f64).sqrt();
        ConfidenceInterval {
            mean: s.mean,
            half_width: Z95 * se,
        }
    }

    /// Lower bound of the interval.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether this interval overlaps `other`.
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lo() <= other.hi() && other.lo() <= self.hi()
    }
}

/// Binary logarithm that maps `0` to `0`, the convention used in entropy
/// computations (`0 · log₂ 0 = 0`).
#[inline]
pub fn xlog2x(p: f64) -> f64 {
    if p <= 0.0 {
        0.0
    } else {
        p * p.log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_matches_reference_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204999),
            (1.0, 0.8427008),
            (2.0, 0.9953223),
            (3.0, 0.9999779),
        ];
        for (x, expected) in cases {
            assert!((erf(x) - expected).abs() < 2e-6, "erf({x})");
            assert!((erf(-x) + expected).abs() < 2e-6, "erf(-{x})");
        }
    }

    #[test]
    fn normal_cdf_is_monotone_and_symmetric() {
        let mut prev = 0.0;
        for i in 0..100 {
            let x = -5.0 + 0.1 * i as f64;
            let c = normal_cdf(x, 0.0, 1.0);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        assert!((normal_cdf(1.0, 1.0, 2.0) - 0.5).abs() < 1e-9);
        let a = normal_cdf(-1.5, 0.0, 1.0);
        let b = normal_cdf(1.5, 0.0, 1.0);
        assert!((a + b - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_normal_cdf_is_a_step() {
        assert_eq!(normal_cdf(0.9, 1.0, 0.0), 0.0);
        assert_eq!(normal_cdf(1.0, 1.0, 0.0), 1.0);
        assert_eq!(normal_cdf(1.1, 1.0, 0.0), 1.0);
    }

    #[test]
    fn normal_pdf_peaks_at_mean() {
        let peak = normal_pdf(3.0, 3.0, 0.5);
        assert!(normal_pdf(2.5, 3.0, 0.5) < peak);
        assert!(normal_pdf(3.5, 3.0, 0.5) < peak);
        assert!((normal_pdf(2.0, 3.0, 0.5) - normal_pdf(4.0, 3.0, 0.5)).abs() < 1e-12);
    }

    #[test]
    fn summary_of_simple_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic sample is 32/7.
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-9);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.range(), 7.0);
    }

    #[test]
    fn summary_ignores_non_finite_and_handles_empty() {
        let s = Summary::of(&[f64::NAN, 1.0, f64::INFINITY, 3.0]);
        assert_eq!(s.count, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);

        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.variance, 0.0);
        assert_eq!(empty.range(), 0.0);
    }

    #[test]
    fn confidence_interval_behaviour() {
        let ci = ConfidenceInterval::ci95(&[10.0; 25]);
        assert_eq!(ci.mean, 10.0);
        assert_eq!(ci.half_width, 0.0);

        let values: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let ci = ConfidenceInterval::ci95(&values);
        assert!((ci.mean - 4.5).abs() < 1e-9);
        assert!(ci.half_width > 0.0);
        assert!(ci.lo() < ci.mean && ci.mean < ci.hi());

        let other = ConfidenceInterval {
            mean: ci.hi() + 0.1,
            half_width: 0.05,
        };
        assert!(!ci.overlaps(&other));
        let touching = ConfidenceInterval {
            mean: ci.hi() + 0.05,
            half_width: 0.1,
        };
        assert!(ci.overlaps(&touching));
    }

    #[test]
    fn xlog2x_convention() {
        assert_eq!(xlog2x(0.0), 0.0);
        assert_eq!(xlog2x(-0.1), 0.0);
        assert!((xlog2x(0.5) + 0.5).abs() < 1e-12);
        assert_eq!(xlog2x(1.0), 0.0);
    }
}
