//! # udt-prob — probability substrate for uncertain-data decision trees
//!
//! This crate provides the numerical probability machinery required by the
//! UDT family of algorithms from *"Decision Trees for Uncertain Data"*
//! (Tsang, Kao, Yip, Ho, Lee — ICDE 2009 / TKDE 2011):
//!
//! * [`SampledPdf`] — the paper's numerical pdf representation: `s` sample
//!   points over a bounded interval `[a, b]`, stored together with a
//!   cumulative mass array so that interval probabilities reduce to two
//!   binary searches and a subtraction (§4.2 of the paper).
//! * [`ErrorModel`] — the Gaussian and uniform error models used to inject
//!   controlled uncertainty into point-valued data sets (§4.3).
//! * [`Histogram`] — pdf construction from raw repeated measurements, as
//!   used for the "JapaneseVowel" data set (§4.3, §7.1).
//! * [`DiscreteDist`] — discrete distributions for uncertain categorical
//!   attributes (§7.2).
//! * [`quantile`] — percentile pseudo-end-points for unbounded pdfs (§7.3).
//! * [`stats`] — small numeric helpers (erf, mean/variance, confidence
//!   intervals) shared across the workspace.
//!
//! All structures are deterministic and `Send + Sync`; randomness only
//! enters through explicitly seeded [`rand`] RNGs in the callers.

// Negated float comparisons (`!(x > 0.0)`) are deliberate NaN guards
// throughout this crate: a NaN parameter must take the rejection branch.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod discrete;
pub mod error;
pub mod histogram;
pub mod model;
pub mod pdf;
pub mod quantile;
pub mod stats;

pub use discrete::DiscreteDist;
pub use error::ProbError;
pub use histogram::Histogram;
pub use model::ErrorModel;
pub use pdf::SampledPdf;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ProbError>;
