//! Histogram-based pdf construction from raw repeated measurements.
//!
//! §7.1 of the paper recommends approximating an attribute's pdf by the
//! histogram of its repeated measurements whenever raw measurements are
//! available (this is how the "JapaneseVowel" data set is handled in
//! §4.3). [`Histogram`] bins raw samples into a fixed number of equi-width
//! bins and exposes the result as a [`SampledPdf`] whose sample points are
//! the bin centres.

use serde::{Deserialize, Serialize};

use crate::error::ProbError;
use crate::pdf::SampledPdf;
use crate::Result;

/// An equi-width histogram over a set of raw measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<f64>,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins spanning the sample
    /// range. Non-finite samples are ignored.
    ///
    /// When all samples are identical the histogram degenerates to a single
    /// bin centred on that value.
    pub fn from_samples(samples: &[f64], bins: usize) -> Result<Self> {
        if bins == 0 {
            return Err(ProbError::InvalidParameter {
                name: "bins",
                value: 0.0,
            });
        }
        let finite: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return Err(ProbError::EmptyPdf);
        }
        let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if lo == hi {
            return Ok(Histogram {
                lo,
                hi,
                counts: vec![finite.len() as f64],
            });
        }
        let mut counts = vec![0.0; bins];
        let width = hi - lo;
        for v in finite {
            let mut idx = ((v - lo) / width * bins as f64) as usize;
            if idx >= bins {
                idx = bins - 1;
            }
            counts[idx] += 1.0;
        }
        Ok(Histogram { lo, hi, counts })
    }

    /// Lower bound of the histogram domain.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the histogram domain.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw (unnormalised) bin counts.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Total number of observations recorded.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Converts the histogram into a [`SampledPdf`] whose sample points are
    /// the bin centres and whose masses are the normalised bin counts.
    /// Empty bins are dropped (they carry no probability mass and would
    /// only slow down split-point search).
    pub fn to_pdf(&self) -> Result<SampledPdf> {
        if self.counts.len() == 1 {
            return SampledPdf::point(self.lo);
        }
        let bin_width = (self.hi - self.lo) / self.counts.len() as f64;
        let mut points = Vec::new();
        let mut mass = Vec::new();
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0.0 {
                points.push(self.lo + (i as f64 + 0.5) * bin_width);
                mass.push(c);
            }
        }
        SampledPdf::new(points, mass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_samples_into_ranges() {
        let samples = [0.0, 0.1, 0.2, 0.9, 1.0, 1.9, 2.0];
        let h = Histogram::from_samples(&samples, 4).unwrap();
        assert_eq!(h.bins(), 4);
        assert_eq!(h.total(), 7.0);
        assert_eq!(h.lo(), 0.0);
        assert_eq!(h.hi(), 2.0);
        // Bin width 0.5: [0,0.5) has 3, [0.5,1.0) has 1, [1.0,1.5) has 1,
        // [1.5,2.0] has 2 (the maximum is clamped into the last bin).
        assert_eq!(h.counts(), &[3.0, 1.0, 1.0, 2.0]);
    }

    #[test]
    fn histogram_pdf_preserves_total_mass_and_drops_empty_bins() {
        let samples = [0.0, 0.0, 0.0, 10.0];
        let h = Histogram::from_samples(&samples, 5).unwrap();
        let pdf = h.to_pdf().unwrap();
        // Only the first and last bins are occupied.
        assert_eq!(pdf.len(), 2);
        assert!((pdf.mass()[0] - 0.75).abs() < 1e-12);
        assert!((pdf.mass()[1] - 0.25).abs() < 1e-12);
        assert!((pdf.mass().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_samples_collapse_to_point() {
        let h = Histogram::from_samples(&[4.2, 4.2, 4.2], 10).unwrap();
        assert_eq!(h.bins(), 1);
        let pdf = h.to_pdf().unwrap();
        assert!(pdf.is_point());
        assert_eq!(pdf.mean(), 4.2);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(Histogram::from_samples(&[], 4).is_err());
        assert!(Histogram::from_samples(&[f64::NAN], 4).is_err());
        assert!(Histogram::from_samples(&[1.0], 0).is_err());
    }

    #[test]
    fn histogram_pdf_mean_approximates_sample_mean() {
        let samples: Vec<f64> = (0..1000).map(|i| (i as f64) / 100.0).collect();
        let h = Histogram::from_samples(&samples, 50).unwrap();
        let pdf = h.to_pdf().unwrap();
        let sample_mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((pdf.mean() - sample_mean).abs() < 0.1);
    }
}
