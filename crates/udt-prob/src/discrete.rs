//! Discrete distributions over categorical values.
//!
//! §7.2 of the paper extends the uncertainty model to categorical
//! attributes: the value of tuple `t_i` under categorical attribute `A_j`
//! is a discrete probability distribution `f_{i,j} : dom(A_j) → [0, 1]`
//! with `Σ_x f_{i,j}(x) = 1`. [`DiscreteDist`] represents such a
//! distribution over category indices `0..cardinality`.

use serde::{Deserialize, Serialize};

use crate::error::ProbError;
use crate::Result;

/// A discrete probability distribution over category indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscreteDist {
    /// `probs[v]` = probability that the attribute takes category `v`.
    probs: Vec<f64>,
}

impl DiscreteDist {
    /// Builds a distribution from (possibly unnormalised) category weights.
    pub fn new(weights: Vec<f64>) -> Result<Self> {
        if weights.is_empty() {
            return Err(ProbError::EmptySupport);
        }
        let mut total = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(ProbError::InvalidMass { index: i, value: w });
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(ProbError::ZeroMass { total });
        }
        Ok(DiscreteDist {
            probs: weights.into_iter().map(|w| w / total).collect(),
        })
    }

    /// A distribution with all mass on one category, out of `cardinality`
    /// categories.
    pub fn certain(category: usize, cardinality: usize) -> Result<Self> {
        if cardinality == 0 || category >= cardinality {
            return Err(ProbError::EmptySupport);
        }
        let mut weights = vec![0.0; cardinality];
        weights[category] = 1.0;
        // `new` would reject an all-zero vector; here exactly one entry is 1.
        DiscreteDist::new(weights)
    }

    /// A distribution built from raw categorical observations (e.g. the
    /// top-level-domain counts of §7.2's proxy-log example).
    pub fn from_observations(observations: &[usize], cardinality: usize) -> Result<Self> {
        if cardinality == 0 {
            return Err(ProbError::EmptySupport);
        }
        let mut weights = vec![0.0; cardinality];
        for &o in observations {
            if o >= cardinality {
                return Err(ProbError::InvalidMass {
                    index: o,
                    value: o as f64,
                });
            }
            weights[o] += 1.0;
        }
        DiscreteDist::new(weights)
    }

    /// Number of categories in the support (the attribute's cardinality).
    pub fn cardinality(&self) -> usize {
        self.probs.len()
    }

    /// Probability of category `v` (zero when out of range).
    pub fn prob(&self, v: usize) -> f64 {
        self.probs.get(v).copied().unwrap_or(0.0)
    }

    /// All category probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// The most likely category (lowest index wins ties).
    pub fn mode(&self) -> usize {
        let mut best = 0;
        let mut best_p = self.probs[0];
        for (i, &p) in self.probs.iter().enumerate().skip(1) {
            if p > best_p {
                best = i;
                best_p = p;
            }
        }
        best
    }

    /// Shannon entropy (base 2) of the distribution.
    pub fn entropy(&self) -> f64 {
        -self
            .probs
            .iter()
            .map(|&p| crate::stats::xlog2x(p))
            .sum::<f64>()
    }

    /// Whether the distribution is (numerically) certain about one value.
    pub fn is_certain(&self) -> bool {
        self.probs.iter().any(|&p| p >= 1.0 - 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalises() {
        let d = DiscreteDist::new(vec![2.0, 2.0, 4.0]).unwrap();
        assert_eq!(d.cardinality(), 3);
        assert_eq!(d.probs(), &[0.25, 0.25, 0.5]);
        assert_eq!(d.mode(), 2);
        assert!(!d.is_certain());
    }

    #[test]
    fn invalid_construction_is_rejected() {
        assert_eq!(
            DiscreteDist::new(vec![]).unwrap_err(),
            ProbError::EmptySupport
        );
        assert!(matches!(
            DiscreteDist::new(vec![1.0, -1.0]).unwrap_err(),
            ProbError::InvalidMass { index: 1, .. }
        ));
        assert!(matches!(
            DiscreteDist::new(vec![0.0, 0.0]).unwrap_err(),
            ProbError::ZeroMass { .. }
        ));
    }

    #[test]
    fn certain_distribution() {
        let d = DiscreteDist::certain(2, 4).unwrap();
        assert_eq!(d.prob(2), 1.0);
        assert_eq!(d.prob(0), 0.0);
        assert_eq!(d.prob(99), 0.0);
        assert!(d.is_certain());
        assert_eq!(d.entropy(), 0.0);
        assert!(DiscreteDist::certain(4, 4).is_err());
        assert!(DiscreteDist::certain(0, 0).is_err());
    }

    #[test]
    fn from_observations_counts_frequencies() {
        // The §7.2 flower-colour example: 80 % yellow, 20 % pink.
        let obs = [0, 0, 0, 0, 1];
        let d = DiscreteDist::from_observations(&obs, 2).unwrap();
        assert!((d.prob(0) - 0.8).abs() < 1e-12);
        assert!((d.prob(1) - 0.2).abs() < 1e-12);
        assert!(DiscreteDist::from_observations(&[3], 2).is_err());
    }

    #[test]
    fn entropy_is_maximal_for_uniform() {
        let u = DiscreteDist::new(vec![1.0; 4]).unwrap();
        assert!((u.entropy() - 2.0).abs() < 1e-12);
        let skew = DiscreteDist::new(vec![9.0, 1.0, 1.0, 1.0]).unwrap();
        assert!(skew.entropy() < u.entropy());
    }

    #[test]
    fn mode_breaks_ties_towards_lower_index() {
        let d = DiscreteDist::new(vec![1.0, 1.0]).unwrap();
        assert_eq!(d.mode(), 0);
    }
}
