//! Parametric error models used to synthesise uncertainty.
//!
//! §4.3 of the paper injects uncertainty into point-valued UCI data by
//! centring a pdf at each reported value `v`:
//!
//! * the pdf domain is `[v - w·|A|/2, v + w·|A|/2]`, where `|A|` is the
//!   width of the attribute's range over the whole data set and `w` a
//!   controlled parameter;
//! * the pdf is either **uniform** over that interval (quantisation noise)
//!   or a **Gaussian** with standard deviation `(b - a)/4`, chopped at the
//!   interval ends and renormalised (random measurement noise);
//! * the pdf is discretised to `s` sample points.
//!
//! [`ErrorModel`] captures both options and produces [`SampledPdf`]s.

use serde::{Deserialize, Serialize};

use crate::error::ProbError;
use crate::pdf::SampledPdf;
use crate::stats::normal_cdf;
use crate::Result;

/// The shape of the error distribution placed around a point value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorModel {
    /// Uniform density over the uncertainty interval — the paper's model
    /// for quantisation noise.
    Uniform,
    /// Truncated Gaussian centred at the point value with standard
    /// deviation equal to a quarter of the interval width — the paper's
    /// model for random measurement noise (§4.3, footnote 5).
    Gaussian,
}

impl ErrorModel {
    /// Human-readable name matching the paper's tables ("Gaussian" /
    /// "Uniform").
    pub fn name(&self) -> &'static str {
        match self {
            ErrorModel::Uniform => "Uniform",
            ErrorModel::Gaussian => "Gaussian",
        }
    }

    /// Builds the discretised pdf for a value `mean` whose uncertainty
    /// interval has total width `width`, using `s` sample points.
    ///
    /// * `width <= 0` or `s == 0` is rejected.
    /// * `s == 1` degenerates to a point pdf at `mean` (useful for testing
    ///   the limit behaviour).
    ///
    /// The `s` sample points are placed at the centres of `s` equal-width
    /// bins covering `[mean - width/2, mean + width/2]`, and each point
    /// carries the probability mass of its bin under the chosen model.
    /// This midpoint-mass construction keeps the discretised mean equal to
    /// `mean` for both models (both are symmetric about the centre).
    pub fn discretise(&self, mean: f64, width: f64, s: usize) -> Result<SampledPdf> {
        if !width.is_finite() || width <= 0.0 {
            return Err(ProbError::InvalidParameter {
                name: "width",
                value: width,
            });
        }
        if s == 0 {
            return Err(ProbError::InvalidParameter {
                name: "sample count",
                value: 0.0,
            });
        }
        if s == 1 {
            return SampledPdf::point(mean);
        }
        let lo = mean - width / 2.0;
        let hi = mean + width / 2.0;
        let bin = width / s as f64;
        let mut points = Vec::with_capacity(s);
        let mut mass = Vec::with_capacity(s);
        match self {
            ErrorModel::Uniform => {
                for i in 0..s {
                    points.push(lo + (i as f64 + 0.5) * bin);
                    mass.push(1.0);
                }
            }
            ErrorModel::Gaussian => {
                // σ = (b - a) / 4, per §4.3. The Gaussian is chopped at
                // [lo, hi]; SampledPdf::new renormalises, which implements
                // the paper's footnote 5 renormalisation.
                let sigma = width / 4.0;
                let mut prev = normal_cdf(lo, mean, sigma);
                for i in 0..s {
                    let right_edge = lo + (i as f64 + 1.0) * bin;
                    let right_edge = if i + 1 == s { hi } else { right_edge };
                    let c = normal_cdf(right_edge, mean, sigma);
                    points.push(lo + (i as f64 + 0.5) * bin);
                    mass.push((c - prev).max(0.0));
                    prev = c;
                }
            }
        }
        SampledPdf::new(points, mass)
    }

    /// The standard deviation implied by the model for an uncertainty
    /// interval of total width `width`.
    ///
    /// For the Gaussian model this is the paper's `width / 4`; for the
    /// uniform model it is the analytic `width / sqrt(12)`.
    pub fn implied_std_dev(&self, width: f64) -> f64 {
        match self {
            ErrorModel::Gaussian => width / 4.0,
            ErrorModel::Uniform => width / 12f64.sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_terms() {
        assert_eq!(ErrorModel::Gaussian.name(), "Gaussian");
        assert_eq!(ErrorModel::Uniform.name(), "Uniform");
    }

    #[test]
    fn uniform_discretisation_is_flat_and_centred() {
        let p = ErrorModel::Uniform.discretise(10.0, 4.0, 8).unwrap();
        assert_eq!(p.len(), 8);
        for &m in p.mass() {
            assert!((m - 0.125).abs() < 1e-12);
        }
        assert!((p.mean() - 10.0).abs() < 1e-9);
        assert!(p.lo() >= 8.0 && p.hi() <= 12.0);
    }

    #[test]
    fn gaussian_discretisation_is_unimodal_and_centred() {
        let p = ErrorModel::Gaussian.discretise(0.0, 8.0, 101).unwrap();
        assert_eq!(p.len(), 101);
        assert!((p.mean()).abs() < 1e-6);
        // Mass at the centre exceeds mass near the chopped tails.
        let centre = p.mass()[50];
        assert!(centre > p.mass()[0] * 3.0);
        assert!(centre > p.mass()[100] * 3.0);
        // Symmetry about the mean.
        assert!((p.mass()[10] - p.mass()[90]).abs() < 1e-9);
        // σ of the truncated, discretised Gaussian is close to width/4 = 2
        // (slightly smaller because of truncation at ±2σ).
        let sd = p.std_dev();
        assert!(sd > 1.5 && sd < 2.0, "sd = {sd}");
    }

    #[test]
    fn single_sample_point_degenerates_to_point_pdf() {
        let p = ErrorModel::Gaussian.discretise(3.0, 1.0, 1).unwrap();
        assert!(p.is_point());
        assert_eq!(p.mean(), 3.0);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(ErrorModel::Uniform.discretise(0.0, 0.0, 10).is_err());
        assert!(ErrorModel::Uniform.discretise(0.0, -1.0, 10).is_err());
        assert!(ErrorModel::Gaussian.discretise(0.0, 1.0, 0).is_err());
        assert!(ErrorModel::Gaussian.discretise(0.0, f64::NAN, 10).is_err());
    }

    #[test]
    fn implied_std_dev_formulas() {
        assert!((ErrorModel::Gaussian.implied_std_dev(8.0) - 2.0).abs() < 1e-12);
        assert!((ErrorModel::Uniform.implied_std_dev(12f64.sqrt()) - 1.0).abs() < 1e-12);
    }
}
