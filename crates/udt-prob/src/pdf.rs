//! The numerical pdf representation used by the UDT algorithms.
//!
//! A [`SampledPdf`] approximates a probability density function over a
//! bounded interval by `s` weighted sample points, exactly as described in
//! §3.2 of the paper: "it would be implemented numerically by storing a set
//! of `s` sample points `x ∈ [a, b]` with the associated value `f(x)`,
//! effectively approximating `f` by a discrete distribution with `s`
//! possible values". The cumulative mass array is stored alongside so that
//! interval probabilities — the dominant operation during tree construction
//! — are answered with two binary searches and a subtraction (§4.2).

use serde::{Deserialize, Serialize};

use crate::error::ProbError;
use crate::Result;

/// Relative tolerance used when comparing probability masses.
pub const MASS_EPSILON: f64 = 1e-9;

/// A bounded, discretised probability density function.
///
/// Invariants (enforced at construction):
/// * at least one sample point;
/// * sample points strictly increasing and finite;
/// * all masses finite and non-negative;
/// * masses sum to 1 (the constructor normalises).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampledPdf {
    points: Vec<f64>,
    mass: Vec<f64>,
    /// `cumulative[i]` = P[X <= points[i]].
    cumulative: Vec<f64>,
}

impl SampledPdf {
    /// Builds a pdf from sample points and (possibly unnormalised) masses.
    ///
    /// The masses are normalised to sum to one. Points must be strictly
    /// increasing.
    pub fn new(points: Vec<f64>, mass: Vec<f64>) -> Result<Self> {
        if points.is_empty() || points.len() != mass.len() {
            return Err(ProbError::EmptyPdf);
        }
        for (i, w) in points.windows(2).enumerate() {
            if !(w[0] < w[1]) || !w[0].is_finite() || !w[1].is_finite() {
                return Err(ProbError::UnsortedPoints { index: i + 1 });
            }
        }
        if !points[0].is_finite() {
            return Err(ProbError::UnsortedPoints { index: 0 });
        }
        let mut total = 0.0;
        for (i, &m) in mass.iter().enumerate() {
            if !m.is_finite() || m < 0.0 {
                return Err(ProbError::InvalidMass { index: i, value: m });
            }
            total += m;
        }
        if total <= 0.0 || !total.is_finite() {
            return Err(ProbError::ZeroMass { total });
        }
        let mass: Vec<f64> = mass.into_iter().map(|m| m / total).collect();
        let mut cumulative = Vec::with_capacity(mass.len());
        let mut acc = 0.0;
        for &m in &mass {
            acc += m;
            cumulative.push(acc);
        }
        // Guard against floating point drift: pin the last entry to 1.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Ok(SampledPdf {
            points,
            mass,
            cumulative,
        })
    }

    /// Builds a pdf giving equal mass to every sample value. Duplicate
    /// values are merged (their masses accumulate); values are sorted.
    ///
    /// This is the construction used for raw repeated measurements such as
    /// the "JapaneseVowel" attribute samples.
    pub fn from_raw_samples(samples: &[f64]) -> Result<Self> {
        if samples.is_empty() {
            return Err(ProbError::EmptyPdf);
        }
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return Err(ProbError::EmptyPdf);
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let mut points = Vec::with_capacity(sorted.len());
        let mut mass = Vec::with_capacity(sorted.len());
        for v in sorted {
            match points.last() {
                Some(&last) if last == v => {
                    *mass.last_mut().expect("mass parallel to points") += 1.0;
                }
                _ => {
                    points.push(v);
                    mass.push(1.0);
                }
            }
        }
        SampledPdf::new(points, mass)
    }

    /// A degenerate pdf that places all mass on a single point value.
    pub fn point(value: f64) -> Result<Self> {
        SampledPdf::new(vec![value], vec![1.0])
    }

    /// Number of sample points (`s` in the paper).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether this pdf is a degenerate point value.
    pub fn is_point(&self) -> bool {
        self.points.len() == 1
    }

    /// `false` — a valid pdf always has at least one sample point; provided
    /// for API symmetry with collection types.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The sample points, strictly increasing.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// The normalised probability masses, parallel to [`points`](Self::points).
    pub fn mass(&self) -> &[f64] {
        &self.mass
    }

    /// The cumulative masses, parallel to [`points`](Self::points).
    pub fn cumulative(&self) -> &[f64] {
        &self.cumulative
    }

    /// Lower end of the pdf domain (`a` in the paper).
    pub fn lo(&self) -> f64 {
        self.points[0]
    }

    /// Upper end of the pdf domain (`b` in the paper).
    pub fn hi(&self) -> f64 {
        *self.points.last().expect("non-empty")
    }

    /// Iterates over `(point, mass)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.points.iter().copied().zip(self.mass.iter().copied())
    }

    /// Expected value `∫ x f(x) dx` of the discretised pdf.
    pub fn mean(&self) -> f64 {
        self.iter().map(|(x, m)| x * m).sum()
    }

    /// Variance of the discretised pdf.
    pub fn variance(&self) -> f64 {
        let mu = self.mean();
        self.iter().map(|(x, m)| m * (x - mu) * (x - mu)).sum()
    }

    /// Standard deviation of the discretised pdf.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// `P[X <= x]`, the "left probability" of a split at `x`.
    ///
    /// Computed as the cumulative mass of the last sample point `<= x`
    /// (binary search), which matches the paper's convention that a tuple
    /// passes the test `v <= z` when its value is at most the split point.
    pub fn prob_le(&self, x: f64) -> f64 {
        match self
            .points
            .binary_search_by(|p| p.partial_cmp(&x).expect("finite"))
        {
            Ok(mut i) => {
                // Step over duplicates is unnecessary (points are strictly
                // increasing) but binary_search may land on any equal
                // element in general; with strict ordering `i` is unique.
                while i + 1 < self.points.len() && self.points[i + 1] <= x {
                    i += 1;
                }
                self.cumulative[i]
            }
            Err(0) => 0.0,
            Err(i) => self.cumulative[i - 1],
        }
    }

    /// `P[X > x]`, the "right probability" of a split at `x`.
    pub fn prob_gt(&self, x: f64) -> f64 {
        (1.0 - self.prob_le(x)).max(0.0)
    }

    /// Probability mass inside the half-open interval `(lo, hi]`.
    ///
    /// The half-open convention matches the paper's interval decomposition
    /// `(q_i, q_{i+1}]` (§5.1) so that adjacent intervals never double
    /// count a sample point.
    pub fn prob_in(&self, lo: f64, hi: f64) -> Result<f64> {
        if !(lo <= hi) || !lo.is_finite() || !hi.is_finite() {
            return Err(ProbError::InvalidInterval { lo, hi });
        }
        Ok((self.prob_le(hi) - self.prob_le(lo)).max(0.0))
    }

    /// Splits this pdf at `z` into a left part (mass at points `<= z`) and a
    /// right part (mass at points `> z`), each renormalised.
    ///
    /// Returns `(p_left, left_pdf, right_pdf)` where `p_left` is the
    /// probability mass that flows left. Either pdf is `None` when its side
    /// receives no mass. This is exactly the *fractional tuple* operation of
    /// §3.2 / §4.2: the child pdfs are the parent pdf restricted to the
    /// sub-domain and scaled by `1 / w`.
    pub fn split_at(&self, z: f64) -> (f64, Option<SampledPdf>, Option<SampledPdf>) {
        self.split_at_with(z, self.prob_le(z))
    }

    /// Like [`split_at`](Self::split_at) but reuses an already-computed
    /// `p_left`, which **must** equal `self.prob_le(z)`. Callers that have
    /// just evaluated the CDF (e.g. the batch classification engine's
    /// one-sided fast-path check) avoid a second binary search this way;
    /// the arithmetic is identical to `split_at`.
    pub fn split_at_with(
        &self,
        z: f64,
        p_left: f64,
    ) -> (f64, Option<SampledPdf>, Option<SampledPdf>) {
        debug_assert_eq!(p_left.to_bits(), self.prob_le(z).to_bits());
        if p_left <= MASS_EPSILON {
            return (0.0, None, Some(self.clone()));
        }
        if p_left >= 1.0 - MASS_EPSILON {
            return (1.0, Some(self.clone()), None);
        }
        let mut left_points = Vec::new();
        let mut left_mass = Vec::new();
        let mut right_points = Vec::new();
        let mut right_mass = Vec::new();
        for (x, m) in self.iter() {
            if m <= 0.0 {
                continue;
            }
            if x <= z {
                left_points.push(x);
                left_mass.push(m);
            } else {
                right_points.push(x);
                right_mass.push(m);
            }
        }
        let left = SampledPdf::new(left_points, left_mass).ok();
        let right = SampledPdf::new(right_points, right_mass).ok();
        (p_left, left, right)
    }

    /// Restricts the pdf to `[lo, hi]` and renormalises. Returns `None`
    /// when no mass falls inside the interval.
    pub fn truncate(&self, lo: f64, hi: f64) -> Option<SampledPdf> {
        let mut points = Vec::new();
        let mut mass = Vec::new();
        for (x, m) in self.iter() {
            if x >= lo && x <= hi && m > 0.0 {
                points.push(x);
                mass.push(m);
            }
        }
        SampledPdf::new(points, mass).ok()
    }

    /// Returns a new pdf whose sample points are shifted by `delta`.
    pub fn shift(&self, delta: f64) -> SampledPdf {
        let points = self.points.iter().map(|p| p + delta).collect();
        SampledPdf::new(points, self.mass.clone()).expect("shift preserves validity")
    }

    /// Mixes two pdfs with the given non-negative weights, producing the
    /// weighted mixture distribution. Used when re-assembling "guess"
    /// distributions for missing values (§2) and in tests.
    pub fn mixture(parts: &[(f64, &SampledPdf)]) -> Result<SampledPdf> {
        let mut pairs: Vec<(f64, f64)> = Vec::new();
        for &(w, pdf) in parts {
            if !w.is_finite() || w < 0.0 {
                return Err(ProbError::InvalidParameter {
                    name: "mixture weight",
                    value: w,
                });
            }
            for (x, m) in pdf.iter() {
                pairs.push((x, w * m));
            }
        }
        if pairs.is_empty() {
            return Err(ProbError::EmptyPdf);
        }
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let mut points = Vec::with_capacity(pairs.len());
        let mut mass = Vec::with_capacity(pairs.len());
        for (x, m) in pairs {
            match points.last() {
                Some(&last) if last == x => *mass.last_mut().expect("parallel") += m,
                _ => {
                    points.push(x);
                    mass.push(m);
                }
            }
        }
        SampledPdf::new(points, mass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pdf(points: &[f64], mass: &[f64]) -> SampledPdf {
        SampledPdf::new(points.to_vec(), mass.to_vec()).expect("valid pdf")
    }

    #[test]
    fn construction_normalises_mass() {
        let p = pdf(&[1.0, 2.0, 3.0], &[2.0, 2.0, 4.0]);
        assert_eq!(p.mass(), &[0.25, 0.25, 0.5]);
        assert_eq!(p.cumulative(), &[0.25, 0.5, 1.0]);
        assert_eq!(p.lo(), 1.0);
        assert_eq!(p.hi(), 3.0);
        assert_eq!(p.len(), 3);
        assert!(!p.is_point());
    }

    #[test]
    fn construction_rejects_invalid_input() {
        assert_eq!(
            SampledPdf::new(vec![], vec![]).unwrap_err(),
            ProbError::EmptyPdf
        );
        assert_eq!(
            SampledPdf::new(vec![1.0], vec![1.0, 2.0]).unwrap_err(),
            ProbError::EmptyPdf
        );
        assert!(matches!(
            SampledPdf::new(vec![1.0, 1.0], vec![0.5, 0.5]).unwrap_err(),
            ProbError::UnsortedPoints { index: 1 }
        ));
        assert!(matches!(
            SampledPdf::new(vec![2.0, 1.0], vec![0.5, 0.5]).unwrap_err(),
            ProbError::UnsortedPoints { .. }
        ));
        assert!(matches!(
            SampledPdf::new(vec![1.0, 2.0], vec![0.5, -0.5]).unwrap_err(),
            ProbError::InvalidMass { index: 1, .. }
        ));
        assert!(matches!(
            SampledPdf::new(vec![1.0, 2.0], vec![0.0, 0.0]).unwrap_err(),
            ProbError::ZeroMass { .. }
        ));
    }

    #[test]
    fn from_raw_samples_merges_duplicates() {
        let p = SampledPdf::from_raw_samples(&[3.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(p.points(), &[1.0, 2.0, 3.0]);
        assert_eq!(p.mass(), &[0.25, 0.25, 0.5]);
    }

    #[test]
    fn point_pdf_behaviour() {
        let p = SampledPdf::point(5.0).unwrap();
        assert!(p.is_point());
        assert_eq!(p.mean(), 5.0);
        assert_eq!(p.variance(), 0.0);
        assert_eq!(p.prob_le(4.999), 0.0);
        assert_eq!(p.prob_le(5.0), 1.0);
    }

    #[test]
    fn mean_and_variance_match_hand_computation() {
        // Tuple 3 of Table 1 in the paper: values -1, +1, +10 with
        // probabilities 5/8, 1/8, 2/8; expected value +2.0.
        let p = pdf(&[-1.0, 1.0, 10.0], &[5.0, 1.0, 2.0]);
        assert!((p.mean() - 2.0).abs() < 1e-12);
        let var = 5.0 / 8.0 * 9.0 + 1.0 / 8.0 * 1.0 + 2.0 / 8.0 * 64.0;
        assert!((p.variance() - var).abs() < 1e-9);
    }

    #[test]
    fn prob_le_at_and_between_points() {
        let p = pdf(&[0.0, 1.0, 2.0, 3.0], &[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(p.prob_le(-0.5), 0.0);
        assert!((p.prob_le(0.0) - 0.1).abs() < 1e-12);
        assert!((p.prob_le(0.5) - 0.1).abs() < 1e-12);
        assert!((p.prob_le(1.0) - 0.3).abs() < 1e-12);
        assert!((p.prob_le(2.9) - 0.6).abs() < 1e-12);
        assert_eq!(p.prob_le(3.0), 1.0);
        assert_eq!(p.prob_le(100.0), 1.0);
        assert!((p.prob_gt(1.0) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn prob_in_half_open_intervals_partition_mass() {
        let p = pdf(&[0.0, 1.0, 2.0, 3.0], &[0.1, 0.2, 0.3, 0.4]);
        let a = p.prob_in(-1.0, 1.0).unwrap();
        let b = p.prob_in(1.0, 2.5).unwrap();
        let c = p.prob_in(2.5, 3.0).unwrap();
        assert!((a + b + c - 1.0).abs() < 1e-12);
        assert!(p.prob_in(5.0, 1.0).is_err());
    }

    #[test]
    fn split_at_produces_renormalised_children() {
        // Fig. 1 of the paper: pdf over [-2.5, 2], split point -1,
        // p_left = 0.3, p_right = 0.7.
        let p = pdf(
            &[-2.5, -2.0, -1.0, 0.0, 1.0, 2.0],
            &[0.1, 0.1, 0.1, 0.2, 0.3, 0.2],
        );
        let (pl, left, right) = p.split_at(-1.0);
        assert!((pl - 0.3).abs() < 1e-12);
        let left = left.unwrap();
        let right = right.unwrap();
        // Children are renormalised.
        assert!((left.mass().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((right.mass().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(left.hi(), -1.0);
        assert_eq!(right.lo(), 0.0);
        // The renormalised left mass is the original conditional mass.
        assert!((left.prob_le(-2.0) - (0.2 / 0.3)).abs() < 1e-12);
    }

    #[test]
    fn split_outside_domain_returns_single_side() {
        let p = pdf(&[1.0, 2.0], &[0.5, 0.5]);
        let (pl, left, right) = p.split_at(0.0);
        assert_eq!(pl, 0.0);
        assert!(left.is_none());
        assert_eq!(right.unwrap(), p);

        let (pl, left, right) = p.split_at(2.0);
        assert_eq!(pl, 1.0);
        assert_eq!(left.unwrap(), p);
        assert!(right.is_none());
    }

    #[test]
    fn truncate_restricts_and_renormalises() {
        let p = pdf(&[0.0, 1.0, 2.0, 3.0], &[0.25, 0.25, 0.25, 0.25]);
        let t = p.truncate(0.5, 2.5).unwrap();
        assert_eq!(t.points(), &[1.0, 2.0]);
        assert_eq!(t.mass(), &[0.5, 0.5]);
        assert!(p.truncate(10.0, 11.0).is_none());
    }

    #[test]
    fn shift_moves_domain() {
        let p = pdf(&[0.0, 1.0], &[0.5, 0.5]);
        let s = p.shift(10.0);
        assert_eq!(s.points(), &[10.0, 11.0]);
        assert_eq!(s.mass(), p.mass());
    }

    #[test]
    fn mixture_combines_and_normalises() {
        let a = pdf(&[0.0, 1.0], &[0.5, 0.5]);
        let b = pdf(&[1.0, 2.0], &[0.5, 0.5]);
        let m = SampledPdf::mixture(&[(1.0, &a), (1.0, &b)]).unwrap();
        assert_eq!(m.points(), &[0.0, 1.0, 2.0]);
        assert_eq!(m.mass(), &[0.25, 0.5, 0.25]);
        assert!(SampledPdf::mixture(&[(-1.0, &a)]).is_err());
        assert!(SampledPdf::mixture(&[]).is_err());
    }
}
