//! Randomized property tests for the probability substrate.
//!
//! The build environment is offline, so instead of `proptest` these use a
//! seeded ChaCha8 generator and explicit case loops; every case is fully
//! deterministic and reproducible from the seed. The invariants checked
//! are the ones the decision-tree algorithms rely on: normalisation, cdf
//! monotonicity, consistency between splitting and interval
//! probabilities, and mean preservation under mixtures.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use udt_prob::model::ErrorModel;
use udt_prob::pdf::SampledPdf;
use udt_prob::quantile::quantile;
use udt_prob::stats::Summary;

const CASES: usize = 64;

/// Generates a valid pdf with 1..=64 samples over roughly [-1000, 1000].
fn random_pdf(rng: &mut ChaCha8Rng) -> SampledPdf {
    let n = rng.gen_range(1..=64usize);
    let mut points: Vec<f64> = (0..n).map(|_| rng.gen_range(-1000.0..1000.0)).collect();
    points.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    points.dedup();
    let mass: Vec<f64> = points.iter().map(|_| rng.gen_range(0.001..10.0)).collect();
    SampledPdf::new(points, mass).expect("generator builds valid pdfs")
}

#[test]
fn mass_is_normalised() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA0);
    for _ in 0..CASES {
        let pdf = random_pdf(&mut rng);
        let total: f64 = pdf.mass().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!((pdf.cumulative().last().unwrap() - 1.0).abs() < 1e-12);
    }
}

#[test]
fn cdf_is_monotone() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA1);
    for _ in 0..CASES {
        let pdf = random_pdf(&mut rng);
        let mut xs: Vec<f64> = (0..rng.gen_range(1..20usize))
            .map(|_| rng.gen_range(-1100.0..1100.0))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut prev = 0.0;
        for x in xs {
            let c = pdf.prob_le(x);
            assert!(c >= prev - 1e-12);
            assert!((0.0..=1.0 + 1e-12).contains(&c));
            prev = c;
        }
    }
}

#[test]
fn split_mass_is_conserved() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA2);
    for _ in 0..CASES {
        let pdf = random_pdf(&mut rng);
        let z = rng.gen_range(-1100.0..1100.0);
        let (p_left, left, right) = pdf.split_at(z);
        assert!((0.0..=1.0).contains(&p_left));
        // Weighted child masses reconstruct the parent probability of any
        // query point.
        let probe = pdf.points()[pdf.len() / 2];
        let reconstructed = p_left * left.as_ref().map(|l| l.prob_le(probe)).unwrap_or(0.0)
            + (1.0 - p_left) * right.as_ref().map(|r| r.prob_le(probe)).unwrap_or(0.0);
        assert!((reconstructed - pdf.prob_le(probe)).abs() < 1e-9);
        // Weighted child means reconstruct the parent mean.
        if let (Some(l), Some(r)) = (&left, &right) {
            let mean = p_left * l.mean() + (1.0 - p_left) * r.mean();
            assert!((mean - pdf.mean()).abs() < 1e-6);
        }
    }
}

#[test]
fn interval_probabilities_partition_unity() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA3);
    for _ in 0..CASES {
        let pdf = random_pdf(&mut rng);
        let mut cuts: Vec<f64> = (0..rng.gen_range(0..8usize))
            .map(|_| rng.gen_range(-1100.0..1100.0))
            .collect();
        cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let lo = pdf.lo() - 1.0;
        let hi = pdf.hi() + 1.0;
        let mut boundaries = vec![lo];
        boundaries.extend(cuts.into_iter().filter(|&c| c > lo && c < hi));
        boundaries.push(hi);
        let mut total = 0.0;
        for w in boundaries.windows(2) {
            total += pdf.prob_in(w[0], w[1]).unwrap();
        }
        assert!((total - 1.0).abs() < 1e-9);
    }
}

#[test]
fn quantile_inverts_cdf() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA4);
    for _ in 0..CASES {
        let pdf = random_pdf(&mut rng);
        let q = rng.gen_range(0.0..=1.0);
        let x = quantile(&pdf, q);
        // P[X <= x] >= q by definition of the quantile.
        assert!(pdf.prob_le(x) + 1e-12 >= q.min(1.0));
        // x is within the pdf domain.
        assert!(x >= pdf.lo() && x <= pdf.hi());
    }
}

#[test]
fn error_models_centre_on_the_mean() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA5);
    for _ in 0..CASES {
        let mean = rng.gen_range(-100.0..100.0);
        let width = rng.gen_range(0.01..50.0);
        let s = rng.gen_range(2..128usize);
        let model = if rng.gen::<bool>() {
            ErrorModel::Gaussian
        } else {
            ErrorModel::Uniform
        };
        let pdf = model.discretise(mean, width, s).unwrap();
        assert_eq!(pdf.len(), s);
        assert!((pdf.mean() - mean).abs() < width * 1e-6 + 1e-9);
        assert!(pdf.lo() >= mean - width / 2.0 - 1e-9);
        assert!(pdf.hi() <= mean + width / 2.0 + 1e-9);
    }
}

#[test]
fn summary_mean_within_min_max() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA6);
    for _ in 0..CASES {
        let values: Vec<f64> = (0..rng.gen_range(1..200usize))
            .map(|_| rng.gen_range(-1e6..1e6))
            .collect();
        let s = Summary::of(&values);
        assert!(s.mean >= s.min - 1e-9);
        assert!(s.mean <= s.max + 1e-9);
        assert!(s.variance >= 0.0);
    }
}

#[test]
fn raw_sample_pdf_mean_matches_sample_mean() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA7);
    for _ in 0..CASES {
        let values: Vec<f64> = (0..rng.gen_range(1..100usize))
            .map(|_| rng.gen_range(-1e3..1e3))
            .collect();
        let pdf = SampledPdf::from_raw_samples(&values).unwrap();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((pdf.mean() - mean).abs() < 1e-6);
    }
}
