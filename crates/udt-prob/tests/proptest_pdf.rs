//! Property-based tests for the probability substrate.
//!
//! These check the structural invariants that the decision-tree algorithms
//! rely on: normalisation, cdf monotonicity, consistency between splitting
//! and interval probabilities, and mean preservation under mixtures.

use proptest::prelude::*;
use udt_prob::model::ErrorModel;
use udt_prob::pdf::SampledPdf;
use udt_prob::quantile::quantile;
use udt_prob::stats::Summary;

/// Strategy producing a valid (points, masses) pair with 1..=64 samples.
fn pdf_strategy() -> impl Strategy<Value = SampledPdf> {
    (1usize..64)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(-1000.0f64..1000.0, n),
                proptest::collection::vec(0.001f64..10.0, n),
            )
        })
        .prop_map(|(mut points, mass)| {
            points.sort_by(|a, b| a.partial_cmp(b).unwrap());
            points.dedup();
            let mass = mass[..points.len()].to_vec();
            SampledPdf::new(points, mass).expect("strategy builds valid pdfs")
        })
}

proptest! {
    #[test]
    fn mass_is_normalised(pdf in pdf_strategy()) {
        let total: f64 = pdf.mass().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!((pdf.cumulative().last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone(pdf in pdf_strategy(), xs in proptest::collection::vec(-1100.0f64..1100.0, 1..20)) {
        let mut xs = xs;
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for x in xs {
            let c = pdf.prob_le(x);
            prop_assert!(c >= prev - 1e-12);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
            prev = c;
        }
    }

    #[test]
    fn split_mass_is_conserved(pdf in pdf_strategy(), z in -1100.0f64..1100.0) {
        let (p_left, left, right) = pdf.split_at(z);
        prop_assert!((0.0..=1.0).contains(&p_left));
        // Weighted child masses reconstruct the parent probability of any
        // query point.
        let probe = pdf.points()[pdf.len() / 2];
        let reconstructed = p_left
            * left.as_ref().map(|l| l.prob_le(probe)).unwrap_or(0.0)
            + (1.0 - p_left)
                * right.as_ref().map(|r| r.prob_le(probe)).unwrap_or(0.0);
        prop_assert!((reconstructed - pdf.prob_le(probe)).abs() < 1e-9);
        // Weighted child means reconstruct the parent mean.
        if let (Some(l), Some(r)) = (&left, &right) {
            let mean = p_left * l.mean() + (1.0 - p_left) * r.mean();
            prop_assert!((mean - pdf.mean()).abs() < 1e-6);
        }
    }

    #[test]
    fn interval_probabilities_partition_unity(pdf in pdf_strategy(), cuts in proptest::collection::vec(-1100.0f64..1100.0, 0..8)) {
        let mut cuts = cuts;
        cuts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let lo = pdf.lo() - 1.0;
        let hi = pdf.hi() + 1.0;
        let mut boundaries = vec![lo];
        boundaries.extend(cuts.into_iter().filter(|&c| c > lo && c < hi));
        boundaries.push(hi);
        let mut total = 0.0;
        for w in boundaries.windows(2) {
            total += pdf.prob_in(w[0], w[1]).unwrap();
        }
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_inverts_cdf(pdf in pdf_strategy(), q in 0.0f64..=1.0) {
        let x = quantile(&pdf, q);
        // P[X <= x] >= q by definition of the quantile.
        prop_assert!(pdf.prob_le(x) + 1e-12 >= q.min(1.0));
        // x is within the pdf domain.
        prop_assert!(x >= pdf.lo() && x <= pdf.hi());
    }

    #[test]
    fn error_models_centre_on_the_mean(
        mean in -100.0f64..100.0,
        width in 0.01f64..50.0,
        s in 2usize..128,
        gaussian in proptest::bool::ANY,
    ) {
        let model = if gaussian { ErrorModel::Gaussian } else { ErrorModel::Uniform };
        let pdf = model.discretise(mean, width, s).unwrap();
        prop_assert_eq!(pdf.len(), s);
        prop_assert!((pdf.mean() - mean).abs() < width * 1e-6 + 1e-9);
        prop_assert!(pdf.lo() >= mean - width / 2.0 - 1e-9);
        prop_assert!(pdf.hi() <= mean + width / 2.0 + 1e-9);
    }

    #[test]
    fn summary_mean_within_min_max(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(&values);
        prop_assert!(s.mean >= s.min - 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.variance >= 0.0);
    }

    #[test]
    fn raw_sample_pdf_mean_matches_sample_mean(values in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
        let pdf = SampledPdf::from_raw_samples(&values).unwrap();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((pdf.mean() - mean).abs() < 1e-6);
    }
}
