//! Cross-validated accuracy.
//!
//! The paper (§4.3) uses the data sets' provided train/test split when one
//! exists and 10-fold cross validation otherwise. [`cross_validate`] runs
//! the folds (optionally in parallel with scoped threads) and aggregates
//! accuracy, tree statistics and split-search counters.

use serde::{Deserialize, Serialize};
use udt_data::split::k_folds;
use udt_data::Dataset;
use udt_tree::{SearchStats, TreeBuilder, UdtConfig};

use crate::accuracy::{evaluate, EvalResult};

/// Aggregated result of a cross-validation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrossValResult {
    /// Number of folds run.
    pub folds: usize,
    /// Per-fold accuracies.
    pub fold_accuracies: Vec<f64>,
    /// Pooled evaluation over all folds.
    pub pooled: EvalResult,
    /// Summed split-search statistics over all folds.
    pub stats: SearchStats,
    /// Total wall-clock seconds spent building trees (excludes evaluation).
    pub build_seconds: f64,
    /// Mean tree size over the folds.
    pub mean_tree_size: f64,
}

impl CrossValResult {
    /// Mean of the per-fold accuracies.
    pub fn mean_accuracy(&self) -> f64 {
        if self.fold_accuracies.is_empty() {
            return 0.0;
        }
        self.fold_accuracies.iter().sum::<f64>() / self.fold_accuracies.len() as f64
    }
}

/// Runs `k`-fold cross validation of `config` on `data`.
///
/// `parallel` runs folds on scoped worker threads (one per fold, capped by
/// the number of folds); results are identical to the sequential path
/// because each fold is fully independent and seeded by the fold index.
pub fn cross_validate(
    data: &Dataset,
    config: &UdtConfig,
    k: usize,
    seed: u64,
    parallel: bool,
) -> udt_data::Result<CrossValResult> {
    let folds = k_folds(data, k, seed)?;
    let n_classes = data.n_classes();
    let run_fold = |fold: &udt_data::split::TrainTest| -> (EvalResult, SearchStats, f64, usize) {
        let report = TreeBuilder::new(config.clone())
            .build(&fold.train)
            .expect("fold training sets are non-empty by construction");
        let eval = evaluate(&report.tree, &fold.test);
        (
            eval,
            report.stats,
            report.elapsed.as_secs_f64(),
            report.tree.size(),
        )
    };

    let fold_outputs: Vec<(EvalResult, SearchStats, f64, usize)> = if parallel {
        std::thread::scope(|scope| {
            let handles: Vec<_> = folds
                .iter()
                .map(|fold| scope.spawn(|| run_fold(fold)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fold worker does not panic"))
                .collect()
        })
    } else {
        folds.iter().map(run_fold).collect()
    };

    let mut pooled = EvalResult {
        n: 0,
        correct: 0,
        confusion: vec![vec![0; n_classes]; n_classes],
    };
    let mut stats = SearchStats::default();
    let mut build_seconds = 0.0;
    let mut fold_accuracies = Vec::with_capacity(fold_outputs.len());
    let mut total_size = 0usize;
    for (eval, fold_stats, seconds, size) in &fold_outputs {
        fold_accuracies.push(eval.accuracy());
        pooled.merge(eval);
        stats.merge(fold_stats);
        build_seconds += seconds;
        total_size += size;
    }
    Ok(CrossValResult {
        folds: fold_outputs.len(),
        fold_accuracies,
        pooled,
        stats,
        build_seconds,
        mean_tree_size: total_size as f64 / fold_outputs.len().max(1) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use udt_data::Tuple;
    use udt_tree::Algorithm;

    fn dataset(n: usize) -> Dataset {
        let mut ds = Dataset::numerical(2, 2);
        for i in 0..n {
            let class = i % 2;
            let x = class as f64 * 8.0 + (i % 5) as f64 * 0.2;
            let y = (i % 7) as f64;
            ds.push(Tuple::from_points(&[x, y], class)).unwrap();
        }
        ds
    }

    #[test]
    fn cross_validation_covers_every_tuple_once() {
        let ds = dataset(50);
        let cv = cross_validate(&ds, &UdtConfig::new(Algorithm::UdtEs), 5, 7, false).unwrap();
        assert_eq!(cv.folds, 5);
        assert_eq!(cv.pooled.n, 50);
        assert_eq!(cv.fold_accuracies.len(), 5);
        // Separable data: near-perfect held-out accuracy.
        assert!(cv.mean_accuracy() > 0.9, "accuracy {}", cv.mean_accuracy());
        assert!(cv.mean_tree_size >= 3.0);
        assert!(cv.stats.nodes_searched >= 5);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let ds = dataset(40);
        let config = UdtConfig::new(Algorithm::UdtGp);
        let seq = cross_validate(&ds, &config, 4, 11, false).unwrap();
        let par = cross_validate(&ds, &config, 4, 11, true).unwrap();
        assert_eq!(seq.fold_accuracies, par.fold_accuracies);
        assert_eq!(seq.pooled, par.pooled);
        assert_eq!(
            seq.stats.entropy_like_calculations(),
            par.stats.entropy_like_calculations()
        );
    }

    #[test]
    fn invalid_fold_counts_are_rejected() {
        let ds = dataset(10);
        assert!(cross_validate(&ds, &UdtConfig::new(Algorithm::Avg), 1, 0, false).is_err());
        assert!(cross_validate(&ds, &UdtConfig::new(Algorithm::Avg), 11, 0, false).is_err());
    }
}
