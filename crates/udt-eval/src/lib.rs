//! # udt-eval — evaluation harness for the UDT reproduction
//!
//! This crate turns the building blocks of `udt-prob`, `udt-data` and
//! `udt-tree` into the experiments reported in the paper:
//!
//! * [`accuracy`] — accuracy metrics and confusion matrices;
//! * [`crossval`] — k-fold cross-validated accuracy of a configuration;
//! * [`experiments`] — one module per paper table/figure, each producing a
//!   serialisable result structure and a plain-text table;
//! * [`report`] — text-table rendering shared by the experiment binaries.
//!
//! Every experiment is available both as a library function (used by the
//! integration tests) and as a binary under `src/bin/` (used to regenerate
//! the paper's tables and figures; see `EXPERIMENTS.md` at the workspace
//! root).

// Parallel-slice index loops mirror the paper's subscript notation and
// often index several arrays at once; iterator rewrites obscure that.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod accuracy;
pub mod crossval;
pub mod experiments;
pub mod report;

pub use accuracy::{evaluate, EvalResult};
pub use crossval::{cross_validate, CrossValResult};
