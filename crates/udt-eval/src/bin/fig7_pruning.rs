//! Regenerates Fig. 7 (pruning effectiveness: entropy-like calculations per
//! algorithm, as a fraction of exhaustive UDT).

use std::path::Path;

use udt_eval::experiments::efficiency;
use udt_eval::experiments::settings::Settings;
use udt_eval::report::write_json;

fn main() {
    let settings = Settings::from_env();
    eprintln!(
        "running Fig. 7 at scale {} with s = {}…",
        settings.scale, settings.s
    );
    let rows = efficiency::run(&settings, &[]).expect("fig 7 experiment");
    println!("{}", efficiency::render_pruning(&rows));
    match write_json(Path::new("results/fig7_pruning.json"), &rows) {
        Ok(_) => println!("(results written to results/fig7_pruning.json)"),
        Err(e) => eprintln!("warning: could not write JSON results: {e}"),
    }
}
