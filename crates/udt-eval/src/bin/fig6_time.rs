//! Regenerates Fig. 6 (execution time of AVG, UDT, UDT-BP, UDT-LP, UDT-GP,
//! UDT-ES on every data set at the baseline uncertainty setting).

use std::path::Path;

use udt_eval::experiments::efficiency;
use udt_eval::experiments::settings::Settings;
use udt_eval::report::write_json;

fn main() {
    let settings = Settings::from_env();
    eprintln!(
        "running Fig. 6 at scale {} with s = {}…",
        settings.scale, settings.s
    );
    let rows = efficiency::run(&settings, &[]).expect("fig 6 experiment");
    println!("{}", efficiency::render_time(&rows));
    match write_json(Path::new("results/fig6_time.json"), &rows) {
        Ok(_) => println!("(results written to results/fig6_time.json)"),
        Err(e) => eprintln!("warning: could not write JSON results: {e}"),
    }
}
