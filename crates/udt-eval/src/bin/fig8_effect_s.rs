//! Regenerates Fig. 8 (effect of the number of sample points per pdf, `s`,
//! on UDT-ES construction time).

use std::path::Path;

use udt_eval::experiments::settings::Settings;
use udt_eval::experiments::sweeps;
use udt_eval::report::{write_csv, write_json};

fn main() {
    let settings = Settings::from_env();
    eprintln!("running Fig. 8 at scale {}…", settings.scale);
    let rows = sweeps::sweep_s(&settings, &[]).expect("fig 8 experiment");
    println!(
        "{}",
        sweeps::render("Fig. 8: effect of s on UDT-ES", "s", &rows)
    );
    match write_json(Path::new("results/fig8_effect_s.json"), &rows) {
        Ok(_) => println!("(results written to results/fig8_effect_s.json)"),
        Err(e) => eprintln!("warning: could not write JSON results: {e}"),
    }
    match write_csv(
        Path::new("results/fig8_effect_s.csv"),
        &sweeps::CSV_HEADER,
        &sweeps::csv_rows(&rows),
    ) {
        Ok(_) => println!("(engine-cost columns written to results/fig8_effect_s.csv)"),
        Err(e) => eprintln!("warning: could not write CSV results: {e}"),
    }
}
