//! Regenerates the §7.4 ablation: entropy vs Gini vs gain ratio, for AVG
//! and UDT-GP, on every selected data set.

use std::path::Path;

use udt_eval::experiments::ablation;
use udt_eval::experiments::settings::Settings;
use udt_eval::report::write_json;

fn main() {
    let settings = Settings::from_env();
    eprintln!(
        "running the dispersion-measure ablation at scale {}…",
        settings.scale
    );
    let rows = ablation::run(&settings).expect("ablation experiment");
    println!("{}", ablation::render(&rows));
    match write_json(Path::new("results/ablation_measures.json"), &rows) {
        Ok(_) => println!("(results written to results/ablation_measures.json)"),
        Err(e) => eprintln!("warning: could not write JSON results: {e}"),
    }
}
