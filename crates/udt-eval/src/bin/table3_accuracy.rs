//! Regenerates Table 3 (accuracy of AVG vs the distribution-based tree).
//! Scale knobs come from `UDT_SCALE`, `UDT_S`, `UDT_FOLDS`, `UDT_DATASETS`;
//! see `EXPERIMENTS.md`.

use std::path::Path;

use udt_eval::experiments::settings::Settings;
use udt_eval::experiments::table3;
use udt_eval::report::{pct, render_table, write_json};

fn main() {
    let settings = Settings::from_env();
    eprintln!(
        "running Table 3 at scale {} with s = {} ({} folds)…",
        settings.scale, settings.s, settings.folds
    );
    let rows = table3::run(&settings).expect("table 3 experiment");
    println!("{}", table3::render(&rows));

    let summary = table3::summarise(&rows);
    println!(
        "{}",
        render_table(
            "Table 3 summary (baseline w = 10% Gaussian vs best over sweep)",
            &["data set", "AVG", "UDT", "UDT (best)"],
            &summary
                .iter()
                .map(|s| vec![
                    s.dataset.clone(),
                    pct(s.avg_accuracy),
                    pct(s.udt_accuracy),
                    pct(s.udt_best_accuracy),
                ])
                .collect::<Vec<_>>(),
        )
    );
    let wins = rows.iter().filter(|r| r.udt_wins()).count();
    println!(
        "distribution-based tree wins on {wins}/{} (data set, model, w) configurations",
        rows.len()
    );
    match write_json(Path::new("results/table3_accuracy.json"), &rows) {
        Ok(_) => println!("(results written to results/table3_accuracy.json)"),
        Err(e) => eprintln!("warning: could not write JSON results: {e}"),
    }
}
