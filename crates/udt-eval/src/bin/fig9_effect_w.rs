//! Regenerates Fig. 9 (effect of the pdf width `w` on UDT-ES construction
//! time).

use std::path::Path;

use udt_eval::experiments::settings::Settings;
use udt_eval::experiments::sweeps;
use udt_eval::report::{write_csv, write_json};

fn main() {
    let settings = Settings::from_env();
    eprintln!(
        "running Fig. 9 at scale {} with s = {}…",
        settings.scale, settings.s
    );
    let rows = sweeps::sweep_w(&settings, &[]).expect("fig 9 experiment");
    println!(
        "{}",
        sweeps::render("Fig. 9: effect of w on UDT-ES", "w", &rows)
    );
    match write_json(Path::new("results/fig9_effect_w.json"), &rows) {
        Ok(_) => println!("(results written to results/fig9_effect_w.json)"),
        Err(e) => eprintln!("warning: could not write JSON results: {e}"),
    }
    match write_csv(
        Path::new("results/fig9_effect_w.csv"),
        &sweeps::CSV_HEADER,
        &sweeps::csv_rows(&rows),
    ) {
        Ok(_) => println!("(engine-cost columns written to results/fig9_effect_w.csv)"),
        Err(e) => eprintln!("warning: could not write CSV results: {e}"),
    }
}
