//! Regenerates Table 2 (the data-set inventory). See `EXPERIMENTS.md`.

use std::path::Path;

use udt_eval::experiments::settings::Settings;
use udt_eval::experiments::table2;
use udt_eval::report::write_json;

fn main() {
    let settings = Settings::from_env();
    let rows = table2::run(&settings).expect("table 2 inventory");
    println!("{}", table2::render(&rows));
    match write_json(Path::new("results/table2_datasets.json"), &rows) {
        Ok(_) => println!("(results written to results/table2_datasets.json)"),
        Err(e) => eprintln!("warning: could not write JSON results: {e}"),
    }
}
