//! Regenerates Fig. 4 (controlled noise / error-model experiment) on the
//! "Segment"-shaped data set (override with `UDT_FIG4_DATASET`).

use std::path::Path;

use udt_eval::experiments::fig4;
use udt_eval::experiments::settings::Settings;
use udt_eval::report::write_json;

fn main() {
    let settings = Settings::from_env();
    let dataset = std::env::var("UDT_FIG4_DATASET").unwrap_or_else(|_| "Segment".to_string());
    eprintln!("running Fig. 4 on {dataset} at scale {}…", settings.scale);
    let result = fig4::run(&settings, &dataset).expect("fig 4 experiment");
    println!("{}", fig4::render(&result));
    match write_json(Path::new("results/fig4_noise_model.json"), &result) {
        Ok(_) => println!("(results written to results/fig4_noise_model.json)"),
        Err(e) => eprintln!("warning: could not write JSON results: {e}"),
    }
}
