//! Plain-text table rendering and JSON result persistence shared by the
//! experiment binaries.

use std::fmt::Write as _;
use std::path::Path;

use serde::Serialize;

/// Renders an aligned plain-text table. `header` and every row must have
/// the same number of columns; shorter rows are padded with empty cells.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let columns = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for c in 0..columns {
            let len = row.get(c).map(String::len).unwrap_or(0);
            if len > widths[c] {
                widths[c] = len;
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let mut line = String::new();
    for (c, h) in header.iter().enumerate() {
        let _ = write!(line, "{:width$}  ", h, width = widths[c]);
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
    for row in rows {
        let mut line = String::new();
        for c in 0..columns {
            let cell = row.get(c).map(String::as_str).unwrap_or("");
            let _ = write!(line, "{:width$}  ", cell, width = widths[c]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Formats a probability/accuracy as a percentage with two decimals, the
/// style used by the paper's Table 3.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats a duration in seconds with three decimals.
pub fn secs(x: f64) -> String {
    format!("{x:.3}s")
}

/// Renders rows as an RFC-4180-ish CSV string: comma-separated, one
/// header line, fields quoted only when they contain a comma or quote.
pub fn render_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    fn field(s: &str) -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}",
        header
            .iter()
            .map(|h| field(h))
            .collect::<Vec<_>>()
            .join(",")
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{}",
            row.iter().map(|c| field(c)).collect::<Vec<_>>().join(",")
        );
    }
    out
}

/// Writes rows as CSV into `path` (creating parent directories),
/// returning the rendered string as well.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<String> {
    let csv = render_csv(header, rows);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, &csv)?;
    Ok(csv)
}

/// Serialises `value` as pretty JSON into `path` (creating parent
/// directories), returning the serialised string as well. Failures to
/// write are reported but not fatal (the text table is the primary
/// output).
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> std::io::Result<String> {
    let json = serde_json::to_string_pretty(value).map_err(std::io::Error::other)?;
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, &json)?;
    Ok(json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns_columns() {
        let text = render_table(
            "demo",
            &["data set", "accuracy"],
            &[
                vec!["Iris".to_string(), "96.13%".to_string()],
                vec!["JapaneseVowel".to_string(), "87.30%".to_string()],
            ],
        );
        assert!(text.contains("== demo =="));
        assert!(text.contains("data set"));
        // The accuracy column starts at the same offset in both rows.
        let lines: Vec<&str> = text.lines().collect();
        let iris = lines.iter().find(|l| l.starts_with("Iris")).unwrap();
        let jv = lines
            .iter()
            .find(|l| l.starts_with("JapaneseVowel"))
            .unwrap();
        assert_eq!(iris.find("96.13%"), jv.find("87.30%"));
    }

    #[test]
    fn short_rows_are_padded() {
        let text = render_table("t", &["a", "b", "c"], &[vec!["x".to_string()]]);
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.8731), "87.31%");
        assert_eq!(secs(1.23456), "1.235s");
    }

    #[test]
    fn csv_rendering_quotes_only_when_needed() {
        let csv = render_csv(
            &["dataset", "note"],
            &[
                vec!["Iris".to_string(), "plain".to_string()],
                vec!["a,b".to_string(), "say \"hi\"".to_string()],
            ],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "dataset,note");
        assert_eq!(lines[1], "Iris,plain");
        assert_eq!(lines[2], "\"a,b\",\"say \"\"hi\"\"\"");
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("udt-eval-test");
        let path = dir.join("result.csv");
        let csv = write_csv(&path, &["a"], &[vec!["1".to_string()]]).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), csv);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("udt-eval-test");
        let path = dir.join("result.json");
        let json = write_json(&path, &vec![1, 2, 3]).unwrap();
        assert!(json.contains('1'));
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, json);
        let _ = std::fs::remove_file(&path);
    }
}
