//! Classification accuracy and confusion matrices.
//!
//! Following §4.3 of the paper, a probabilistic classification result is
//! reduced to a single label by taking the class of highest probability,
//! and accuracy is the fraction of test tuples whose predicted label
//! matches the recorded one.

use serde::{Deserialize, Serialize};
use udt_data::Dataset;
use udt_tree::classify::{argmax_class, classify_batch, BatchScratch};
use udt_tree::DecisionTree;

/// The outcome of evaluating a tree on a test set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalResult {
    /// Number of test tuples.
    pub n: usize,
    /// Number classified correctly.
    pub correct: usize,
    /// `confusion[actual][predicted]` counts.
    pub confusion: Vec<Vec<usize>>,
}

impl EvalResult {
    /// Fraction of test tuples classified correctly (0 for an empty set).
    pub fn accuracy(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.correct as f64 / self.n as f64
        }
    }

    /// `1 − accuracy`.
    pub fn error_rate(&self) -> f64 {
        1.0 - self.accuracy()
    }

    /// Per-class recall (correct / actual), `None` for classes absent from
    /// the test set.
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row = self.confusion.get(class)?;
        let total: usize = row.iter().sum();
        if total == 0 {
            None
        } else {
            Some(row[class] as f64 / total as f64)
        }
    }

    /// Merges another evaluation (e.g. another cross-validation fold) into
    /// this one.
    pub fn merge(&mut self, other: &EvalResult) {
        self.n += other.n;
        self.correct += other.correct;
        for (a, b) in self.confusion.iter_mut().zip(&other.confusion) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
    }
}

/// Evaluates `tree` on every tuple of `test`, classifying the whole set
/// through the batch arena engine (one [`BatchScratch`] reused across all
/// tuples — bit-for-bit identical to per-tuple `predict`, several times
/// faster).
pub fn evaluate(tree: &DecisionTree, test: &Dataset) -> EvalResult {
    let k = tree.n_classes().max(test.n_classes());
    let mut confusion = vec![vec![0usize; k]; k];
    let mut correct = 0;
    let mut scratch = BatchScratch::new();
    let dists = classify_batch(tree, test.tuples(), &mut scratch)
        .expect("evaluation trees declare at least one class");
    let n_classes = tree.n_classes();
    for (t, dist) in test.tuples().iter().zip(dists.chunks(n_classes)) {
        let predicted = argmax_class(dist);
        if predicted == t.label() {
            correct += 1;
        }
        confusion[t.label()][predicted.min(k - 1)] += 1;
    }
    EvalResult {
        n: test.len(),
        correct,
        confusion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udt_data::{toy, Tuple};
    use udt_tree::{Algorithm, TreeBuilder, UdtConfig};

    fn trained_tree() -> (DecisionTree, Dataset) {
        let mut ds = Dataset::numerical(1, 2);
        for i in 0..20 {
            let class = i % 2;
            ds.push(Tuple::from_points(
                &[class as f64 * 10.0 + i as f64 * 0.1],
                class,
            ))
            .unwrap();
        }
        let tree = TreeBuilder::new(UdtConfig::new(Algorithm::Udt))
            .build(&ds)
            .unwrap()
            .tree;
        (tree, ds)
    }

    #[test]
    fn perfect_classifier_scores_one() {
        let (tree, ds) = trained_tree();
        let result = evaluate(&tree, &ds);
        assert_eq!(result.n, 20);
        assert_eq!(result.correct, 20);
        assert_eq!(result.accuracy(), 1.0);
        assert_eq!(result.error_rate(), 0.0);
        assert_eq!(result.recall(0), Some(1.0));
        assert_eq!(result.recall(1), Some(1.0));
        // The confusion matrix is diagonal.
        assert_eq!(result.confusion[0][1], 0);
        assert_eq!(result.confusion[1][0], 0);
    }

    #[test]
    fn accuracy_on_the_table1_example_matches_the_paper_narrative() {
        // §4.1/§4.2: Averaging attains 2/3 accuracy on the worked example,
        // the distribution-based tree attains 100 %.
        let ds = toy::table1_dataset().unwrap();
        let avg = TreeBuilder::new(UdtConfig::new(Algorithm::Avg).with_postprune(false))
            .build(&ds)
            .unwrap()
            .tree;
        let udt = TreeBuilder::new(
            UdtConfig::new(Algorithm::Udt)
                .with_postprune(false)
                .with_min_node_weight(0.0),
        )
        .build(&ds)
        .unwrap()
        .tree;
        assert!(evaluate(&avg, &ds).accuracy() <= 2.0 / 3.0 + 1e-9);
        assert_eq!(evaluate(&udt, &ds).accuracy(), 1.0);
    }

    #[test]
    fn merge_accumulates_folds() {
        let (tree, ds) = trained_tree();
        let mut a = evaluate(&tree, &ds);
        let b = evaluate(&tree, &ds);
        a.merge(&b);
        assert_eq!(a.n, 40);
        assert_eq!(a.correct, 40);
        assert_eq!(a.accuracy(), 1.0);
    }

    #[test]
    fn empty_test_set_and_missing_classes() {
        let (tree, _) = trained_tree();
        let empty = Dataset::numerical(1, 2);
        let r = evaluate(&tree, &empty);
        assert_eq!(r.n, 0);
        assert_eq!(r.accuracy(), 0.0);
        assert_eq!(r.recall(0), None);
    }
}
