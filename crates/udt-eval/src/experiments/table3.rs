//! Table 3 — "Accuracy Improvement by Considering the Distribution".
//!
//! For every data set, the paper compares the Averaging tree (AVG) against
//! the distribution-based tree (UDT) under a range of uncertainty widths
//! `w` and both error models (uniform only for the three integer-domain
//! data sets), with `s = 100` sample points per pdf and 10-fold cross
//! validation (or the provided train/test split). This module reproduces
//! the table: one row per (data set, error model, w) combination plus the
//! raw-sample "JapaneseVowel" row, reporting AVG accuracy, UDT accuracy and
//! the best-w UDT accuracy per data set.
//!
//! UDT-GP is used as the distribution-based representative because it
//! builds exactly the same trees as exhaustive UDT (safe pruning) while
//! keeping the full sweep tractable; the equality of the trees is covered
//! by the property tests in `udt-tree`.

use serde::{Deserialize, Serialize};
use udt_data::repository::{table2_specs, DatasetSpec, UncertaintySource};
use udt_data::split::train_test_split;
use udt_data::uncertainty::{inject_uncertainty, UncertaintySpec};
use udt_data::Dataset;
use udt_prob::ErrorModel;
use udt_tree::{Algorithm, TreeBuilder, UdtConfig};

use crate::accuracy::evaluate;
use crate::crossval::cross_validate;
use crate::experiments::settings::Settings;
use crate::report::{pct, render_table};

/// The uncertainty widths swept by the paper's Table 3.
pub const W_VALUES: [f64; 4] = [0.01, 0.05, 0.10, 0.20];

/// One (data set, error model, w) cell of Table 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Data set name.
    pub dataset: String,
    /// Error model name ("Gaussian", "Uniform", or "raw" for JapaneseVowel).
    pub model: String,
    /// Uncertainty width `w` (0 for the raw-sample data set).
    pub w: f64,
    /// Averaging accuracy.
    pub avg_accuracy: f64,
    /// Distribution-based accuracy.
    pub udt_accuracy: f64,
}

impl Table3Row {
    /// Whether the distribution-based tree beats Averaging on this row.
    pub fn udt_wins(&self) -> bool {
        self.udt_accuracy > self.avg_accuracy
    }
}

/// Accuracy of one algorithm on one prepared (already uncertain) data set,
/// using the data set's published evaluation protocol.
fn accuracy_of(
    data: &Dataset,
    spec: &DatasetSpec,
    algorithm: Algorithm,
    settings: &Settings,
) -> udt_data::Result<f64> {
    let config = UdtConfig::new(algorithm);
    if spec.has_train_test_split {
        let tt = train_test_split(data, 0.7, settings.seed)?;
        let tree = TreeBuilder::new(config)
            .build(&tt.train)
            .expect("training split is non-empty")
            .tree;
        Ok(evaluate(&tree, &tt.test).accuracy())
    } else {
        let cv = cross_validate(data, &config, settings.folds, settings.seed, true)?;
        Ok(cv.pooled.accuracy())
    }
}

/// Runs the Table 3 experiment.
pub fn run(settings: &Settings) -> udt_data::Result<Vec<Table3Row>> {
    let mut rows = Vec::new();
    for spec in table2_specs() {
        if !settings.includes(spec.name) {
            continue;
        }
        match spec.uncertainty {
            UncertaintySource::RawSamples => {
                // The pdf comes from the raw measurements; there is no w to
                // sweep.
                let data = spec.generate(settings.scale)?;
                let avg = accuracy_of(&data, &spec, Algorithm::Avg, settings)?;
                let udt = accuracy_of(&data, &spec, Algorithm::UdtGp, settings)?;
                rows.push(Table3Row {
                    dataset: spec.name.to_string(),
                    model: "raw".to_string(),
                    w: 0.0,
                    avg_accuracy: avg,
                    udt_accuracy: udt,
                });
            }
            UncertaintySource::Injected => {
                let point_data = spec.generate(settings.scale)?;
                let mut models = vec![ErrorModel::Gaussian];
                if spec.integer_domain {
                    // §4.3: uniform error models are additionally evaluated
                    // for the integer-domain (quantisation-noise) data sets.
                    models.push(ErrorModel::Uniform);
                }
                for model in models {
                    for &w in &W_VALUES {
                        let uspec = UncertaintySpec {
                            w,
                            s: settings.s,
                            model,
                        };
                        let data = inject_uncertainty(&point_data, &uspec)?;
                        let avg = accuracy_of(&data, &spec, Algorithm::Avg, settings)?;
                        let udt = accuracy_of(&data, &spec, Algorithm::UdtGp, settings)?;
                        rows.push(Table3Row {
                            dataset: spec.name.to_string(),
                            model: model.name().to_string(),
                            w,
                            avg_accuracy: avg,
                            udt_accuracy: udt,
                        });
                    }
                }
            }
        }
    }
    Ok(rows)
}

/// Per-data-set summary: AVG accuracy, UDT accuracy at the baseline
/// `w = 10 %`, and the best UDT accuracy over the sweep (the paper's
/// starred "best" column).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Summary {
    /// Data set name.
    pub dataset: String,
    /// Averaging accuracy (at the baseline configuration).
    pub avg_accuracy: f64,
    /// Distribution-based accuracy at the baseline configuration.
    pub udt_accuracy: f64,
    /// Best distribution-based accuracy over all (model, w) combinations.
    pub udt_best_accuracy: f64,
}

/// Collapses the detailed rows into the per-data-set summary.
pub fn summarise(rows: &[Table3Row]) -> Vec<Table3Summary> {
    let mut names: Vec<&str> = rows.iter().map(|r| r.dataset.as_str()).collect();
    names.dedup();
    names
        .into_iter()
        .map(|name| {
            let subset: Vec<&Table3Row> = rows.iter().filter(|r| r.dataset == name).collect();
            let baseline = subset
                .iter()
                .find(|r| (r.w - 0.10).abs() < 1e-9 && r.model == "Gaussian")
                .or_else(|| subset.first())
                .expect("at least one row per data set");
            let best = subset
                .iter()
                .map(|r| r.udt_accuracy)
                .fold(f64::NEG_INFINITY, f64::max);
            Table3Summary {
                dataset: name.to_string(),
                avg_accuracy: baseline.avg_accuracy,
                udt_accuracy: baseline.udt_accuracy,
                udt_best_accuracy: best,
            }
        })
        .collect()
}

/// Renders the detailed rows as a plain-text table.
pub fn render(rows: &[Table3Row]) -> String {
    render_table(
        "Table 3: accuracy, AVG vs distribution-based (UDT)",
        &["data set", "model", "w", "AVG", "UDT", "winner"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.model.clone(),
                    if r.w == 0.0 {
                        "raw".to_string()
                    } else {
                        format!("{:.0}%", r.w * 100.0)
                    },
                    pct(r.avg_accuracy),
                    pct(r.udt_accuracy),
                    if r.udt_wins() { "UDT" } else { "AVG/tie" }.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_settings() -> Settings {
        Settings {
            scale: 0.25,
            s: 10,
            folds: 3,
            seed: 7,
            datasets: vec!["Iris".to_string()],
        }
    }

    #[test]
    fn rows_cover_the_w_sweep_for_an_injected_dataset() {
        let rows = run(&tiny_settings()).unwrap();
        // Iris is real-valued: Gaussian only, four w values.
        assert_eq!(rows.len(), W_VALUES.len());
        assert!(rows
            .iter()
            .all(|r| r.dataset == "Iris" && r.model == "Gaussian"));
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.avg_accuracy));
            assert!((0.0..=1.0).contains(&r.udt_accuracy));
        }
    }

    #[test]
    fn summary_reports_best_over_the_sweep() {
        let rows = run(&tiny_settings()).unwrap();
        let summary = summarise(&rows);
        assert_eq!(summary.len(), 1);
        let s = &summary[0];
        assert_eq!(s.dataset, "Iris");
        assert!(s.udt_best_accuracy + 1e-12 >= s.udt_accuracy);
        assert!(rows
            .iter()
            .all(|r| r.udt_accuracy <= s.udt_best_accuracy + 1e-12));
    }

    #[test]
    fn integer_domain_datasets_also_sweep_the_uniform_model() {
        let settings = Settings {
            scale: 0.02,
            s: 8,
            folds: 3,
            seed: 7,
            datasets: vec!["Vehicle".to_string()],
        };
        let rows = run(&settings).unwrap();
        assert_eq!(rows.len(), 2 * W_VALUES.len());
        assert!(rows.iter().any(|r| r.model == "Uniform"));
        assert!(rows.iter().any(|r| r.model == "Gaussian"));
    }

    #[test]
    fn render_includes_percentages() {
        let rows = run(&tiny_settings()).unwrap();
        let text = render(&rows);
        assert!(text.contains('%'));
        assert!(text.contains("Iris"));
    }
}
