//! Figs. 8 and 9 — sensitivity of UDT-ES to `s` and `w`.
//!
//! Fig. 8 varies the number of sample points per pdf (`s`) and Fig. 9 the
//! relative pdf width (`w`), both at otherwise-baseline settings, and
//! reports UDT-ES construction time. The paper's observations — time grows
//! roughly linearly with `s`, and generally grows with `w` because wider
//! pdfs create more heterogeneous intervals — are asserted in the
//! integration tests on the scaled workloads.

use serde::{Deserialize, Serialize};
use udt_data::repository::{table2_specs, UncertaintySource};
use udt_data::uncertainty::{inject_uncertainty, UncertaintySpec};
use udt_prob::ErrorModel;
use udt_tree::{Algorithm, TreeBuilder, UdtConfig};

use crate::experiments::settings::Settings;
use crate::report::{render_table, secs};

/// The `s` values swept by Fig. 8 (the paper uses 50–200).
pub const S_VALUES: [usize; 4] = [50, 100, 150, 200];

/// The `w` values swept by Fig. 9.
pub const W_VALUES: [f64; 5] = [0.025, 0.05, 0.10, 0.20, 0.30];

/// One sweep measurement. Alongside the paper's quantities (time,
/// entropy-like calculations) every row records the engine's own cost —
/// build wall-clock and partition allocation traffic — so the `s`/`w`
/// sweeps can chart engine cost, not just accuracy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepRow {
    /// Data set name.
    pub dataset: String,
    /// The swept parameter's value (`s` or `w`).
    pub value: f64,
    /// UDT-ES construction time in seconds (build wall-clock).
    pub seconds: f64,
    /// Entropy-like calculations performed.
    pub entropy_like_calculations: u64,
    /// Total bytes the partition layer allocated during the build.
    pub partition_bytes: u64,
    /// Largest single partition call's allocation, in bytes.
    pub partition_peak_bytes: u64,
    /// Seconds spent in the root presort phase (wall-clock).
    pub build_presort_s: f64,
    /// Seconds spent in per-node split search (cumulative across pool
    /// workers; equals wall-clock at one thread).
    pub build_search_s: f64,
    /// Candidate split points available across all attributes and nodes
    /// (the `k·(m·s − 1)` search space of §4.2, summed over nodes).
    pub candidates_total: u64,
    /// Candidate split points pruned before scoring.
    pub candidates_pruned: u64,
    /// `candidates_pruned / candidates_total` (0 when no candidates) —
    /// how pruning effectiveness holds up as `s` or `w` grows.
    pub prune_fraction: f64,
}

fn injectable_specs(settings: &Settings) -> Vec<udt_data::repository::DatasetSpec> {
    // The JapaneseVowel data set takes its uncertainty from raw samples, so
    // `s` and `w` cannot be controlled for it; the paper excludes it from
    // Figs. 8 and 9 for the same reason.
    table2_specs()
        .into_iter()
        .filter(|spec| {
            settings.includes(spec.name) && spec.uncertainty == UncertaintySource::Injected
        })
        .collect()
}

fn measure(
    point_data: &udt_data::Dataset,
    dataset: &str,
    value: f64,
    w: f64,
    s: usize,
) -> udt_data::Result<SweepRow> {
    let data = inject_uncertainty(
        point_data,
        &UncertaintySpec {
            w,
            s,
            model: ErrorModel::Gaussian,
        },
    )?;
    let report = TreeBuilder::new(UdtConfig::new(Algorithm::UdtEs))
        .build(&data)
        .expect("non-empty data set");
    Ok(SweepRow {
        dataset: dataset.to_string(),
        value,
        seconds: report.elapsed.as_secs_f64(),
        entropy_like_calculations: report.stats.entropy_like_calculations(),
        partition_bytes: report.stats.partition_bytes,
        partition_peak_bytes: report.stats.partition_peak_bytes,
        build_presort_s: report.stats.presort_ns as f64 / 1e9,
        build_search_s: report.stats.search_ns as f64 / 1e9,
        candidates_total: report.stats.candidate_points,
        candidates_pruned: report.stats.candidates_pruned(),
        prune_fraction: report.stats.prune_fraction(),
    })
}

/// Fig. 8: sweep `s` with `w` fixed at the 10 % baseline. `s_values`
/// defaults to [`S_VALUES`] when empty; the settings' own `s` is ignored.
pub fn sweep_s(settings: &Settings, s_values: &[usize]) -> udt_data::Result<Vec<SweepRow>> {
    let s_values: Vec<usize> = if s_values.is_empty() {
        S_VALUES.to_vec()
    } else {
        s_values.to_vec()
    };
    let mut rows = Vec::new();
    for spec in injectable_specs(settings) {
        let point_data = spec.generate(settings.scale)?;
        for &s in &s_values {
            rows.push(measure(&point_data, spec.name, s as f64, 0.10, s)?);
        }
    }
    Ok(rows)
}

/// Fig. 9: sweep `w` with `s` fixed at the settings' value. `w_values`
/// defaults to [`W_VALUES`] when empty.
pub fn sweep_w(settings: &Settings, w_values: &[f64]) -> udt_data::Result<Vec<SweepRow>> {
    let w_values: Vec<f64> = if w_values.is_empty() {
        W_VALUES.to_vec()
    } else {
        w_values.to_vec()
    };
    let mut rows = Vec::new();
    for spec in injectable_specs(settings) {
        let point_data = spec.generate(settings.scale)?;
        for &w in &w_values {
            rows.push(measure(&point_data, spec.name, w, w, settings.s)?);
        }
    }
    Ok(rows)
}

fn format_value(parameter: &str, value: f64) -> String {
    if parameter == "s" {
        format!("{}", value as usize)
    } else {
        format!("{:.1}%", value * 100.0)
    }
}

/// Renders sweep rows; `parameter` is "s" or "w".
pub fn render(title: &str, parameter: &str, rows: &[SweepRow]) -> String {
    render_table(
        title,
        &[
            "data set",
            parameter,
            "UDT-ES time",
            "entropy calcs",
            "partition bytes",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    format_value(parameter, r.value),
                    secs(r.seconds),
                    r.entropy_like_calculations.to_string(),
                    r.partition_bytes.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// The CSV header matching [`csv_rows`]. The per-phase columns show
/// where build time goes as `s` and `w` grow: `build_presort_s` is the
/// root sort, `build_search_s` the per-node split search.
pub const CSV_HEADER: [&str; 11] = [
    "dataset",
    "value",
    "build_seconds",
    "entropy_like_calculations",
    "partition_bytes",
    "partition_peak_bytes",
    "build_presort_s",
    "build_search_s",
    "candidates_total",
    "candidates_pruned",
    "prune_fraction",
];

/// Flattens sweep rows into CSV cells (pair with [`CSV_HEADER`] and
/// [`crate::report::write_csv`]). The swept value is emitted as a raw
/// number (`s` as a count, `w` as a fraction) so charting tools can use
/// the column directly; the `%`-style pretty-printing is reserved for
/// the text table.
pub fn csv_rows(rows: &[SweepRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                format!("{}", r.value),
                format!("{:.6}", r.seconds),
                r.entropy_like_calculations.to_string(),
                r.partition_bytes.to_string(),
                r.partition_peak_bytes.to_string(),
                format!("{:.6}", r.build_presort_s),
                format!("{:.6}", r.build_search_s),
                r.candidates_total.to_string(),
                r.candidates_pruned.to_string(),
                format!("{:.6}", r.prune_fraction),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_settings() -> Settings {
        Settings {
            scale: 0.2,
            s: 10,
            folds: 3,
            seed: 5,
            datasets: vec!["Iris".to_string()],
        }
    }

    #[test]
    fn s_sweep_work_grows_with_s() {
        let rows = sweep_s(&tiny_settings(), &[10, 40]).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].dataset, "Iris");
        assert!(rows[0].value < rows[1].value);
        // More sample points → more candidate split points → more work.
        assert!(rows[1].entropy_like_calculations > rows[0].entropy_like_calculations);
    }

    #[test]
    fn w_sweep_produces_one_row_per_value() {
        let rows = sweep_w(&tiny_settings(), &[0.05, 0.2]).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.entropy_like_calculations > 0));
        // Engine-cost columns are populated.
        assert!(rows.iter().all(|r| r.partition_bytes > 0));
        assert!(rows
            .iter()
            .all(|r| r.partition_peak_bytes <= r.partition_bytes));
        // Per-phase timings are recorded and sit inside the total.
        assert!(rows.iter().all(|r| r.build_presort_s > 0.0));
        assert!(rows.iter().all(|r| r.build_search_s > 0.0));
        assert!(rows.iter().all(|r| r.build_presort_s < r.seconds));
        // UDT-ES prunes: the candidate space is populated and a
        // nontrivial fraction of it goes unscored.
        assert!(rows.iter().all(|r| r.candidates_total > 0));
        assert!(rows
            .iter()
            .all(|r| r.candidates_pruned <= r.candidates_total));
        assert!(rows.iter().all(|r| r.prune_fraction > 0.0));
        assert!(rows.iter().all(|r| r.prune_fraction <= 1.0));
    }

    #[test]
    fn csv_rows_match_the_header_and_stay_numeric() {
        let rows = sweep_s(&tiny_settings(), &[10]).unwrap();
        let cells = csv_rows(&rows);
        assert_eq!(cells.len(), rows.len());
        assert!(cells.iter().all(|r| r.len() == CSV_HEADER.len()));
        // Every cell after the dataset name parses as a number, so the
        // CSV charts without string munging.
        for row in &cells {
            for cell in &row[1..] {
                assert!(cell.parse::<f64>().is_ok(), "non-numeric cell {cell:?}");
            }
        }
        let csv = crate::report::render_csv(&CSV_HEADER, &cells);
        assert!(csv.starts_with("dataset,value,build_seconds"));
        assert!(csv.lines().count() == rows.len() + 1);
    }

    #[test]
    fn raw_sample_datasets_are_excluded() {
        let settings = Settings {
            datasets: vec!["JapaneseVowel".to_string()],
            ..tiny_settings()
        };
        assert!(sweep_s(&settings, &[10]).unwrap().is_empty());
        assert!(sweep_w(&settings, &[0.1]).unwrap().is_empty());
    }

    #[test]
    fn default_sweeps_match_the_papers_grids() {
        assert_eq!(S_VALUES.to_vec(), vec![50, 100, 150, 200]);
        assert_eq!(W_VALUES.len(), 5);
        let text = render("Fig. 8", "s", &sweep_s(&tiny_settings(), &[10]).unwrap());
        assert!(text.contains("UDT-ES time"));
    }
}
