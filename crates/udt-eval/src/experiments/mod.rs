//! Experiment definitions, one module per paper table/figure.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`table2`] | Table 2 — data-set inventory |
//! | [`table3`] | Table 3 — accuracy of AVG vs the distribution-based tree |
//! | [`fig4`] | Fig. 4 — controlled-noise / error-model experiment |
//! | [`efficiency`] | Fig. 6 (execution time) and Fig. 7 (pruning effectiveness) |
//! | [`sweeps`] | Fig. 8 (effect of `s`) and Fig. 9 (effect of `w`) on UDT-ES |
//! | [`ablation`] | §7.4 — dispersion-measure ablation (entropy / Gini / gain ratio) |
//!
//! Every experiment takes a [`settings::Settings`] value so that the same
//! code path serves the fast configuration used by the test-suite and the
//! larger configuration used by the binaries (see `EXPERIMENTS.md`).

pub mod ablation;
pub mod efficiency;
pub mod fig4;
pub mod settings;
pub mod sweeps;
pub mod table2;
pub mod table3;
