//! Figs. 6 and 7 — execution time and pruning effectiveness.
//!
//! For every data set at the baseline uncertainty setting (`s = 100`,
//! `w = 10 %`, Gaussian — scaled by [`Settings`]), every algorithm (AVG,
//! UDT, UDT-BP, UDT-LP, UDT-GP, UDT-ES) builds a tree on the full data set
//! and we record the wall-clock construction time (Fig. 6) and the number
//! of entropy-like calculations — split-point evaluations plus interval
//! lower bounds (Fig. 7).

use serde::{Deserialize, Serialize};
use udt_data::repository::{table2_specs, UncertaintySource};
use udt_data::uncertainty::{inject_uncertainty, UncertaintySpec};
use udt_prob::ErrorModel;
use udt_tree::{Algorithm, TreeBuilder, UdtConfig};

use crate::experiments::settings::Settings;
use crate::report::{render_table, secs};

/// One (data set, algorithm) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EfficiencyRow {
    /// Data set name.
    pub dataset: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Wall-clock construction time in seconds (Fig. 6).
    pub seconds: f64,
    /// Entropy-like calculations performed (Fig. 7).
    pub entropy_like_calculations: u64,
    /// Candidate split points available (the search-space size).
    pub candidate_points: u64,
    /// Intervals pruned by theorems or bounding.
    pub intervals_pruned: u64,
    /// Size of the resulting tree.
    pub tree_size: usize,
}

/// Runs the efficiency experiment over `algorithms` (defaults to all six
/// when empty).
pub fn run(settings: &Settings, algorithms: &[Algorithm]) -> udt_data::Result<Vec<EfficiencyRow>> {
    let algorithms: Vec<Algorithm> = if algorithms.is_empty() {
        Algorithm::all().to_vec()
    } else {
        algorithms.to_vec()
    };
    let mut rows = Vec::new();
    for spec in table2_specs() {
        if !settings.includes(spec.name) {
            continue;
        }
        let data = match spec.uncertainty {
            UncertaintySource::RawSamples => spec.generate(settings.scale)?,
            UncertaintySource::Injected => {
                let point_data = spec.generate(settings.scale)?;
                inject_uncertainty(
                    &point_data,
                    &UncertaintySpec {
                        w: 0.10,
                        s: settings.s,
                        model: ErrorModel::Gaussian,
                    },
                )?
            }
        };
        for &algorithm in &algorithms {
            let report = TreeBuilder::new(UdtConfig::new(algorithm))
                .build(&data)
                .expect("non-empty data set");
            rows.push(EfficiencyRow {
                dataset: spec.name.to_string(),
                algorithm: algorithm.name().to_string(),
                seconds: report.elapsed.as_secs_f64(),
                entropy_like_calculations: report.stats.entropy_like_calculations(),
                candidate_points: report.stats.candidate_points,
                intervals_pruned: report.stats.intervals_pruned,
                tree_size: report.tree.size(),
            });
        }
    }
    Ok(rows)
}

/// Renders the Fig. 6 view (execution time).
pub fn render_time(rows: &[EfficiencyRow]) -> String {
    render_table(
        "Fig. 6: execution time per algorithm",
        &["data set", "algorithm", "time", "tree size"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.algorithm.clone(),
                    secs(r.seconds),
                    r.tree_size.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Renders the Fig. 7 view (entropy-like calculations and the pruning
/// ratio relative to exhaustive UDT).
pub fn render_pruning(rows: &[EfficiencyRow]) -> String {
    let mut table_rows = Vec::new();
    for r in rows {
        let udt_count = rows
            .iter()
            .find(|x| x.dataset == r.dataset && x.algorithm == "UDT")
            .map(|x| x.entropy_like_calculations)
            .unwrap_or(0);
        let ratio = if udt_count > 0 {
            format!(
                "{:.2}%",
                100.0 * r.entropy_like_calculations as f64 / udt_count as f64
            )
        } else {
            "-".to_string()
        };
        table_rows.push(vec![
            r.dataset.clone(),
            r.algorithm.clone(),
            r.entropy_like_calculations.to_string(),
            ratio,
            r.intervals_pruned.to_string(),
        ]);
    }
    render_table(
        "Fig. 7: pruning effectiveness (entropy-like calculations)",
        &[
            "data set",
            "algorithm",
            "entropy calcs",
            "% of UDT",
            "intervals pruned",
        ],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_settings() -> Settings {
        Settings {
            scale: 0.25,
            s: 12,
            folds: 3,
            seed: 5,
            datasets: vec!["Iris".to_string()],
        }
    }

    #[test]
    fn all_six_algorithms_are_measured() {
        let rows = run(&tiny_settings(), &[]).unwrap();
        assert_eq!(rows.len(), 6);
        let names: Vec<&str> = rows.iter().map(|r| r.algorithm.as_str()).collect();
        assert_eq!(
            names,
            vec!["AVG", "UDT", "UDT-BP", "UDT-LP", "UDT-GP", "UDT-ES"]
        );
        for r in &rows {
            assert!(r.seconds >= 0.0);
            assert!(r.entropy_like_calculations > 0);
            assert!(r.tree_size >= 1);
        }
    }

    /// The paper's headline efficiency ordering: every pruned algorithm
    /// performs fewer entropy-like calculations than exhaustive UDT, AVG
    /// fewer than any distribution-based algorithm, and UDT-GP no more than
    /// UDT-LP no more than UDT-BP.
    #[test]
    fn pruning_reduces_entropy_calculations_in_the_papers_order() {
        let rows = run(&tiny_settings(), &[]).unwrap();
        let count = |name: &str| {
            rows.iter()
                .find(|r| r.algorithm == name)
                .unwrap()
                .entropy_like_calculations
        };
        let udt = count("UDT");
        assert!(count("AVG") < udt);
        assert!(count("UDT-BP") <= udt);
        assert!(count("UDT-LP") <= count("UDT-BP") + count("UDT-BP") / 2);
        assert!(count("UDT-GP") <= count("UDT-LP"));
        assert!(count("UDT-ES") <= udt);
    }

    #[test]
    fn subset_of_algorithms_can_be_requested() {
        let rows = run(&tiny_settings(), &[Algorithm::Avg, Algorithm::UdtEs]).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn renders_include_ratios() {
        let rows = run(&tiny_settings(), &[]).unwrap();
        assert!(render_time(&rows).contains("UDT-ES"));
        let pruning = render_pruning(&rows);
        assert!(pruning.contains('%'));
        assert!(pruning.contains("intervals pruned"));
    }
}
