//! Fig. 4 — the controlled-noise / error-model experiment (§4.4).
//!
//! The paper injects artificial Gaussian noise of controlled magnitude `u`
//! into the point data, then adds modelled uncertainty of width `w` on
//! top, and plots UDT accuracy as a function of `w` for several values of
//! `u` (the `w = 0` points are AVG). The hypothesis — confirmed there and
//! reproduced here — is that accuracy rises quickly to a plateau around
//! the `w` predicted by equation (2), `w² = κ² + u²`, and degrades
//! gracefully beyond it.

use serde::{Deserialize, Serialize};
use udt_data::noise::{model_w_for_u, perturb};
use udt_data::repository::by_name;
use udt_data::uncertainty::{inject_uncertainty, UncertaintySpec};
use udt_prob::stats::ConfidenceInterval;
use udt_prob::ErrorModel;
use udt_tree::{Algorithm, UdtConfig};

use crate::crossval::cross_validate;
use crate::experiments::settings::Settings;
use crate::report::{pct, render_table};

/// Default `u` values (perturbation magnitudes), matching the spirit of the
/// paper's Fig. 4 curves.
pub const U_VALUES: [f64; 4] = [0.0, 0.05, 0.10, 0.20];

/// Default `w` sweep; `w = 0` denotes the AVG baseline.
pub const W_SWEEP: [f64; 7] = [0.0, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30];

/// One measured point of Fig. 4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Point {
    /// Artificial perturbation magnitude `u`.
    pub u: f64,
    /// Modelled uncertainty width `w` (0 = AVG).
    pub w: f64,
    /// Cross-validated accuracy.
    pub accuracy: f64,
}

/// The complete Fig. 4 result: the measured grid plus the "model" curve of
/// equation (2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Result {
    /// Name of the data set used (the paper uses "Segment").
    pub dataset: String,
    /// Measured accuracy grid.
    pub points: Vec<Fig4Point>,
    /// Estimated latent error `κ` (as a fraction of the attribute range).
    pub kappa: f64,
    /// The model curve: for each `u`, the predicted best `w` and the
    /// accuracy measured there.
    pub model_curve: Vec<Fig4Point>,
}

/// Runs the Fig. 4 experiment on the named data set (default "Segment").
pub fn run(settings: &Settings, dataset: &str) -> udt_data::Result<Fig4Result> {
    let spec = by_name(dataset).unwrap_or_else(|| by_name("Segment").expect("Segment exists"));
    let point_data = spec.generate(settings.scale)?;

    let mut points = Vec::new();
    for (ui, &u) in U_VALUES.iter().enumerate() {
        let perturbed = perturb(&point_data, u, settings.seed.wrapping_add(ui as u64))?;
        for &w in &W_SWEEP {
            let accuracy = accuracy_at(&perturbed, w, settings)?;
            points.push(Fig4Point { u, w, accuracy });
        }
    }

    // Estimate κ from the u = 0 curve, as the paper does: find the set of w
    // whose 95 % confidence interval overlaps the best point's, and take the
    // midpoint of that range.
    let kappa = estimate_kappa(&points, settings);

    let mut model_curve = Vec::new();
    for (ui, &u) in U_VALUES.iter().enumerate() {
        let w_model = model_w_for_u(kappa, u);
        let perturbed = perturb(&point_data, u, settings.seed.wrapping_add(ui as u64))?;
        let accuracy = accuracy_at(&perturbed, w_model, settings)?;
        model_curve.push(Fig4Point {
            u,
            w: w_model,
            accuracy,
        });
    }

    Ok(Fig4Result {
        dataset: spec.name.to_string(),
        points,
        kappa,
        model_curve,
    })
}

/// Cross-validated accuracy of the distribution-based tree at uncertainty
/// width `w` (or of AVG when `w == 0`).
fn accuracy_at(
    perturbed: &udt_data::Dataset,
    w: f64,
    settings: &Settings,
) -> udt_data::Result<f64> {
    if w <= 0.0 {
        let cv = cross_validate(
            perturbed,
            &UdtConfig::new(Algorithm::Avg),
            settings.folds,
            settings.seed,
            true,
        )?;
        return Ok(cv.pooled.accuracy());
    }
    let uspec = UncertaintySpec {
        w,
        s: settings.s,
        model: ErrorModel::Gaussian,
    };
    let data = inject_uncertainty(perturbed, &uspec)?;
    let cv = cross_validate(
        &data,
        &UdtConfig::new(Algorithm::UdtGp),
        settings.folds,
        settings.seed,
        true,
    )?;
    Ok(cv.pooled.accuracy())
}

/// Estimates the latent error κ from the `u = 0` curve: the midpoint of the
/// range of `w > 0` whose accuracy is statistically indistinguishable from
/// the best observed accuracy (§4.4).
fn estimate_kappa(points: &[Fig4Point], settings: &Settings) -> f64 {
    let zero_curve: Vec<&Fig4Point> = points.iter().filter(|p| p.u == 0.0 && p.w > 0.0).collect();
    if zero_curve.is_empty() {
        return 0.0;
    }
    let best = zero_curve
        .iter()
        .map(|p| p.accuracy)
        .fold(f64::NEG_INFINITY, f64::max);
    // Approximate the fold-to-fold standard error with a binomial CI over
    // the pooled test tuples; points within that band of the best count as
    // "on the plateau".
    let n = (settings.folds.max(2) * 20) as f64;
    let half_width = ConfidenceInterval {
        mean: best,
        half_width: 1.96 * (best * (1.0 - best) / n).sqrt(),
    }
    .half_width;
    let plateau: Vec<f64> = zero_curve
        .iter()
        .filter(|p| p.accuracy + half_width >= best)
        .map(|p| p.w)
        .collect();
    if plateau.is_empty() {
        return 0.0;
    }
    let lo = plateau.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = plateau.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (lo + hi) / 2.0
}

/// Renders the measured grid as a plain-text table (one row per `u`, one
/// column per `w`).
pub fn render(result: &Fig4Result) -> String {
    let mut header: Vec<String> = vec!["u \\ w".to_string()];
    header.extend(W_SWEEP.iter().map(|w| {
        if *w == 0.0 {
            "AVG".to_string()
        } else {
            format!("{:.0}%", w * 100.0)
        }
    }));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for &u in &U_VALUES {
        let mut row = vec![format!("{:.0}%", u * 100.0)];
        for &w in &W_SWEEP {
            let cell = result
                .points
                .iter()
                .find(|p| p.u == u && p.w == w)
                .map(|p| pct(p.accuracy))
                .unwrap_or_default();
            row.push(cell);
        }
        rows.push(row);
    }
    let mut out = render_table(
        &format!(
            "Fig. 4: controlled noise on \"{}\" (kappa = {:.3})",
            result.dataset, result.kappa
        ),
        &header_refs,
        &rows,
    );
    out.push_str("\nmodel curve (eq. 2):\n");
    for p in &result.model_curve {
        out.push_str(&format!(
            "  u = {:>4.0}%  ->  w = {:>5.1}%  accuracy = {}\n",
            p.u * 100.0,
            p.w * 100.0,
            pct(p.accuracy)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_settings() -> Settings {
        Settings {
            scale: 0.03,
            s: 10,
            folds: 3,
            seed: 3,
            datasets: Vec::new(),
        }
    }

    #[test]
    fn grid_covers_every_u_w_combination() {
        let result = run(&tiny_settings(), "Glass").unwrap();
        assert_eq!(result.dataset, "Glass");
        assert_eq!(result.points.len(), U_VALUES.len() * W_SWEEP.len());
        assert_eq!(result.model_curve.len(), U_VALUES.len());
        for p in &result.points {
            assert!((0.0..=1.0).contains(&p.accuracy));
        }
        assert!(result.kappa >= 0.0);
        // The model curve's w grows with u (eq. 2 is monotone in u).
        for pair in result.model_curve.windows(2) {
            assert!(pair[1].w >= pair[0].w - 1e-12);
        }
    }

    #[test]
    fn unknown_dataset_falls_back_to_segment() {
        let mut s = tiny_settings();
        s.scale = 0.01;
        let result = run(&s, "NoSuchDataset").unwrap();
        assert_eq!(result.dataset, "Segment");
    }

    #[test]
    fn render_mentions_the_model_curve() {
        let result = run(&tiny_settings(), "Glass").unwrap();
        let text = render(&result);
        assert!(text.contains("model curve"));
        assert!(text.contains("AVG"));
    }
}
