//! Shared experiment settings.
//!
//! The paper's experiments run the ten UCI-shaped data sets at full size
//! with `s = 100` sample points per pdf. That is reproducible here (set
//! `scale = 1.0`), but the default settings are scaled down so that the
//! whole suite — including the exhaustive UDT baseline — finishes in
//! minutes on a laptop. The binaries read overrides from environment
//! variables so no code change is needed to run at full size:
//!
//! * `UDT_SCALE`  — fraction of each data set's published tuple count (default 0.05)
//! * `UDT_S`      — sample points per pdf (default 50)
//! * `UDT_FOLDS`  — cross-validation folds (default 5)
//! * `UDT_SEED`   — base RNG seed (default 42)
//! * `UDT_DATASETS` — comma-separated data-set names (default: all ten)

use serde::{Deserialize, Serialize};

/// Scaling knobs shared by all experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Settings {
    /// Fraction of each data set's published tuple count to generate.
    pub scale: f64,
    /// Sample points per pdf (`s`).
    pub s: usize,
    /// Cross-validation folds.
    pub folds: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Restrict the experiments to these data sets (empty = all).
    pub datasets: Vec<String>,
}

impl Settings {
    /// The default laptop-scale settings used by the binaries.
    pub fn laptop() -> Self {
        Settings {
            scale: 0.05,
            s: 50,
            folds: 5,
            seed: 42,
            datasets: Vec::new(),
        }
    }

    /// A very small configuration used by the integration tests (seconds,
    /// not minutes).
    pub fn smoke() -> Self {
        Settings {
            scale: 0.02,
            s: 16,
            folds: 3,
            seed: 42,
            datasets: vec!["Iris".to_string(), "Glass".to_string()],
        }
    }

    /// Reads overrides from the environment on top of
    /// [`laptop`](Self::laptop) defaults.
    pub fn from_env() -> Self {
        let mut s = Settings::laptop();
        if let Some(v) = read_env_f64("UDT_SCALE") {
            s.scale = v;
        }
        if let Some(v) = read_env_usize("UDT_S") {
            s.s = v;
        }
        if let Some(v) = read_env_usize("UDT_FOLDS") {
            s.folds = v;
        }
        if let Some(v) = read_env_u64("UDT_SEED") {
            s.seed = v;
        }
        if let Ok(names) = std::env::var("UDT_DATASETS") {
            s.datasets = names
                .split(',')
                .map(|n| n.trim().to_string())
                .filter(|n| !n.is_empty())
                .collect();
        }
        s
    }

    /// Whether a data set is selected by this configuration.
    pub fn includes(&self, name: &str) -> bool {
        self.datasets.is_empty() || self.datasets.iter().any(|d| d.eq_ignore_ascii_case(name))
    }
}

impl Default for Settings {
    fn default() -> Self {
        Settings::laptop()
    }
}

fn read_env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn read_env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn read_env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_laptop_scale() {
        let s = Settings::default();
        assert_eq!(s, Settings::laptop());
        assert!(s.scale <= 0.1);
        assert!(s.includes("Iris"));
        assert!(s.includes("anything"));
    }

    #[test]
    fn smoke_settings_restrict_datasets() {
        let s = Settings::smoke();
        assert!(s.includes("Iris"));
        assert!(s.includes("iris"));
        assert!(!s.includes("PenDigits"));
        assert!(s.scale < Settings::laptop().scale + 1e-12);
    }

    #[test]
    fn env_parsing_helpers_reject_garbage() {
        assert_eq!(read_env_f64("UDT_NO_SUCH_VARIABLE_12345"), None);
        std::env::set_var("UDT_EVAL_TEST_GARBAGE", "not-a-number");
        assert_eq!(read_env_f64("UDT_EVAL_TEST_GARBAGE"), None);
        assert_eq!(read_env_usize("UDT_EVAL_TEST_GARBAGE"), None);
        std::env::set_var("UDT_EVAL_TEST_NUMBER", "7");
        assert_eq!(read_env_usize("UDT_EVAL_TEST_NUMBER"), Some(7));
        assert_eq!(read_env_u64("UDT_EVAL_TEST_NUMBER"), Some(7));
        std::env::remove_var("UDT_EVAL_TEST_GARBAGE");
        std::env::remove_var("UDT_EVAL_TEST_NUMBER");
    }
}
