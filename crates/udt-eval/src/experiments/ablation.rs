//! §7.4 ablation — dispersion measures.
//!
//! The paper states that its results carry over from entropy to the Gini
//! index (with a different lower bound) and partially to gain ratio (for
//! which homogeneous-interval pruning is unavailable). This ablation runs
//! AVG and UDT-GP under each measure and reports accuracy and the
//! entropy-like work, so the claims can be checked on the synthetic
//! workloads.

use serde::{Deserialize, Serialize};
use udt_data::repository::{table2_specs, UncertaintySource};
use udt_data::uncertainty::{inject_uncertainty, UncertaintySpec};
use udt_prob::ErrorModel;
use udt_tree::{Algorithm, Measure, UdtConfig};

use crate::crossval::cross_validate;
use crate::experiments::settings::Settings;
use crate::report::{pct, render_table};

/// One (data set, measure, algorithm) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Data set name.
    pub dataset: String,
    /// Dispersion measure name.
    pub measure: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Cross-validated accuracy.
    pub accuracy: f64,
    /// Entropy-like calculations across all folds.
    pub entropy_like_calculations: u64,
}

/// Runs the measure ablation.
pub fn run(settings: &Settings) -> udt_data::Result<Vec<AblationRow>> {
    let measures = [Measure::Entropy, Measure::Gini, Measure::GainRatio];
    let algorithms = [Algorithm::Avg, Algorithm::UdtGp];
    let mut rows = Vec::new();
    for spec in table2_specs() {
        if !settings.includes(spec.name) {
            continue;
        }
        let data = match spec.uncertainty {
            UncertaintySource::RawSamples => spec.generate(settings.scale)?,
            UncertaintySource::Injected => inject_uncertainty(
                &spec.generate(settings.scale)?,
                &UncertaintySpec {
                    w: 0.10,
                    s: settings.s,
                    model: ErrorModel::Gaussian,
                },
            )?,
        };
        for measure in measures {
            for algorithm in algorithms {
                let config = UdtConfig::new(algorithm).with_measure(measure);
                let cv = cross_validate(&data, &config, settings.folds, settings.seed, true)?;
                rows.push(AblationRow {
                    dataset: spec.name.to_string(),
                    measure: measure.name().to_string(),
                    algorithm: algorithm.name().to_string(),
                    accuracy: cv.pooled.accuracy(),
                    entropy_like_calculations: cv.stats.entropy_like_calculations(),
                });
            }
        }
    }
    Ok(rows)
}

/// Renders the ablation rows.
pub fn render(rows: &[AblationRow]) -> String {
    render_table(
        "§7.4 ablation: dispersion measures",
        &[
            "data set",
            "measure",
            "algorithm",
            "accuracy",
            "entropy calcs",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.measure.clone(),
                    r.algorithm.clone(),
                    pct(r.accuracy),
                    r.entropy_like_calculations.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_settings() -> Settings {
        Settings {
            scale: 0.2,
            s: 8,
            folds: 3,
            seed: 9,
            datasets: vec!["Iris".to_string()],
        }
    }

    #[test]
    fn ablation_covers_measures_times_algorithms() {
        let rows = run(&tiny_settings()).unwrap();
        assert_eq!(rows.len(), 3 * 2);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.accuracy));
            assert!(r.entropy_like_calculations > 0);
        }
        // Every measure appears with both algorithms.
        for m in ["entropy", "gini", "gain-ratio"] {
            assert_eq!(rows.iter().filter(|r| r.measure == m).count(), 2, "{m}");
        }
    }

    #[test]
    fn render_lists_all_measures() {
        let rows = run(&tiny_settings()).unwrap();
        let text = render(&rows);
        assert!(text.contains("entropy"));
        assert!(text.contains("gini"));
        assert!(text.contains("gain-ratio"));
    }
}
