//! Table 2 — the data-set inventory.
//!
//! Reproduces the paper's Table 2 ("Selected Data Sets from the UCI Machine
//! Learning Repository") over the synthetic stand-ins, and reports the
//! actually-generated sizes at the configured scale so the remaining
//! experiments are easy to interpret.

use serde::{Deserialize, Serialize};
use udt_data::repository::{table2_specs, UncertaintySource};

use crate::experiments::settings::Settings;
use crate::report::render_table;

/// One row of Table 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Data set name.
    pub name: String,
    /// Published tuple count.
    pub published_tuples: usize,
    /// Tuples generated at the configured scale.
    pub generated_tuples: usize,
    /// Number of numerical attributes.
    pub attributes: usize,
    /// Number of classes.
    pub classes: usize,
    /// "raw samples" or the injected error model family.
    pub uncertainty: String,
    /// Whether the attribute domains are integral.
    pub integer_domain: bool,
}

/// Runs the Table 2 inventory at the given settings.
pub fn run(settings: &Settings) -> udt_data::Result<Vec<Table2Row>> {
    let mut rows = Vec::new();
    for spec in table2_specs() {
        if !settings.includes(spec.name) {
            continue;
        }
        let generated = spec.generate(settings.scale)?;
        rows.push(Table2Row {
            name: spec.name.to_string(),
            published_tuples: spec.tuples,
            generated_tuples: generated.len(),
            attributes: spec.attributes,
            classes: spec.classes,
            uncertainty: match spec.uncertainty {
                UncertaintySource::RawSamples => "raw repeated measurements".to_string(),
                UncertaintySource::Injected => "injected (Gaussian/uniform)".to_string(),
            },
            integer_domain: spec.integer_domain,
        });
    }
    Ok(rows)
}

/// Renders the rows as a plain-text table.
pub fn render(rows: &[Table2Row]) -> String {
    render_table(
        "Table 2: data sets",
        &[
            "data set",
            "tuples (paper)",
            "tuples (generated)",
            "attributes",
            "classes",
            "uncertainty",
            "integer domain",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.published_tuples.to_string(),
                    r.generated_tuples.to_string(),
                    r.attributes.to_string(),
                    r.classes.to_string(),
                    r.uncertainty.clone(),
                    if r.integer_domain { "yes" } else { "no" }.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_covers_all_ten_datasets_at_default_settings() {
        let rows = run(&Settings::laptop()).unwrap();
        assert_eq!(rows.len(), 10);
        let jv = rows.iter().find(|r| r.name == "JapaneseVowel").unwrap();
        assert_eq!(jv.published_tuples, 640);
        assert_eq!(jv.attributes, 12);
        assert_eq!(jv.classes, 9);
        assert!(jv.uncertainty.contains("raw"));
        assert!(rows.iter().filter(|r| r.integer_domain).count() == 3);
    }

    #[test]
    fn smoke_settings_filter_datasets() {
        let rows = run(&Settings::smoke()).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.name == "Iris" || r.name == "Glass"));
        assert!(rows
            .iter()
            .all(|r| r.generated_tuples <= r.published_tuples));
    }

    #[test]
    fn render_contains_every_dataset_name() {
        let rows = run(&Settings::smoke()).unwrap();
        let text = render(&rows);
        for r in &rows {
            assert!(text.contains(&r.name));
        }
    }
}
