//! Serve-path accuracy parity (ISSUE 4 satellite).
//!
//! The evaluation harness (`udt_eval::accuracy::evaluate`) classifies
//! through the in-process batch engine. Production traffic goes through
//! `udt-serve`'s socket + micro-batching scheduler instead. This test
//! proves the two paths agree *exactly* on a non-trivial uncertain
//! workload: identical per-tuple distributions (to the bit), identical
//! predicted labels, identical accuracy.

use std::sync::Arc;

use udt_data::repository::by_name;
use udt_data::uncertainty::{inject_uncertainty, UncertaintySpec};
use udt_eval::accuracy::evaluate;
use udt_serve::{Client, ModelRegistry, ServeConfig, Server};
use udt_tree::classify::argmax_class;
use udt_tree::{classify_batch, Algorithm, BatchScratch, TreeBuilder, UdtConfig};

#[test]
fn served_evaluation_matches_the_direct_engine_exactly() {
    // A scaled "Iris"-shaped workload with injected Gaussian pdfs: big
    // enough to produce a real multi-level tree and genuinely fractional
    // classifications.
    let base = by_name("Iris")
        .expect("repository has Iris")
        .generate(0.25)
        .expect("generation succeeds");
    let data = inject_uncertainty(&base, &UncertaintySpec::baseline().with_s(12))
        .expect("uncertainty injection succeeds");
    let tree = TreeBuilder::new(UdtConfig::new(Algorithm::UdtEs))
        .build(&data)
        .expect("build succeeds")
        .tree;
    let k = tree.n_classes();

    // Direct engine: what `evaluate` uses internally.
    let direct_result = evaluate(&tree, &data);
    let mut scratch = BatchScratch::new();
    let direct = classify_batch(&tree, data.tuples(), &mut scratch).expect("direct batch");

    // Serving path: same tree behind a loopback socket.
    let registry = Arc::new(ModelRegistry::new());
    registry.insert_tree("iris", tree).expect("fresh name");
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    };
    let server = Server::bind(&config, registry).expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("clean run"));

    let mut client = Client::connect(addr).expect("connect");
    let (served, served_labels) = client
        .classify_batch("iris", data.tuples())
        .expect("served batch");

    // Bit-for-bit distribution parity, label parity, accuracy parity.
    let mut served_correct = 0usize;
    for (i, tuple) in data.tuples().iter().enumerate() {
        let expected = &direct[i * k..(i + 1) * k];
        for (a, b) in served[i].iter().zip(expected) {
            assert_eq!(a.to_bits(), b.to_bits(), "tuple {i}");
        }
        assert_eq!(served_labels[i], argmax_class(expected), "label {i}");
        if served_labels[i] == tuple.label() {
            served_correct += 1;
        }
    }
    assert_eq!(
        served_correct, direct_result.correct,
        "served accuracy equals evaluate()'s accuracy"
    );
    assert_eq!(direct_result.n, data.len());

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}
