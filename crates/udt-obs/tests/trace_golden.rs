//! Golden tests for the Chrome trace-event export: the JSON must parse,
//! every event must be a complete `X` event, and events on one thread
//! must be well-nested (properly contained or disjoint — never
//! partially overlapping). These tests activate the global collector,
//! so they live in their own integration-test process (the unit-test
//! binary asserts the *disabled* path) and serialise on a local mutex.

use std::sync::Mutex;
use std::time::Duration;

use udt_obs::trace;

static COLLECTOR: Mutex<()> = Mutex::new(());

fn with_collector<T>(depth_limit: usize, f: impl FnOnce() -> T) -> (T, Vec<trace::TraceEvent>) {
    let _guard = COLLECTOR.lock().unwrap_or_else(|p| p.into_inner());
    assert!(trace::start(depth_limit), "collector already active");
    let out = f();
    (out, trace::finish())
}

#[test]
fn start_is_exclusive() {
    let _guard = COLLECTOR.lock().unwrap_or_else(|p| p.into_inner());
    assert!(trace::start(8));
    assert!(!trace::start(8), "second start must be refused");
    assert!(trace::active());
    trace::finish();
    assert!(!trace::active());
}

#[test]
fn spans_record_nested_events_across_threads() {
    let (_, events) = with_collector(4, || {
        let outer = trace::span("build", "build").expect("collector is active");
        {
            let _inner = trace::node_span(2, "node", "node")
                .expect("depth 2 within limit")
                .with_arg("depth", 2);
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(
            trace::node_span(5, "node", "node").is_none(),
            "depth 5 exceeds the limit of 4"
        );
        let handle = std::thread::spawn(|| {
            let _s = trace::span("worker", "pool");
            std::thread::sleep(Duration::from_millis(1));
        });
        handle.join().unwrap();
        drop(outer);
    });

    assert_eq!(events.len(), 3, "build + node + worker");
    // Sorted parents-first: the enclosing build span leads.
    assert_eq!(events[0].name, "build");
    let node = events.iter().find(|e| e.name == "node").unwrap();
    assert_eq!(node.args, vec![("depth", 2)]);
    let worker = events.iter().find(|e| e.name == "worker").unwrap();
    assert_ne!(worker.tid, events[0].tid, "worker ran on its own thread");

    // The node span is contained in the build span.
    let build = &events[0];
    assert!(node.ts_ns >= build.ts_ns);
    assert!(node.ts_ns + node.dur_ns <= build.ts_ns + build.dur_ns);
}

#[test]
fn exported_json_parses_and_is_well_nested() {
    let (_, events) = with_collector(16, || {
        let _a = trace::span("phase-a", "phase");
        for depth in 1..=3u64 {
            let _n = trace::node_span(depth as usize, "node", "node")
                .expect("within limit")
                .with_arg("depth", depth);
            std::thread::sleep(Duration::from_micros(200));
        }
    });
    let json = trace::render_chrome_trace(&events);
    let doc: serde_json::Value = serde_json::from_str(&json).expect("trace JSON must parse");
    let trace_events = doc
        .get("traceEvents")
        .and_then(|v| v.as_seq())
        .expect("traceEvents array");
    assert_eq!(trace_events.len(), events.len());

    let as_num = |v: &serde_json::Value| match v {
        serde_json::Value::Num(n) => Some(*n),
        _ => None,
    };

    // Every event is complete: ph == "X" with name/cat/ts/dur/pid/tid.
    let mut per_tid: std::collections::BTreeMap<u64, Vec<(f64, f64)>> = Default::default();
    for e in trace_events {
        assert_eq!(e.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert!(e.get("name").and_then(|v| v.as_str()).is_some());
        assert!(e.get("cat").and_then(|v| v.as_str()).is_some());
        assert!(e.get("pid").and_then(as_num).is_some());
        let tid = e.get("tid").and_then(as_num).expect("tid") as u64;
        let ts = e.get("ts").and_then(as_num).expect("ts");
        let dur = e.get("dur").and_then(as_num).expect("dur");
        assert!(ts >= 0.0 && dur >= 0.0);
        per_tid.entry(tid).or_default().push((ts, ts + dur));
    }

    // Well-nested per thread: any two intervals are disjoint or one
    // contains the other.
    for intervals in per_tid.values() {
        for (i, &(s1, e1)) in intervals.iter().enumerate() {
            for &(s2, e2) in &intervals[i + 1..] {
                let disjoint = e1 <= s2 || e2 <= s1;
                let nested = (s1 <= s2 && e2 <= e1) || (s2 <= s1 && e1 <= e2);
                assert!(
                    disjoint || nested,
                    "events [{s1}, {e1}] and [{s2}, {e2}] partially overlap"
                );
            }
        }
    }
}

#[test]
fn spans_opened_before_finish_do_not_leak_into_the_next_trace() {
    let _guard = COLLECTOR.lock().unwrap_or_else(|p| p.into_inner());
    assert!(trace::start(8));
    let stale = trace::span("stale", "test");
    let first = trace::finish();
    assert!(first.is_empty());

    assert!(trace::start(8));
    drop(stale); // records nothing: its generation is gone
    let second = trace::finish();
    assert!(
        second.iter().all(|e| e.name != "stale"),
        "a span from a finished trace leaked into the next one"
    );
}

#[test]
fn write_chrome_trace_round_trips_through_a_file() {
    let (_, events) = with_collector(8, || {
        let _s = trace::span("io", "test");
    });
    let path = std::env::temp_dir().join(format!("udt_obs_trace_{}.json", std::process::id()));
    trace::write_chrome_trace(&path, &events).expect("write trace");
    let text = std::fs::read_to_string(&path).expect("read trace back");
    let doc: serde_json::Value = serde_json::from_str(&text).expect("parse trace file");
    assert!(doc.get("traceEvents").is_some());
    std::fs::remove_file(&path).ok();
}
