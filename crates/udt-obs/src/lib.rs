//! Process-wide observability substrate for the UDT workspace.
//!
//! Three primitives, all std-only and safe to leave enabled in
//! production builds:
//!
//! * [`Counter`] — a named, monotonically increasing `AtomicU64`
//!   incremented with `Ordering::Relaxed`. The hot-path cost of an
//!   increment is one uncontended atomic add; counters never allocate
//!   and never take locks.
//! * [`Gauge`] — a named `AtomicI64` that can move in both directions,
//!   for level-style quantities (circuit breakers currently open,
//!   connections active). Same relaxed-atomic cost model as counters.
//! * [`Histogram`] — 48 log2-bucketed atomic counters over nanosecond
//!   durations (bucket *i* covers `[2^i, 2^(i+1))` ns), mirroring the
//!   latency histograms `udt-serve` already exposes.
//! * spans ([`trace`]) — lightweight RAII guards that record Chrome
//!   trace-event JSON (complete `X` events) when tracing is active.
//!   When tracing is off — the default — a span site costs a single
//!   relaxed atomic load (see the `disabled_span_site_is_cheap` test
//!   and the `obs_overhead` bench in `udt-bench`).
//!
//! The [`catalog`] module holds the workspace-wide registry: every
//! counter and histogram the build engine (`udt-tree`), the
//! work-stealing pool, the score kernels, and the pruning searches
//! record into. [`render_prometheus_into`] renders the whole registry
//! as Prometheus text exposition, which `udt-serve` appends to its own
//! `stats --format prometheus` output so one endpoint exposes build,
//! pool, kernel, and request metrics together.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

pub mod catalog;
pub mod trace;

/// Number of log2 buckets in a [`Histogram`] (covers 1 ns .. ~2^48 ns,
/// i.e. more than three days, in power-of-two steps).
pub const HISTOGRAM_BUCKETS: usize = 48;

/// A named monotonic counter. Increments are `Ordering::Relaxed`: the
/// counters are statistical, never used for synchronisation.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    help: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter (const, so catalog entries can be `static`).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Counter {
            name,
            help,
            value: AtomicU64::new(0),
        }
    }

    /// The metric name (sanitised at render time, not here).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The help text rendered into the Prometheus `# HELP` line.
    pub fn help(&self) -> &'static str {
        self.help
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A named level gauge. Unlike a [`Counter`] it can decrease; like one,
/// every operation is a relaxed atomic and never allocates.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    help: &'static str,
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge (const, so catalog entries can be `static`).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Gauge {
            name,
            help,
            value: AtomicI64::new(0),
        }
    }

    /// The metric name (sanitised at render time, not here).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The help text rendered into the Prometheus `# HELP` line.
    pub fn help(&self) -> &'static str {
        self.help
    }

    /// Adds `delta` (possibly negative) to the gauge.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments the gauge by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrements the gauge by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Sets the gauge to an absolute value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A named histogram of nanosecond durations over [`HISTOGRAM_BUCKETS`]
/// log2 buckets, plus a running count and total. All fields are relaxed
/// atomics, so recording from many threads is lock-free.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    help: &'static str,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl Histogram {
    /// Creates a histogram (const, so catalog entries can be `static`).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        // `AtomicU64` is not `Copy`; the `[CONST; N]` repeat form is
        // the only way to build the array in a `const fn`. Each repeat
        // instantiates a fresh atomic, which is exactly what we want —
        // the shared-instance footgun the lint guards against does not
        // apply.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            help,
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        }
    }

    /// The metric name (sanitised at render time, not here).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The help text rendered into the Prometheus `# HELP` line.
    pub fn help(&self) -> &'static str {
        self.help
    }

    /// Records one observation of `ns` nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let bucket = (ns.max(1).ilog2() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded durations, in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// A relaxed snapshot of the per-bucket counts.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }
}

/// Sanitises `name` into a legal Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every illegal character becomes `_`,
/// and a leading digit is prefixed with `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let legal =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if legal {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a Prometheus label value (`\` → `\\`, `"` → `\"`, newline →
/// `\n`), matching the exposition-format quoting rules.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Renders one counter as Prometheus text exposition into `out`.
/// `labels` is pre-rendered (e.g. `algorithm="UDT-ES"`) or empty.
pub(crate) fn render_counter_into(
    out: &mut String,
    name: &str,
    help: &str,
    labels: &str,
    value: u64,
) {
    let name = sanitize_metric_name(name);
    if !help.is_empty() {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
    }
    if labels.is_empty() {
        out.push_str(&format!("{name} {value}\n"));
    } else {
        out.push_str(&format!("{name}{{{labels}}} {value}\n"));
    }
}

/// Renders one gauge as Prometheus text exposition into `out`.
fn render_gauge_into(out: &mut String, g: &Gauge) {
    let name = sanitize_metric_name(g.name());
    out.push_str(&format!(
        "# HELP {name} {}\n# TYPE {name} gauge\n{name} {}\n",
        g.help(),
        g.get()
    ));
}

/// Renders one histogram (seconds-valued, cumulative `le` buckets up to
/// the last non-empty one, then `+Inf`, `_sum`, `_count`) into `out`.
fn render_histogram_into(out: &mut String, h: &Histogram) {
    let name = sanitize_metric_name(h.name());
    out.push_str(&format!(
        "# HELP {name} {}\n# TYPE {name} histogram\n",
        h.help()
    ));
    let buckets = h.buckets();
    let last = buckets.iter().rposition(|&c| c > 0);
    let mut cumulative = 0u64;
    if let Some(last) = last {
        for (i, &c) in buckets.iter().enumerate().take(last + 1) {
            cumulative += c;
            // Bucket i covers [2^i, 2^(i+1)) ns; its upper bound in
            // seconds is 2^(i+1) / 1e9.
            let le = (1u128 << (i + 1)) as f64 / 1e9;
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
    out.push_str(&format!("{name}_sum {}\n", h.total_ns() as f64 / 1e9));
    out.push_str(&format!("{name}_count {}\n", h.count()));
}

/// Renders the whole [`catalog`] registry — counters, histograms, and
/// per-algorithm pruning metrics — as Prometheus text exposition,
/// appending to `out`. `udt-serve` calls this from its own renderer so
/// build/pool/kernel metrics share the endpoint with request metrics.
pub fn render_prometheus_into(out: &mut String) {
    for c in catalog::counters() {
        render_counter_into(out, c.name(), c.help(), "", c.get());
    }
    for g in catalog::gauges() {
        render_gauge_into(out, g);
    }
    for h in catalog::histograms() {
        render_histogram_into(out, h);
    }
    catalog::pruning::render_into(out);
}

/// Renders the registry as a standalone Prometheus exposition string.
pub fn render_prometheus() -> String {
    let mut out = String::new();
    render_prometheus_into(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        static C: Counter = Counter::new("test_counter", "a test counter");
        assert_eq!(C.get(), 0);
        C.incr();
        C.add(4);
        assert_eq!(C.get(), 5);
    }

    #[test]
    fn gauge_moves_both_ways_and_renders() {
        static G: Gauge = Gauge::new("test_gauge", "a test gauge");
        assert_eq!(G.get(), 0);
        G.inc();
        G.inc();
        G.dec();
        assert_eq!(G.get(), 1);
        G.add(-3);
        assert_eq!(G.get(), -2, "gauges may go negative");
        G.set(7);
        let mut out = String::new();
        render_gauge_into(&mut out, &G);
        assert!(out.contains("# TYPE test_gauge gauge\ntest_gauge 7\n"));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = Histogram::new("test_hist", "a test histogram");
        h.record_ns(0); // clamps to bucket 0
        h.record_ns(1);
        h.record_ns(2);
        h.record_ns(3);
        h.record_ns(1 << 20);
        let buckets = h.buckets();
        assert_eq!(buckets[0], 2);
        assert_eq!(buckets[1], 2);
        assert_eq!(buckets[20], 1);
        assert_eq!(h.count(), 5);
        assert_eq!(h.total_ns(), (1 << 20) + 6);
    }

    #[test]
    fn histogram_clamps_huge_values_to_last_bucket() {
        let h = Histogram::new("test_hist_huge", "");
        h.record_ns(u64::MAX);
        assert_eq!(h.buckets()[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn metric_name_sanitization() {
        assert_eq!(sanitize_metric_name("udt_pool_tasks"), "udt_pool_tasks");
        assert_eq!(sanitize_metric_name("udt.pool-tasks"), "udt_pool_tasks");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("a:b_c9"), "a:b_c9");
        assert_eq!(sanitize_metric_name("héllo wörld"), "h_llo_w_rld");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn label_value_escaping() {
        assert_eq!(escape_label_value("UDT-ES"), "UDT-ES");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
    }

    #[test]
    fn empty_histogram_renders_only_inf_bucket() {
        let h = Histogram::new("udt_test_empty_hist", "empty");
        let mut out = String::new();
        render_histogram_into(&mut out, &h);
        assert!(out.contains("# TYPE udt_test_empty_hist histogram"));
        assert!(out.contains("udt_test_empty_hist_bucket{le=\"+Inf\"} 0\n"));
        assert!(out.contains("udt_test_empty_hist_sum 0\n"));
        assert!(out.contains("udt_test_empty_hist_count 0\n"));
        // No finite buckets are rendered for an empty histogram.
        assert_eq!(out.matches("_bucket{").count(), 1);
    }

    #[test]
    fn histogram_render_is_cumulative() {
        let h = Histogram::new("udt_test_cum_hist", "cumulative");
        h.record_ns(1); // bucket 0
        h.record_ns(2); // bucket 1
        h.record_ns(5); // bucket 2
        let mut out = String::new();
        render_histogram_into(&mut out, &h);
        // le for bucket 0 is 2ns = 2e-9 s.
        assert!(
            out.contains("le=\"0.000000002\"}} 1\n") || out.contains("le=\"2e-9\"}} 1\n") || {
                // The exact float formatting is std's; just check cumulative
                // counts appear in order 1, 2, 3.
                let counts: Vec<&str> = out
                    .lines()
                    .filter(|l| l.contains("_bucket{le=") && !l.contains("+Inf"))
                    .collect();
                counts.len() == 3
                    && counts[0].ends_with(" 1")
                    && counts[1].ends_with(" 2")
                    && counts[2].ends_with(" 3")
            }
        );
        assert!(out.contains("udt_test_cum_hist_bucket{le=\"+Inf\"} 3\n"));
    }

    #[test]
    fn render_counter_sanitizes_and_labels() {
        let mut out = String::new();
        render_counter_into(
            &mut out,
            "my.metric",
            "help text",
            "algorithm=\"UDT-ES\"",
            7,
        );
        assert!(out.contains("# HELP my_metric help text\n"));
        assert!(out.contains("# TYPE my_metric counter\n"));
        assert!(out.contains("my_metric{algorithm=\"UDT-ES\"} 7\n"));
    }

    #[test]
    fn disabled_span_site_is_cheap() {
        // The disabled span path must stay a relaxed load, not a lock:
        // 10M sites under a very generous 1s budget (≈100 ns each —
        // orders of magnitude above the real cost, but robust to a busy
        // CI container).
        let started = std::time::Instant::now();
        let mut live = 0u64;
        for _ in 0..10_000_000u64 {
            if trace::span("x", "bench").is_some() {
                live += 1;
            }
        }
        assert_eq!(live, 0, "tracing must be off in this test");
        assert!(
            started.elapsed() < std::time::Duration::from_secs(1),
            "disabled span site took {:?} for 10M iterations",
            started.elapsed()
        );
    }
}
