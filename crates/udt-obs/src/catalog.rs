//! The workspace-wide metric registry: every counter and histogram the
//! build engine, work-stealing pool, score kernels, and pruning
//! searches record into. Entries are `static`, so hot-path recording is
//! a direct relaxed atomic op with no lookup; [`counters`] and
//! [`histograms`] enumerate them for rendering and snapshots.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{escape_label_value, render_counter_into, Counter, Gauge, Histogram};

// ---------------------------------------------------------------------
// Work-stealing pool (udt-tree/src/pool.rs)
// ---------------------------------------------------------------------

/// Tasks executed across all pools (workers and map-participating
/// callers alike).
pub static POOL_TASKS_EXECUTED: Counter = Counter::new(
    "udt_pool_tasks_executed_total",
    "Pool tasks executed, including by map-participating caller threads.",
);
/// Tasks a thread popped from another worker's deque.
pub static POOL_TASKS_STOLEN: Counter = Counter::new(
    "udt_pool_tasks_stolen_total",
    "Pool tasks stolen from another worker's deque.",
);
/// Tasks pushed onto the shared injector (external submissions).
pub static POOL_INJECTOR_PUSHES: Counter = Counter::new(
    "udt_pool_injector_pushes_total",
    "Tasks pushed onto a pool's shared injector queue by non-worker threads.",
);
/// Total worker nanoseconds spent parked waiting for work.
pub static POOL_IDLE_NS: Counter = Counter::new(
    "udt_pool_idle_nanoseconds_total",
    "Worker nanoseconds spent parked waiting for work.",
);
/// Distribution of individual idle park waits.
pub static POOL_IDLE_WAIT: Histogram = Histogram::new(
    "udt_pool_idle_wait_seconds",
    "Duration of individual worker idle waits.",
);

// ---------------------------------------------------------------------
// Score kernels (udt-tree/src/kernel/, events.rs)
// ---------------------------------------------------------------------

/// Candidate batches scored by the SIMD kernel.
pub static KERNEL_SIMD_BATCHES: Counter = Counter::new(
    "udt_kernel_simd_batches_total",
    "Candidate-score batches executed by the SIMD kernel.",
);
/// Candidate batches scored by the scalar kernel (the default profile).
pub static KERNEL_SCALAR_BATCHES: Counter = Counter::new(
    "udt_kernel_scalar_batches_total",
    "Candidate-score batches executed by the scalar kernel.",
);
/// Batches that requested SIMD but fell back to scalar (below the
/// minimum batch width).
pub static KERNEL_SIMD_FALLBACK_BATCHES: Counter = Counter::new(
    "udt_kernel_simd_fallback_batches_total",
    "SIMD-profile batches that fell back to scalar scoring (batch shorter than the SIMD minimum).",
);
/// Per-node cumulative count matrices built in f64.
pub static KERNEL_MATRIX_BUILDS_F64: Counter = Counter::new(
    "udt_kernel_matrix_builds_f64_total",
    "Per-node cumulative count matrices built with f64 storage.",
);
/// Per-node cumulative count matrices built in f32.
pub static KERNEL_MATRIX_BUILDS_F32: Counter = Counter::new(
    "udt_kernel_matrix_builds_f32_total",
    "Per-node cumulative count matrices built with f32 storage.",
);

// ---------------------------------------------------------------------
// Tree builds (udt-tree/src/builder.rs)
// ---------------------------------------------------------------------

/// Completed tree builds.
pub static BUILD_TOTAL: Counter = Counter::new("udt_builds_total", "Completed tree builds.");
/// Nodes across all built trees.
pub static BUILD_NODES: Counter =
    Counter::new("udt_build_nodes_total", "Nodes across all built trees.");
/// Nanoseconds in the root presort phase, summed over builds.
pub static BUILD_PRESORT_NS: Counter = Counter::new(
    "udt_build_presort_nanoseconds_total",
    "Nanoseconds spent in the root presort phase, summed over builds.",
);
/// Nanoseconds in per-node split search, summed over builds and threads.
pub static BUILD_SEARCH_NS: Counter = Counter::new(
    "udt_build_search_nanoseconds_total",
    "Nanoseconds spent in per-node split search, summed over builds and building threads.",
);
/// Nanoseconds partitioning node state, summed over builds and threads.
pub static BUILD_PARTITION_NS: Counter = Counter::new(
    "udt_build_partition_nanoseconds_total",
    "Nanoseconds spent partitioning node state, summed over builds and building threads.",
);
/// Nanoseconds grafting subtree fragments, summed over builds.
pub static BUILD_GRAFT_NS: Counter = Counter::new(
    "udt_build_graft_nanoseconds_total",
    "Nanoseconds spent grafting subtree fragments and renumbering arenas, summed over builds.",
);
/// Distribution of per-node split-search durations.
pub static NODE_SEARCH_DURATION: Histogram = Histogram::new(
    "udt_build_node_search_seconds",
    "Per-node split-search duration.",
);

// ---------------------------------------------------------------------
// Replica-set serving (udt-serve/src/client.rs, registry.rs)
// ---------------------------------------------------------------------

/// Counters and breaker-state gauges for the replica-set client and the
/// model store. The counters live here — not in `udt-serve`'s per-model
/// metrics map — because the failing-over side is the *client*: the same
/// statics record in `udt-client`, in embedding applications, and in the
/// server process itself (a server using a `ReplicaSet` to call peers),
/// and whichever process renders the exposition reports its own view.
pub mod serve {
    use super::{Counter, Gauge};

    /// Requests that failed on one replica and were retried on another.
    pub static FAILOVERS: Counter = Counter::new(
        "udt_replica_failovers_total",
        "Requests re-routed to another replica after a transient failure.",
    );
    /// Hedged duplicate requests launched after the hedge delay expired.
    pub static HEDGES_LAUNCHED: Counter = Counter::new(
        "udt_replica_hedges_launched_total",
        "Hedged duplicate requests launched against a second replica.",
    );
    /// Hedged duplicates that answered before the primary.
    pub static HEDGES_WON: Counter = Counter::new(
        "udt_replica_hedges_won_total",
        "Hedged duplicate requests that answered before the primary attempt.",
    );
    /// Corrupt model files set aside at startup preload.
    pub static MODELS_QUARANTINED: Counter = Counter::new(
        "udt_serve_models_quarantined_total",
        "Model files quarantined at startup preload instead of being served.",
    );
    /// Endpoint circuit breakers currently Closed (healthy).
    pub static BREAKERS_CLOSED: Gauge = Gauge::new(
        "udt_replica_breakers_closed",
        "Endpoint circuit breakers currently in the Closed (healthy) state.",
    );
    /// Endpoint circuit breakers currently Open (cooling down).
    pub static BREAKERS_OPEN: Gauge = Gauge::new(
        "udt_replica_breakers_open",
        "Endpoint circuit breakers currently in the Open (cooling down) state.",
    );
    /// Endpoint circuit breakers currently HalfOpen (probing).
    pub static BREAKERS_HALF_OPEN: Gauge = Gauge::new(
        "udt_replica_breakers_half_open",
        "Endpoint circuit breakers currently in the HalfOpen (probing) state.",
    );
}

static ALL_COUNTERS: [&Counter; 19] = [
    &BUILD_TOTAL,
    &BUILD_NODES,
    &BUILD_PRESORT_NS,
    &BUILD_SEARCH_NS,
    &BUILD_PARTITION_NS,
    &BUILD_GRAFT_NS,
    &POOL_TASKS_EXECUTED,
    &POOL_TASKS_STOLEN,
    &POOL_INJECTOR_PUSHES,
    &POOL_IDLE_NS,
    &KERNEL_SIMD_BATCHES,
    &KERNEL_SCALAR_BATCHES,
    &KERNEL_SIMD_FALLBACK_BATCHES,
    &KERNEL_MATRIX_BUILDS_F64,
    &KERNEL_MATRIX_BUILDS_F32,
    &serve::FAILOVERS,
    &serve::HEDGES_LAUNCHED,
    &serve::HEDGES_WON,
    &serve::MODELS_QUARANTINED,
];

static ALL_GAUGES: [&Gauge; 3] = [
    &serve::BREAKERS_CLOSED,
    &serve::BREAKERS_OPEN,
    &serve::BREAKERS_HALF_OPEN,
];

static ALL_HISTOGRAMS: [&Histogram; 2] = [&NODE_SEARCH_DURATION, &POOL_IDLE_WAIT];

/// Every registered counter, in render order.
pub fn counters() -> &'static [&'static Counter] {
    &ALL_COUNTERS
}

/// Every registered gauge, in render order.
pub fn gauges() -> &'static [&'static Gauge] {
    &ALL_GAUGES
}

/// Every registered histogram, in render order.
pub fn histograms() -> &'static [&'static Histogram] {
    &ALL_HISTOGRAMS
}

/// Records the per-build aggregates the builder flushes once per
/// completed build (hot-path increments stay in the builder's private
/// `SearchStats`, preserving the determinism contract; this is one
/// batch of relaxed adds at the end).
pub fn record_build(nodes: u64, presort_ns: u64, search_ns: u64, partition_ns: u64, graft_ns: u64) {
    BUILD_TOTAL.incr();
    BUILD_NODES.add(nodes);
    BUILD_PRESORT_NS.add(presort_ns);
    BUILD_SEARCH_NS.add(search_ns);
    BUILD_PARTITION_NS.add(partition_ns);
    BUILD_GRAFT_NS.add(graft_ns);
}

/// Per-algorithm pruning-effectiveness counters — the paper's headline
/// quantities (candidates considered vs. pruned vs. scored, plus the
/// eq. 3/4 interval-bound hit counters) as live process metrics.
pub mod pruning {
    use super::*;

    /// The algorithm labels tracked as distinct Prometheus series. The
    /// final slot aggregates any unrecognised name.
    pub const ALGORITHMS: [&str; 7] = [
        "AVG", "UDT", "UDT-BP", "UDT-LP", "UDT-GP", "UDT-ES", "other",
    ];

    #[derive(Debug)]
    struct AlgoStats {
        candidates: AtomicU64,
        scored: AtomicU64,
        intervals_pruned_bound: AtomicU64,
        intervals_pruned_theorem: AtomicU64,
        bound_calculations: AtomicU64,
    }

    impl AlgoStats {
        const fn new() -> Self {
            AlgoStats {
                candidates: AtomicU64::new(0),
                scored: AtomicU64::new(0),
                intervals_pruned_bound: AtomicU64::new(0),
                intervals_pruned_theorem: AtomicU64::new(0),
                bound_calculations: AtomicU64::new(0),
            }
        }
    }

    static STATS: [AlgoStats; ALGORITHMS.len()] = [
        AlgoStats::new(),
        AlgoStats::new(),
        AlgoStats::new(),
        AlgoStats::new(),
        AlgoStats::new(),
        AlgoStats::new(),
        AlgoStats::new(),
    ];

    fn slot(algorithm: &str) -> &'static AlgoStats {
        let i = ALGORITHMS
            .iter()
            .position(|&a| a == algorithm)
            .unwrap_or(ALGORITHMS.len() - 1);
        &STATS[i]
    }

    /// A point-in-time view of one algorithm's pruning counters.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct PruningSnapshot {
        /// Candidate split points considered.
        pub candidates: u64,
        /// Candidates actually scored (end points + surviving interior).
        pub scored: u64,
        /// Intervals discarded by the eq. 3/4 lower bound.
        pub intervals_pruned_bound: u64,
        /// Intervals discarded outright by theorems 1–3.
        pub intervals_pruned_theorem: u64,
        /// Interval lower bounds computed.
        pub bound_calculations: u64,
    }

    impl PruningSnapshot {
        /// Candidates never scored (pruned away before scoring).
        pub fn pruned(&self) -> u64 {
            self.candidates.saturating_sub(self.scored)
        }

        /// Fraction of candidates pruned (0 when none were considered).
        pub fn prune_fraction(&self) -> f64 {
            if self.candidates == 0 {
                0.0
            } else {
                self.pruned() as f64 / self.candidates as f64
            }
        }
    }

    /// Accumulates one build's pruning totals under `algorithm`.
    pub fn record(algorithm: &str, snapshot: PruningSnapshot) {
        let s = slot(algorithm);
        s.candidates
            .fetch_add(snapshot.candidates, Ordering::Relaxed);
        s.scored.fetch_add(snapshot.scored, Ordering::Relaxed);
        s.intervals_pruned_bound
            .fetch_add(snapshot.intervals_pruned_bound, Ordering::Relaxed);
        s.intervals_pruned_theorem
            .fetch_add(snapshot.intervals_pruned_theorem, Ordering::Relaxed);
        s.bound_calculations
            .fetch_add(snapshot.bound_calculations, Ordering::Relaxed);
    }

    /// The accumulated counters for `algorithm` (the catch-all slot for
    /// unrecognised names).
    pub fn snapshot(algorithm: &str) -> PruningSnapshot {
        let s = slot(algorithm);
        PruningSnapshot {
            candidates: s.candidates.load(Ordering::Relaxed),
            scored: s.scored.load(Ordering::Relaxed),
            intervals_pruned_bound: s.intervals_pruned_bound.load(Ordering::Relaxed),
            intervals_pruned_theorem: s.intervals_pruned_theorem.load(Ordering::Relaxed),
            bound_calculations: s.bound_calculations.load(Ordering::Relaxed),
        }
    }

    /// Renders the per-algorithm series (algorithms with zero recorded
    /// candidates are skipped to keep the exposition compact).
    pub(crate) fn render_into(out: &mut String) {
        let rows: Vec<(&str, PruningSnapshot)> = ALGORITHMS
            .iter()
            .map(|&a| (a, snapshot(a)))
            .filter(|(_, s)| s.candidates > 0)
            .collect();
        if rows.is_empty() {
            return;
        }
        type SeriesGetter = fn(&PruningSnapshot) -> u64;
        let series: [(&str, &str, SeriesGetter); 5] = [
            (
                "udt_split_candidates_total",
                "Candidate split points considered, by algorithm.",
                |s| s.candidates,
            ),
            (
                "udt_split_candidates_scored_total",
                "Candidate split points actually scored, by algorithm.",
                |s| s.scored,
            ),
            (
                "udt_split_candidates_pruned_total",
                "Candidate split points pruned before scoring, by algorithm.",
                |s| s.pruned(),
            ),
            (
                "udt_split_intervals_pruned_bound_total",
                "Intervals discarded by the eq. 3/4 lower bound, by algorithm.",
                |s| s.intervals_pruned_bound,
            ),
            (
                "udt_split_intervals_pruned_theorem_total",
                "Intervals discarded outright by pruning theorems 1-3, by algorithm.",
                |s| s.intervals_pruned_theorem,
            ),
        ];
        for (name, help, get) in series {
            for (i, (algorithm, snap)) in rows.iter().enumerate() {
                let label = format!("algorithm=\"{}\"", escape_label_value(algorithm));
                render_counter_into(out, name, if i == 0 { help } else { "" }, &label, get(snap));
            }
        }
        // The fraction is a derived gauge, rendered for convenience.
        out.push_str(
            "# HELP udt_split_prune_fraction Fraction of candidate split points pruned before scoring, by algorithm.\n# TYPE udt_split_prune_fraction gauge\n",
        );
        for (algorithm, snap) in &rows {
            out.push_str(&format!(
                "udt_split_prune_fraction{{algorithm=\"{}\"}} {:.6}\n",
                escape_label_value(algorithm),
                snap.prune_fraction()
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_legal() {
        let mut names: Vec<&str> = counters().iter().map(|c| c.name()).collect();
        names.extend(gauges().iter().map(|g| g.name()));
        names.extend(histograms().iter().map(|h| h.name()));
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "duplicate metric names");
        for name in names {
            assert_eq!(
                crate::sanitize_metric_name(name),
                name,
                "catalog names must already be legal"
            );
        }
    }

    #[test]
    fn pruning_records_accumulate_per_algorithm() {
        let before = pruning::snapshot("UDT-GP");
        pruning::record(
            "UDT-GP",
            pruning::PruningSnapshot {
                candidates: 100,
                scored: 25,
                intervals_pruned_bound: 7,
                intervals_pruned_theorem: 3,
                bound_calculations: 20,
            },
        );
        let after = pruning::snapshot("UDT-GP");
        assert_eq!(after.candidates - before.candidates, 100);
        assert_eq!(after.scored - before.scored, 25);
        assert_eq!(
            after.intervals_pruned_bound - before.intervals_pruned_bound,
            7
        );
        assert_eq!(
            after.intervals_pruned_theorem - before.intervals_pruned_theorem,
            3
        );
        let snap = pruning::PruningSnapshot {
            candidates: 100,
            scored: 25,
            ..Default::default()
        };
        assert_eq!(snap.pruned(), 75);
        assert!((snap.prune_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn unknown_algorithm_lands_in_the_catch_all_slot() {
        let before = pruning::snapshot("other");
        pruning::record(
            "UDT-FUTURE",
            pruning::PruningSnapshot {
                candidates: 5,
                scored: 5,
                ..Default::default()
            },
        );
        let after = pruning::snapshot("other");
        assert_eq!(after.candidates - before.candidates, 5);
    }

    #[test]
    fn prometheus_render_includes_recorded_series() {
        pruning::record(
            "UDT-ES",
            pruning::PruningSnapshot {
                candidates: 1000,
                scored: 100,
                intervals_pruned_bound: 40,
                intervals_pruned_theorem: 10,
                bound_calculations: 90,
            },
        );
        KERNEL_SCALAR_BATCHES.incr();
        let text = crate::render_prometheus();
        assert!(text.contains("# TYPE udt_kernel_scalar_batches_total counter"));
        assert!(text.contains("# TYPE udt_replica_failovers_total counter"));
        assert!(text.contains("# TYPE udt_replica_breakers_open gauge"));
        assert!(text.contains("# TYPE udt_serve_models_quarantined_total counter"));
        assert!(text.contains("udt_split_candidates_total{algorithm=\"UDT-ES\"}"));
        assert!(text.contains("udt_split_prune_fraction{algorithm=\"UDT-ES\"}"));
        assert!(text.contains("# TYPE udt_build_node_search_seconds histogram"));
        assert!(text.contains("udt_pool_idle_wait_seconds_bucket{le=\"+Inf\"}"));
    }
}
