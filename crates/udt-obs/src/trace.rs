//! Lightweight spans with Chrome trace-event export.
//!
//! Tracing is off by default and the disabled fast path is a single
//! relaxed atomic load per span site, so instrumentation stays in the
//! build hot path unconditionally. When a collector is active
//! ([`start`]), every [`span`] that drops records one **complete**
//! Chrome trace event (`"ph": "X"` — begin time plus duration, so the
//! exported JSON is well-nested by construction) into a process-global
//! buffer; [`finish`] drains the buffer and [`write_chrome_trace`]
//! serialises it into a JSON file loadable by Perfetto or
//! `chrome://tracing`.
//!
//! Per-node spans go through [`node_span`], which additionally gates on
//! the depth limit passed to [`start`] (wired to `UDT_TRACE_DEPTH` by
//! the builder) so deep trees don't produce multi-gigabyte traces.
//!
//! One collector can be active at a time: [`start`] returns `false`
//! when tracing is already live, and concurrent builds simply skip
//! activation (their span sites still cost only the relaxed load).

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Whether a collector is currently active (one relaxed load — the
/// entire cost of a span site while tracing is off).
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Maximum node depth for [`node_span`] while the collector is active.
static NODE_DEPTH_LIMIT: AtomicUsize = AtomicUsize::new(0);
/// Collector generation: spans stamp it at creation and only record on
/// drop if it is unchanged, so a span outliving [`finish`] can never
/// leak into the next collector's buffer.
static GENERATION: AtomicU64 = AtomicU64::new(0);
/// Recorded events for the active collector.
static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
/// Monotonic source for per-thread trace ids.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// A small stable integer naming this thread in the trace.
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// The process-wide trace epoch: all timestamps are relative to the
/// first collector activation, keeping `ts` values small and positive.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// One complete (`"ph": "X"`) Chrome trace event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name (static — dynamic values travel in [`args`](Self::args)).
    pub name: &'static str,
    /// Event category (`cat` in the JSON).
    pub cat: &'static str,
    /// Start time in nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// The recording thread's trace id.
    pub tid: u64,
    /// Numeric key/value annotations (`args` in the JSON).
    pub args: Vec<(&'static str, u64)>,
}

/// Activates the collector. `node_depth_limit` caps the depth at which
/// [`node_span`] still records (depth values are 1-based like the
/// builder's). Returns `false` — and changes nothing — if a collector
/// is already active.
pub fn start(node_depth_limit: usize) -> bool {
    if ENABLED
        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return false;
    }
    epoch(); // pin the epoch before the first span
    NODE_DEPTH_LIMIT.store(node_depth_limit, Ordering::SeqCst);
    GENERATION.fetch_add(1, Ordering::SeqCst);
    lock_events().clear();
    true
}

/// Whether a collector is currently active.
pub fn active() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Deactivates the collector and returns its events, sorted by start
/// time (ties broken longest-first so parents precede their children).
pub fn finish() -> Vec<TraceEvent> {
    GENERATION.fetch_add(1, Ordering::SeqCst);
    ENABLED.store(false, Ordering::SeqCst);
    let mut events = std::mem::take(&mut *lock_events());
    events.sort_by(|a, b| {
        a.ts_ns
            .cmp(&b.ts_ns)
            .then(b.dur_ns.cmp(&a.dur_ns))
            .then(a.tid.cmp(&b.tid))
    });
    events
}

/// Locks the event buffer, recovering from a poisoned lock (a panicking
/// span drop must not take tracing down with it).
fn lock_events() -> std::sync::MutexGuard<'static, Vec<TraceEvent>> {
    EVENTS.lock().unwrap_or_else(|p| p.into_inner())
}

/// An RAII span: records one complete trace event when dropped.
#[must_use = "a span records its duration when dropped"]
pub struct Span {
    name: &'static str,
    cat: &'static str,
    started: Instant,
    generation: u64,
    args: Vec<(&'static str, u64)>,
}

impl Span {
    /// Attaches a numeric annotation (rendered under `args`).
    pub fn with_arg(mut self, key: &'static str, value: u64) -> Self {
        self.args.push((key, value));
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_ns = self.started.elapsed().as_nanos() as u64;
        if !ENABLED.load(Ordering::Relaxed) || GENERATION.load(Ordering::Relaxed) != self.generation
        {
            return;
        }
        let ts_ns = self
            .started
            .checked_duration_since(epoch())
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let tid = TID.with(|t| *t);
        lock_events().push(TraceEvent {
            name: self.name,
            cat: self.cat,
            ts_ns,
            dur_ns,
            tid,
            args: std::mem::take(&mut self.args),
        });
    }
}

/// Opens a span. Returns `None` — after exactly one relaxed atomic
/// load — when no collector is active.
#[inline]
pub fn span(name: &'static str, cat: &'static str) -> Option<Span> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    Some(Span {
        name,
        cat,
        started: Instant::now(),
        generation: GENERATION.load(Ordering::Relaxed),
        args: Vec::new(),
    })
}

/// Opens a per-node span, additionally gated on the collector's node
/// depth limit — nodes deeper than the limit record nothing.
#[inline]
pub fn node_span(depth: usize, name: &'static str, cat: &'static str) -> Option<Span> {
    if !ENABLED.load(Ordering::Relaxed) || depth > NODE_DEPTH_LIMIT.load(Ordering::Relaxed) {
        return None;
    }
    span(name, cat)
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders events as a Chrome trace-event JSON document (the
/// `{"traceEvents": [...]}` object form; timestamps and durations in
/// fractional microseconds, as the format specifies).
pub fn render_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}",
            json_escape(e.name),
            json_escape(e.cat),
            e.tid,
            e.ts_ns as f64 / 1e3,
            e.dur_ns as f64 / 1e3,
        ));
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", json_escape(k), v));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// Writes events to `path` as Chrome trace-event JSON.
pub fn write_chrome_trace(path: &Path, events: &[TraceEvent]) -> std::io::Result<()> {
    std::fs::write(path, render_chrome_trace(events))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests that *activate* the collector live in tests/trace_golden.rs
    // (their own process) so they cannot race the disabled-path
    // assertions in the unit-test binary.

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("nl\ntab\t"), "nl\\ntab\\t");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn render_produces_complete_events() {
        let events = vec![
            TraceEvent {
                name: "build",
                cat: "build",
                ts_ns: 0,
                dur_ns: 5_000_000,
                tid: 1,
                args: vec![],
            },
            TraceEvent {
                name: "node",
                cat: "node",
                ts_ns: 1_000,
                dur_ns: 2_000,
                tid: 1,
                args: vec![("depth", 1), ("alive", 42)],
            },
        ];
        let json = render_chrome_trace(&events);
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"args\":{\"depth\":1,\"alive\":42}"));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":2.000"));
    }

    #[test]
    fn render_empty_trace_is_valid() {
        let json = render_chrome_trace(&[]);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"traceEvents\":[\n]}"));
    }
}
