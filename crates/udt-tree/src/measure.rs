//! Dispersion measures and their interval lower bounds.
//!
//! The paper's `BestSplit` minimises a dispersion score over candidate
//! splits (eq. 1 uses entropy; §7.4 extends the results to the Gini index
//! and discusses gain ratio). [`Measure`] provides:
//!
//! * `dispersion` — the impurity of one set of class counts;
//! * `split_score` — the weighted impurity of a binary partition, the
//!   quantity minimised by every split-search algorithm (lower = better);
//! * `interval_lower_bound` — the paper's eq. 3 (entropy) / eq. 4 (Gini)
//!   lower bound on `split_score` over every split point inside a
//!   heterogeneous interval, the engine behind UDT-LP / UDT-GP / UDT-ES;
//! * `supports_homogeneous_pruning` — Theorem 2 holds for entropy and Gini
//!   but not for gain ratio (§7.4), so UDT-BP-style interior pruning of
//!   homogeneous intervals must be disabled for gain ratio.

use serde::{Deserialize, Serialize};
use udt_prob::stats::xlog2x;

use crate::counts::{clamp_residue, ClassCounts, WEIGHT_EPSILON};

/// A dispersion (impurity) measure for split selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Measure {
    /// Shannon entropy / information gain — the paper's default (eq. 1).
    Entropy,
    /// Gini index (§7.4, eq. 4 bound).
    Gini,
    /// Gain ratio (§7.4). Homogeneous-interval pruning is disabled and no
    /// heterogeneous lower bound is available, so only empty-interval
    /// pruning applies.
    GainRatio,
}

impl Measure {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Measure::Entropy => "entropy",
            Measure::Gini => "gini",
            Measure::GainRatio => "gain-ratio",
        }
    }

    /// Impurity of a single set of class counts: entropy in bits, or the
    /// Gini impurity. Gain ratio uses entropy as its set impurity.
    pub fn dispersion(&self, counts: &ClassCounts) -> f64 {
        let total = counts.total();
        if total <= 0.0 {
            return 0.0;
        }
        match self {
            Measure::Entropy | Measure::GainRatio => -counts
                .as_slice()
                .iter()
                .map(|&c| xlog2x(c / total))
                .sum::<f64>(),
            Measure::Gini => {
                1.0 - counts
                    .as_slice()
                    .iter()
                    .map(|&c| {
                        let p = c / total;
                        p * p
                    })
                    .sum::<f64>()
            }
        }
    }

    /// Score of a binary split into `left` / `right`; **lower is better**
    /// for every measure.
    ///
    /// * Entropy / Gini: the weighted impurity
    ///   `Σ_{X∈{L,R}} |X|/|S| · dispersion(X)` (eq. 1).
    /// * Gain ratio: `−(H(S) − H_split) / SplitInfo`, negated so that the
    ///   minimisation convention still applies; degenerate splits (zero
    ///   split information) score `+∞`.
    pub fn split_score(&self, left: &ClassCounts, right: &ClassCounts) -> f64 {
        let nl = left.total();
        let nr = right.total();
        let n = nl + nr;
        if n <= 0.0 {
            return f64::INFINITY;
        }
        match self {
            Measure::Entropy | Measure::Gini => {
                (nl / n) * self.dispersion(left) + (nr / n) * self.dispersion(right)
            }
            Measure::GainRatio => {
                if nl <= 0.0 || nr <= 0.0 {
                    return f64::INFINITY;
                }
                let mut parent = left.clone();
                parent.add_counts(right);
                let gain = Measure::Entropy.dispersion(&parent)
                    - ((nl / n) * Measure::Entropy.dispersion(left)
                        + (nr / n) * Measure::Entropy.dispersion(right));
                let split_info = -(xlog2x(nl / n) + xlog2x(nr / n));
                if split_info <= 0.0 {
                    f64::INFINITY
                } else {
                    -(gain / split_info)
                }
            }
        }
    }

    /// Score of a multi-way split into the given parts (used for
    /// categorical attributes, §7.2); **lower is better**, consistent with
    /// [`split_score`](Self::split_score).
    pub fn multiway_score(&self, parts: &[ClassCounts]) -> f64 {
        let n: f64 = parts.iter().map(ClassCounts::total).sum();
        if n <= 0.0 {
            return f64::INFINITY;
        }
        match self {
            Measure::Entropy | Measure::Gini => parts
                .iter()
                .map(|p| (p.total() / n) * self.dispersion(p))
                .sum(),
            Measure::GainRatio => {
                let mut parent = ClassCounts::new(parts[0].n_classes());
                for p in parts {
                    parent.add_counts(p);
                }
                let weighted: f64 = parts
                    .iter()
                    .map(|p| (p.total() / n) * Measure::Entropy.dispersion(p))
                    .sum();
                let gain = Measure::Entropy.dispersion(&parent) - weighted;
                let split_info: f64 = -parts.iter().map(|p| xlog2x(p.total() / n)).sum::<f64>();
                if split_info <= 0.0 {
                    f64::INFINITY
                } else {
                    -(gain / split_info)
                }
            }
        }
    }

    /// Whether Theorem 2 (homogeneous-interval interior pruning) holds for
    /// this measure. True for the strictly convex entropy and Gini; false
    /// for gain ratio (§7.4).
    pub fn supports_homogeneous_pruning(&self) -> bool {
        !matches!(self, Measure::GainRatio)
    }

    /// Zero-allocation [`split_score`](Self::split_score) over the
    /// columnar cumulative layout: `left` is the cumulative per-class mass
    /// row at the candidate position and `total` the final cumulative row,
    /// so the right-side count of class `c` is `total[c] − left[c]`
    /// (computed on the fly, with the same tiny-negative clamping as
    /// [`ClassCounts::sub_counts`]). Splits that leave either side without
    /// mass score `+∞`, matching the old per-candidate semantics.
    ///
    /// The arithmetic deliberately mirrors the counter-based path
    /// operation for operation so the two produce bit-identical scores
    /// (asserted by the `baseline` regression tests).
    pub fn split_score_cum(&self, left: &[f64], total: &[f64]) -> f64 {
        debug_assert_eq!(left.len(), total.len());
        // The right-side residues are needed up to three times per class
        // (total mass, per-class term, gain-ratio parent), so they are
        // materialised once on the stack instead of re-deriving the
        // clamped subtraction at every use.
        with_class_row(
            left.len(),
            |c| clamp_residue(total[c] - left[c]),
            |right| self.split_score_cum_hoisted(left, right),
        )
    }

    /// [`split_score_cum`](Self::split_score_cum) with the right-side
    /// residues already materialised; the per-class arithmetic and its
    /// order are unchanged, so the hoisting is bit-identical.
    fn split_score_cum_hoisted(&self, left: &[f64], right: &[f64]) -> f64 {
        let nl: f64 = left.iter().sum();
        let nr: f64 = right.iter().sum();
        if nl <= WEIGHT_EPSILON || nr <= WEIGHT_EPSILON {
            return f64::INFINITY;
        }
        let n = nl + nr;
        match self {
            Measure::Entropy => {
                let h_left = -left.iter().map(|&c| xlog2x(c / nl)).sum::<f64>();
                let h_right = -right.iter().map(|&c| xlog2x(c / nr)).sum::<f64>();
                (nl / n) * h_left + (nr / n) * h_right
            }
            Measure::Gini => {
                let g = |c: f64, t: f64| {
                    let p = c / t;
                    p * p
                };
                let g_left = 1.0 - left.iter().map(|&c| g(c, nl)).sum::<f64>();
                let g_right = 1.0 - right.iter().map(|&c| g(c, nr)).sum::<f64>();
                (nl / n) * g_left + (nr / n) * g_right
            }
            Measure::GainRatio => {
                let h_parent = -(0..left.len())
                    .map(|c| xlog2x((left[c] + right[c]) / n))
                    .sum::<f64>();
                let h_left = -left.iter().map(|&c| xlog2x(c / nl)).sum::<f64>();
                let h_right = -right.iter().map(|&c| xlog2x(c / nr)).sum::<f64>();
                let gain = h_parent - ((nl / n) * h_left + (nr / n) * h_right);
                let split_info = -(xlog2x(nl / n) + xlog2x(nr / n));
                if split_info <= 0.0 {
                    f64::INFINITY
                } else {
                    -(gain / split_info)
                }
            }
        }
    }

    /// Zero-allocation [`interval_lower_bound`](Self::interval_lower_bound)
    /// over the columnar cumulative layout: given the cumulative rows at
    /// the interval's two end points and the final (total) row, derives
    /// the §5.2 counts on the fly — `n_c = cum_lo[c]`,
    /// `k_c = cum_hi[c] − cum_lo[c]`, `m_c = total[c] − cum_hi[c]` — and
    /// evaluates eq. 3 / eq. 4 without materialising any counter.
    pub fn interval_lower_bound_cum(&self, cum_lo: &[f64], cum_hi: &[f64], total: &[f64]) -> f64 {
        debug_assert_eq!(cum_lo.len(), total.len());
        debug_assert_eq!(cum_hi.len(), total.len());
        if matches!(self, Measure::GainRatio) {
            return f64::NEG_INFINITY;
        }
        let classes = cum_lo.len();
        // Each inside/above residue is read twice (mass total + bound
        // term); materialise the clamped subtractions once on the stack.
        with_class_row(
            classes,
            |c| clamp_residue(cum_hi[c] - cum_lo[c]),
            |inside| {
                with_class_row(
                    classes,
                    |c| clamp_residue(total[c] - cum_hi[c]),
                    |above| {
                        let n: f64 = cum_lo.iter().sum();
                        let m: f64 = above.iter().sum();
                        let k_total: f64 = inside.iter().sum();
                        let grand_total = n + m + k_total;
                        if grand_total <= 0.0 {
                            return f64::NEG_INFINITY;
                        }
                        let mut sum = 0.0;
                        for c in 0..classes {
                            let nc = cum_lo[c];
                            let mc = above[c];
                            let kc = inside[c];
                            let theta = safe_ratio(nc + kc, n + kc);
                            let phi = safe_ratio(mc + kc, m + kc);
                            match self {
                                Measure::Entropy => {
                                    sum += nc * safe_log2(theta)
                                        + mc * safe_log2(phi)
                                        + kc * safe_log2(theta.max(phi));
                                }
                                Measure::Gini => {
                                    sum += nc * theta + mc * phi + kc * theta.max(phi);
                                }
                                Measure::GainRatio => unreachable!("returned above"),
                            }
                        }
                        match self {
                            Measure::Entropy => -sum / grand_total,
                            Measure::Gini => 1.0 - sum / grand_total,
                            Measure::GainRatio => unreachable!("returned above"),
                        }
                    },
                )
            },
        )
    }

    /// Lower bound of [`split_score`](Self::split_score) over every split
    /// point in the interior of a heterogeneous interval `(a, b]`, given
    /// the per-class counts strictly below the interval (`below` = `n_c`),
    /// inside it (`inside` = `k_c`) and strictly above it (`above` =
    /// `m_c`). Implements eq. 3 for entropy and eq. 4 for Gini; returns
    /// `−∞` (no pruning possible) for gain ratio.
    pub fn interval_lower_bound(
        &self,
        below: &ClassCounts,
        inside: &ClassCounts,
        above: &ClassCounts,
    ) -> f64 {
        let classes = below.n_classes();
        let n: f64 = below.total();
        let m: f64 = above.total();
        let k_total: f64 = inside.total();
        let grand_total = n + m + k_total;
        if grand_total <= 0.0 {
            return f64::NEG_INFINITY;
        }
        match self {
            Measure::Entropy => {
                // eq. 3:  L = −1/N Σ_c [ n_c log2 θ_c + m_c log2 φ_c
                //                        + k_c log2 max(θ_c, φ_c) ]
                // with θ_c = (n_c + k_c)/(n + k_c), φ_c = (m_c + k_c)/(m + k_c).
                let mut sum = 0.0;
                for c in 0..classes {
                    let nc = below.get(c);
                    let mc = above.get(c);
                    let kc = inside.get(c);
                    let theta = safe_ratio(nc + kc, n + kc);
                    let phi = safe_ratio(mc + kc, m + kc);
                    sum += nc * safe_log2(theta)
                        + mc * safe_log2(phi)
                        + kc * safe_log2(theta.max(phi));
                }
                -sum / grand_total
            }
            Measure::Gini => {
                // Gini analogue of eq. 3 (the paper's eq. 4 plays the same
                // role; this reformulation is derived the same way as the
                // entropy bound and is provably a lower bound):
                //   L = 1 − 1/N Σ_c [ n_c θ_c + m_c φ_c + k_c max(θ_c, φ_c) ]
                // using l_c²/L = l_c·(l_c/L) ≤ l_c·θ_c and the symmetric
                // inequality on the right side.
                let mut sum = 0.0;
                for c in 0..classes {
                    let nc = below.get(c);
                    let mc = above.get(c);
                    let kc = inside.get(c);
                    let theta = safe_ratio(nc + kc, n + kc);
                    let phi = safe_ratio(mc + kc, m + kc);
                    sum += nc * theta + mc * phi + kc * theta.max(phi);
                }
                1.0 - sum / grand_total
            }
            Measure::GainRatio => f64::NEG_INFINITY,
        }
    }
}

/// How many classes fit in the stack-allocated per-class scratch rows of
/// the cumulative scoring paths before they fall back to the heap.
const STACK_CLASSES: usize = 16;

/// Materialises one derived per-class row (`row[c] = derive(c)` for
/// `c < classes`) in a stack buffer — heap fallback beyond
/// [`STACK_CLASSES`] — and hands it to `body`. Values and evaluation
/// order match calling `derive` at each use site, so hoisting through
/// this helper is bit-identical.
#[inline]
fn with_class_row<R>(
    classes: usize,
    derive: impl Fn(usize) -> f64,
    body: impl FnOnce(&[f64]) -> R,
) -> R {
    if classes <= STACK_CLASSES {
        let mut buf = [0.0f64; STACK_CLASSES];
        for (c, slot) in buf[..classes].iter_mut().enumerate() {
            *slot = derive(c);
        }
        body(&buf[..classes])
    } else {
        let row: Vec<f64> = (0..classes).map(derive).collect();
        body(&row)
    }
}

/// `num / den`, or 0 when the denominator vanishes.
#[inline]
fn safe_ratio(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

/// `log2(x)` with the convention that it is only ever multiplied by a zero
/// coefficient when `x == 0`; returns 0 in that case to avoid `NaN`s.
#[inline]
fn safe_log2(x: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        x.log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc(values: &[f64]) -> ClassCounts {
        ClassCounts::from_vec(values.to_vec())
    }

    #[test]
    fn entropy_dispersion_reference_values() {
        let m = Measure::Entropy;
        assert_eq!(m.dispersion(&cc(&[4.0, 0.0])), 0.0);
        assert!((m.dispersion(&cc(&[2.0, 2.0])) - 1.0).abs() < 1e-12);
        assert!((m.dispersion(&cc(&[1.0, 1.0, 1.0, 1.0])) - 2.0).abs() < 1e-12);
        // Entropy of (0.25, 0.75).
        let h = -(0.25f64.log2() * 0.25 + 0.75f64.log2() * 0.75);
        assert!((m.dispersion(&cc(&[1.0, 3.0])) - h).abs() < 1e-12);
        assert_eq!(m.dispersion(&cc(&[0.0, 0.0])), 0.0);
    }

    #[test]
    fn gini_dispersion_reference_values() {
        let m = Measure::Gini;
        assert_eq!(m.dispersion(&cc(&[4.0, 0.0])), 0.0);
        assert!((m.dispersion(&cc(&[2.0, 2.0])) - 0.5).abs() < 1e-12);
        assert!((m.dispersion(&cc(&[1.0, 3.0])) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn split_score_prefers_purer_partitions() {
        for m in [Measure::Entropy, Measure::Gini, Measure::GainRatio] {
            let pure = m.split_score(&cc(&[4.0, 0.0]), &cc(&[0.0, 4.0]));
            let mixed = m.split_score(&cc(&[2.0, 2.0]), &cc(&[2.0, 2.0]));
            assert!(pure < mixed, "{m:?}: pure split must score lower");
        }
    }

    #[test]
    fn entropy_split_score_matches_equation_1() {
        // |L| = 3 with counts (1, 2); |R| = 1 pure.
        let left = cc(&[1.0, 2.0]);
        let right = cc(&[0.0, 1.0]);
        let h_left = -(1.0 / 3.0 * (1.0f64 / 3.0).log2() + 2.0 / 3.0 * (2.0f64 / 3.0).log2());
        let expected = 0.75 * h_left;
        assert!((Measure::Entropy.split_score(&left, &right) - expected).abs() < 1e-12);
    }

    #[test]
    fn gain_ratio_handles_degenerate_splits() {
        let m = Measure::GainRatio;
        assert_eq!(
            m.split_score(&cc(&[0.0, 0.0]), &cc(&[1.0, 1.0])),
            f64::INFINITY
        );
        // A balanced informative split has a strictly negative score
        // (because the score is the negated gain ratio).
        let s = m.split_score(&cc(&[2.0, 0.0]), &cc(&[0.0, 2.0]));
        assert!(s < 0.0);
    }

    #[test]
    fn fractional_counts_are_handled() {
        // Fractional tuples: weights need not be integral.
        let m = Measure::Entropy;
        let s = m.split_score(&cc(&[0.3, 0.7]), &cc(&[1.2, 0.8]));
        assert!(s.is_finite() && s > 0.0);
    }

    #[test]
    fn homogeneous_pruning_support() {
        assert!(Measure::Entropy.supports_homogeneous_pruning());
        assert!(Measure::Gini.supports_homogeneous_pruning());
        assert!(!Measure::GainRatio.supports_homogeneous_pruning());
    }

    /// Brute-force check that the eq. 3 / eq. 4 bounds really are lower
    /// bounds: enumerate many ways of dividing the interval's per-class
    /// counts between left and right and confirm every resulting split
    /// score is ≥ the bound.
    #[test]
    fn interval_lower_bound_is_a_true_lower_bound() {
        let below = cc(&[3.0, 1.0]);
        let inside = cc(&[2.0, 2.5]);
        let above = cc(&[0.5, 4.0]);
        for m in [Measure::Entropy, Measure::Gini] {
            let bound = m.interval_lower_bound(&below, &inside, &above);
            let steps = 20;
            for i in 0..=steps {
                for j in 0..=steps {
                    let f0 = i as f64 / steps as f64;
                    let f1 = j as f64 / steps as f64;
                    let left = cc(&[
                        below.get(0) + f0 * inside.get(0),
                        below.get(1) + f1 * inside.get(1),
                    ]);
                    let right = cc(&[
                        above.get(0) + (1.0 - f0) * inside.get(0),
                        above.get(1) + (1.0 - f1) * inside.get(1),
                    ]);
                    let score = m.split_score(&left, &right);
                    assert!(
                        score >= bound - 1e-9,
                        "{m:?}: score {score} < bound {bound} at ({f0}, {f1})"
                    );
                }
            }
        }
    }

    #[test]
    fn interval_lower_bound_matches_end_points_when_interval_is_empty() {
        // With no mass inside the interval the bound equals the score of
        // splitting exactly at the interval boundary.
        let below = cc(&[3.0, 1.0]);
        let inside = cc(&[0.0, 0.0]);
        let above = cc(&[1.0, 4.0]);
        for m in [Measure::Entropy, Measure::Gini] {
            let bound = m.interval_lower_bound(&below, &inside, &above);
            let exact = m.split_score(&below, &above);
            assert!((bound - exact).abs() < 1e-9, "{m:?}");
        }
    }

    #[test]
    fn gain_ratio_has_no_usable_bound() {
        let c = cc(&[1.0, 1.0]);
        assert_eq!(
            Measure::GainRatio.interval_lower_bound(&c, &c, &c),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn degenerate_bound_inputs() {
        let zero = cc(&[0.0, 0.0]);
        for m in [Measure::Entropy, Measure::Gini] {
            assert_eq!(
                m.interval_lower_bound(&zero, &zero, &zero),
                f64::NEG_INFINITY
            );
        }
    }
}
