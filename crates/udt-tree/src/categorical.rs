//! Uncertain categorical attributes (§7.2).
//!
//! A categorical attribute value is a discrete distribution over the
//! attribute's categories. A node that tests a categorical attribute has
//! one child per category; a tuple is (fractionally) copied into bucket `v`
//! with weight `w · f(v)`, and the copied value becomes certain at `v`. As
//! a heuristic the paper notes that a categorical attribute already used on
//! the path from the root need not be reconsidered (it can yield no further
//! information gain), which the builder enforces.

use crate::counts::ClassCounts;
use crate::fractional::FractionalTuple;
use crate::measure::Measure;

/// The per-category class counts resulting from fanning a set of tuples out
/// over categorical attribute `attribute` with the given `cardinality`.
pub fn bucket_counts(
    tuples: &[FractionalTuple],
    attribute: usize,
    cardinality: usize,
    n_classes: usize,
) -> Vec<ClassCounts> {
    let mut buckets = vec![ClassCounts::new(n_classes); cardinality];
    for t in tuples {
        let Some(dist) = t.values[attribute].as_categorical() else {
            continue;
        };
        for v in 0..cardinality.min(dist.cardinality()) {
            let w = t.weight * dist.prob(v);
            if w > 0.0 {
                buckets[v].add(t.label, w);
            }
        }
    }
    buckets
}

/// Evaluates the multi-way dispersion score (lower is better) of splitting
/// on categorical attribute `attribute`. Returns `None` when the attribute
/// cannot discriminate (fewer than two buckets receive mass).
pub fn evaluate(
    tuples: &[FractionalTuple],
    attribute: usize,
    cardinality: usize,
    n_classes: usize,
    measure: Measure,
) -> Option<f64> {
    let buckets = bucket_counts(tuples, attribute, cardinality, n_classes);
    let occupied = buckets.iter().filter(|b| !b.is_empty()).count();
    if occupied < 2 {
        return None;
    }
    Some(measure.multiway_score(&buckets))
}

/// Partitions tuples into one bucket per category (§7.2's fractional
/// copies). Bucket `v` holds the fractional tuples whose categorical value
/// has been fixed to `v`.
pub fn partition(
    tuples: &[FractionalTuple],
    attribute: usize,
    cardinality: usize,
) -> Vec<Vec<FractionalTuple>> {
    let mut buckets: Vec<Vec<FractionalTuple>> = vec![Vec::new(); cardinality];
    for t in tuples {
        for (v, part) in t.split_categorical(attribute) {
            if v < cardinality {
                buckets[v].push(part);
            }
        }
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use udt_data::UncertainValue;
    use udt_prob::DiscreteDist;

    fn cat_tuple(probs: Vec<f64>, label: usize, weight: f64) -> FractionalTuple {
        FractionalTuple {
            values: vec![UncertainValue::Categorical(
                DiscreteDist::new(probs).unwrap(),
            )],
            label,
            weight,
        }
    }

    #[test]
    fn bucket_counts_accumulate_fractional_weight() {
        let tuples = vec![
            cat_tuple(vec![0.8, 0.2, 0.0], 0, 1.0),
            cat_tuple(vec![0.0, 0.5, 0.5], 1, 1.0),
        ];
        let buckets = bucket_counts(&tuples, 0, 3, 2);
        assert!((buckets[0].get(0) - 0.8).abs() < 1e-12);
        assert!((buckets[1].get(0) - 0.2).abs() < 1e-12);
        assert!((buckets[1].get(1) - 0.5).abs() < 1e-12);
        assert!((buckets[2].get(1) - 0.5).abs() < 1e-12);
        // Mass is conserved.
        let total: f64 = buckets.iter().map(ClassCounts::total).sum();
        assert!((total - 2.0).abs() < 1e-12);
    }

    #[test]
    fn evaluate_prefers_discriminating_attributes() {
        // Attribute values perfectly aligned with classes.
        let perfect = vec![
            cat_tuple(vec![1.0, 0.0], 0, 1.0),
            cat_tuple(vec![1.0, 0.0], 0, 1.0),
            cat_tuple(vec![0.0, 1.0], 1, 1.0),
            cat_tuple(vec![0.0, 1.0], 1, 1.0),
        ];
        let score = evaluate(&perfect, 0, 2, 2, Measure::Entropy).unwrap();
        assert!(score.abs() < 1e-12, "perfect split has zero entropy");

        // Attribute values independent of classes.
        let useless = vec![
            cat_tuple(vec![0.5, 0.5], 0, 1.0),
            cat_tuple(vec![0.5, 0.5], 1, 1.0),
        ];
        let score = evaluate(&useless, 0, 2, 2, Measure::Entropy).unwrap();
        assert!((score - 1.0).abs() < 1e-9, "uninformative split keeps full entropy");
    }

    #[test]
    fn evaluate_returns_none_when_only_one_bucket_has_mass() {
        let tuples = vec![
            cat_tuple(vec![1.0, 0.0], 0, 1.0),
            cat_tuple(vec![1.0, 0.0], 1, 1.0),
        ];
        assert!(evaluate(&tuples, 0, 2, 2, Measure::Entropy).is_none());
        // Numeric values are ignored entirely.
        let numeric = vec![FractionalTuple {
            values: vec![UncertainValue::point(1.0)],
            label: 0,
            weight: 1.0,
        }];
        assert!(evaluate(&numeric, 0, 2, 2, Measure::Entropy).is_none());
    }

    #[test]
    fn partition_fixes_the_categorical_value() {
        let tuples = vec![cat_tuple(vec![0.25, 0.75], 1, 0.8)];
        let buckets = partition(&tuples, 0, 2);
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].len(), 1);
        assert_eq!(buckets[1].len(), 1);
        assert!((buckets[0][0].weight - 0.2).abs() < 1e-12);
        assert!((buckets[1][0].weight - 0.6).abs() < 1e-12);
        assert!(buckets[1][0].values[0].as_categorical().unwrap().is_certain());
    }

    #[test]
    fn evaluate_works_for_all_measures() {
        let tuples = vec![
            cat_tuple(vec![0.9, 0.1], 0, 1.0),
            cat_tuple(vec![0.2, 0.8], 1, 1.0),
            cat_tuple(vec![0.7, 0.3], 0, 1.0),
        ];
        for m in [Measure::Entropy, Measure::Gini, Measure::GainRatio] {
            let score = evaluate(&tuples, 0, 2, 2, m).unwrap();
            assert!(score.is_finite(), "{m:?}");
        }
    }
}
