//! Uncertain categorical attributes (§7.2).
//!
//! A categorical attribute value is a discrete distribution over the
//! attribute's categories. A node that tests a categorical attribute has
//! one child per category; a tuple is (fractionally) present in bucket `v`
//! with weight `w · f(v)`. As a heuristic the paper notes that a
//! categorical attribute already used on the path from the root need not
//! be reconsidered (it can yield no further information gain), which the
//! builder enforces.
//!
//! Evaluation works over the columnar node representation (tuple indices
//! plus a dense weight vector — see [`crate::columns`]); the node
//! partition itself is [`crate::columns::partition_categorical`].

use crate::counts::ClassCounts;
use crate::fractional::FractionalTuple;
use crate::measure::Measure;

/// The per-category class counts over the columnar node representation:
/// `alive` lists the tuple indices present at the node and `weights`
/// (parallel to `alive`) their current fractional weights. Avoids
/// materialising per-node tuple vectors — and, being sparse, never
/// touches a root-sized array.
pub fn bucket_counts_weighted(
    tuples: &[FractionalTuple],
    alive: &[u32],
    weights: &[f64],
    attribute: usize,
    cardinality: usize,
    n_classes: usize,
) -> Vec<ClassCounts> {
    let mut buckets = vec![ClassCounts::new(n_classes); cardinality];
    for (&t, &weight) in alive.iter().zip(weights) {
        let tuple = &tuples[t as usize];
        let Some(dist) = tuple.values[attribute].as_categorical() else {
            continue;
        };
        for v in 0..cardinality.min(dist.cardinality()) {
            let w = weight * dist.prob(v);
            if w > 0.0 {
                buckets[v].add(tuple.label, w);
            }
        }
    }
    buckets
}

/// Evaluates the multi-way dispersion score (lower is better) of splitting
/// on categorical attribute `attribute`, over the node's sparse
/// `alive`/`weights` pairs. Returns `None` when the attribute cannot
/// discriminate (fewer than two buckets receive mass).
pub fn evaluate_weighted(
    tuples: &[FractionalTuple],
    alive: &[u32],
    weights: &[f64],
    attribute: usize,
    cardinality: usize,
    n_classes: usize,
    measure: Measure,
) -> Option<f64> {
    let buckets = bucket_counts_weighted(tuples, alive, weights, attribute, cardinality, n_classes);
    let occupied = buckets.iter().filter(|b| !b.is_empty()).count();
    if occupied < 2 {
        return None;
    }
    Some(measure.multiway_score(&buckets))
}

#[cfg(test)]
mod tests {
    use super::*;
    use udt_data::UncertainValue;
    use udt_prob::DiscreteDist;

    fn cat_tuple(probs: Vec<f64>, label: usize, weight: f64) -> FractionalTuple {
        FractionalTuple {
            values: vec![UncertainValue::Categorical(
                DiscreteDist::new(probs).unwrap(),
            )],
            label,
            weight,
        }
    }

    /// All tuples alive with their own weights — the root-node view.
    fn node_view(tuples: &[FractionalTuple]) -> (Vec<u32>, Vec<f64>) {
        (
            (0..tuples.len() as u32).collect(),
            tuples.iter().map(|t| t.weight).collect(),
        )
    }

    #[test]
    fn bucket_counts_accumulate_fractional_weight() {
        let tuples = vec![
            cat_tuple(vec![0.8, 0.2, 0.0], 0, 1.0),
            cat_tuple(vec![0.0, 0.5, 0.5], 1, 1.0),
        ];
        let (alive, weights) = node_view(&tuples);
        let buckets = bucket_counts_weighted(&tuples, &alive, &weights, 0, 3, 2);
        assert!((buckets[0].get(0) - 0.8).abs() < 1e-12);
        assert!((buckets[1].get(0) - 0.2).abs() < 1e-12);
        assert!((buckets[1].get(1) - 0.5).abs() < 1e-12);
        assert!((buckets[2].get(1) - 0.5).abs() < 1e-12);
        // Mass is conserved.
        let total: f64 = buckets.iter().map(ClassCounts::total).sum();
        assert!((total - 2.0).abs() < 1e-12);
    }

    #[test]
    fn node_weights_scale_the_buckets() {
        // The node weight (not the root tuple weight) is what counts.
        let tuples = vec![cat_tuple(vec![0.25, 0.75], 1, 1.0)];
        let buckets = bucket_counts_weighted(&tuples, &[0], &[0.8], 0, 2, 2);
        assert!((buckets[0].get(1) - 0.2).abs() < 1e-12);
        assert!((buckets[1].get(1) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn evaluate_prefers_discriminating_attributes() {
        // Attribute values perfectly aligned with classes.
        let perfect = vec![
            cat_tuple(vec![1.0, 0.0], 0, 1.0),
            cat_tuple(vec![1.0, 0.0], 0, 1.0),
            cat_tuple(vec![0.0, 1.0], 1, 1.0),
            cat_tuple(vec![0.0, 1.0], 1, 1.0),
        ];
        let (alive, weights) = node_view(&perfect);
        let score =
            evaluate_weighted(&perfect, &alive, &weights, 0, 2, 2, Measure::Entropy).unwrap();
        assert!(score.abs() < 1e-12, "perfect split has zero entropy");

        // Attribute values independent of classes.
        let useless = vec![
            cat_tuple(vec![0.5, 0.5], 0, 1.0),
            cat_tuple(vec![0.5, 0.5], 1, 1.0),
        ];
        let (alive, weights) = node_view(&useless);
        let score =
            evaluate_weighted(&useless, &alive, &weights, 0, 2, 2, Measure::Entropy).unwrap();
        assert!(
            (score - 1.0).abs() < 1e-9,
            "uninformative split keeps full entropy"
        );
    }

    #[test]
    fn evaluate_returns_none_when_only_one_bucket_has_mass() {
        let tuples = vec![
            cat_tuple(vec![1.0, 0.0], 0, 1.0),
            cat_tuple(vec![1.0, 0.0], 1, 1.0),
        ];
        let (alive, weights) = node_view(&tuples);
        assert!(evaluate_weighted(&tuples, &alive, &weights, 0, 2, 2, Measure::Entropy).is_none());
        // Numeric values are ignored entirely.
        let numeric = vec![FractionalTuple {
            values: vec![UncertainValue::point(1.0)],
            label: 0,
            weight: 1.0,
        }];
        let (alive, weights) = node_view(&numeric);
        assert!(evaluate_weighted(&numeric, &alive, &weights, 0, 2, 2, Measure::Entropy).is_none());
    }

    #[test]
    fn evaluate_works_for_all_measures() {
        let tuples = vec![
            cat_tuple(vec![0.9, 0.1], 0, 1.0),
            cat_tuple(vec![0.2, 0.8], 1, 1.0),
            cat_tuple(vec![0.7, 0.3], 0, 1.0),
        ];
        let (alive, weights) = node_view(&tuples);
        for m in [Measure::Entropy, Measure::Gini, Measure::GainRatio] {
            let score = evaluate_weighted(&tuples, &alive, &weights, 0, 2, 2, m).unwrap();
            assert!(score.is_finite(), "{m:?}");
        }
    }
}
