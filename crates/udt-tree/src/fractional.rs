//! Fractional tuples.
//!
//! When a training tuple's pdf properly contains a node's split point, the
//! tuple is divided into two *fractional tuples* (§3.2 / §4.2, a technique
//! borrowed from C4.5's missing-value handling): each child inherits the
//! tuple's class label and all pdfs except the split attribute's, whose pdf
//! is restricted to the child's sub-domain and renormalised, and carries a
//! weight equal to the parent weight multiplied by the probability mass on
//! its side of the split.

use udt_data::{Tuple, UncertainValue};
use udt_prob::DiscreteDist;

use crate::counts::{ClassCounts, WEIGHT_EPSILON};

/// A weighted (possibly fractional) training tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct FractionalTuple {
    /// The tuple's attribute values. The split attribute's pdf is replaced
    /// by its restricted/renormalised version every time the tuple is
    /// fractionally split.
    pub values: Vec<UncertainValue>,
    /// Class label index.
    pub label: usize,
    /// The tuple's weight `w ∈ (0, 1]` (1 for whole tuples).
    pub weight: f64,
}

impl FractionalTuple {
    /// Wraps a whole training tuple with weight 1.
    pub fn from_tuple(tuple: &Tuple) -> Self {
        FractionalTuple {
            values: tuple.values().to_vec(),
            label: tuple.label(),
            weight: 1.0,
        }
    }

    /// Splits this tuple at `split` on numerical attribute `attribute`,
    /// returning the left and/or right fractional tuples (those that
    /// receive non-negligible weight).
    ///
    /// * A tuple whose pdf lies entirely at or below the split point goes
    ///   wholly left; entirely above goes wholly right.
    /// * Otherwise it is divided: the left fraction's pdf is the original
    ///   pdf restricted to `(-∞, split]` and renormalised, with weight
    ///   `w · p_L`; symmetrically for the right fraction.
    pub fn split_numeric(
        &self,
        attribute: usize,
        split: f64,
    ) -> (Option<FractionalTuple>, Option<FractionalTuple>) {
        let pdf = match self.values[attribute].as_numeric() {
            Some(pdf) => pdf,
            // A categorical value cannot be split on a numerical test; the
            // builder never asks for this, but fall back to sending the
            // whole tuple left to keep the operation total.
            None => return (Some(self.clone()), None),
        };
        let (p_left, left_pdf, right_pdf) = pdf.split_at(split);
        let mut left = None;
        let mut right = None;
        if p_left * self.weight > WEIGHT_EPSILON {
            let mut values = self.values.clone();
            if let Some(lp) = left_pdf {
                values[attribute] = UncertainValue::Numeric(lp);
            }
            left = Some(FractionalTuple {
                values,
                label: self.label,
                weight: self.weight * p_left,
            });
        }
        let p_right = 1.0 - p_left;
        if p_right * self.weight > WEIGHT_EPSILON {
            let mut values = self.values.clone();
            if let Some(rp) = right_pdf {
                values[attribute] = UncertainValue::Numeric(rp);
            }
            right = Some(FractionalTuple {
                values,
                label: self.label,
                weight: self.weight * p_right,
            });
        }
        (left, right)
    }

    /// Splits this tuple over the categories of categorical attribute
    /// `attribute` (§7.2): the tuple is copied into bucket `v` with weight
    /// `w · f(v)` whenever that weight is non-negligible, and the copied
    /// value becomes certain at `v`.
    pub fn split_categorical(&self, attribute: usize) -> Vec<(usize, FractionalTuple)> {
        let dist: &DiscreteDist = match self.values[attribute].as_categorical() {
            Some(d) => d,
            None => return Vec::new(),
        };
        let cardinality = dist.cardinality();
        let mut out = Vec::new();
        for v in 0..cardinality {
            let w = self.weight * dist.prob(v);
            if w <= WEIGHT_EPSILON {
                continue;
            }
            let mut values = self.values.clone();
            values[attribute] = UncertainValue::category(v, cardinality);
            out.push((
                v,
                FractionalTuple {
                    values,
                    label: self.label,
                    weight: w,
                },
            ));
        }
        out
    }
}

/// Sums the weights of a set of fractional tuples into per-class counts.
pub fn class_counts(tuples: &[FractionalTuple], n_classes: usize) -> ClassCounts {
    let mut counts = ClassCounts::new(n_classes);
    for t in tuples {
        counts.add(t.label, t.weight);
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use udt_prob::SampledPdf;

    fn uncertain_tuple(points: &[f64], mass: &[f64], label: usize) -> FractionalTuple {
        let pdf = SampledPdf::new(points.to_vec(), mass.to_vec()).unwrap();
        FractionalTuple {
            values: vec![UncertainValue::Numeric(pdf)],
            label,
            weight: 1.0,
        }
    }

    #[test]
    fn whole_tuple_wrapping() {
        let t = Tuple::from_points(&[1.0, 2.0], 1);
        let f = FractionalTuple::from_tuple(&t);
        assert_eq!(f.weight, 1.0);
        assert_eq!(f.label, 1);
        assert_eq!(f.values.len(), 2);
    }

    #[test]
    fn split_divides_weight_according_to_mass() {
        // Fig. 1: 30 % of the mass at or below −1.
        let t = uncertain_tuple(
            &[-2.5, -2.0, -1.0, 0.0, 1.0, 2.0],
            &[0.1, 0.1, 0.1, 0.2, 0.3, 0.2],
            0,
        );
        let (left, right) = t.split_numeric(0, -1.0);
        let left = left.unwrap();
        let right = right.unwrap();
        assert!((left.weight - 0.3).abs() < 1e-12);
        assert!((right.weight - 0.7).abs() < 1e-12);
        // The children's pdfs are restricted to their sub-domains.
        assert!(left.values[0].as_numeric().unwrap().hi() <= -1.0);
        assert!(right.values[0].as_numeric().unwrap().lo() > -1.0);
        // Labels are inherited.
        assert_eq!(left.label, 0);
        assert_eq!(right.label, 0);
    }

    #[test]
    fn split_entirely_on_one_side_keeps_the_tuple_whole() {
        let t = uncertain_tuple(&[5.0, 6.0], &[0.5, 0.5], 1);
        let (left, right) = t.split_numeric(0, 10.0);
        assert!(right.is_none());
        assert_eq!(left.unwrap(), t);
        let (left, right) = t.split_numeric(0, 0.0);
        assert!(left.is_none());
        assert_eq!(right.unwrap(), t);
    }

    #[test]
    fn nested_splits_multiply_weights() {
        let t = uncertain_tuple(&[0.0, 1.0, 2.0, 3.0], &[0.25, 0.25, 0.25, 0.25], 0);
        let (left, _) = t.split_numeric(0, 1.0);
        let left = left.unwrap();
        assert!((left.weight - 0.5).abs() < 1e-12);
        let (ll, lr) = left.split_numeric(0, 0.0);
        assert!((ll.unwrap().weight - 0.25).abs() < 1e-12);
        assert!((lr.unwrap().weight - 0.25).abs() < 1e-12);
    }

    #[test]
    fn categorical_split_fans_out_by_probability() {
        let dist = DiscreteDist::new(vec![0.5, 0.0, 0.5]).unwrap();
        let t = FractionalTuple {
            values: vec![UncertainValue::Categorical(dist)],
            label: 2,
            weight: 0.8,
        };
        let parts = t.split_categorical(0);
        assert_eq!(parts.len(), 2, "zero-probability category is dropped");
        assert_eq!(parts[0].0, 0);
        assert_eq!(parts[1].0, 2);
        for (v, p) in &parts {
            assert!((p.weight - 0.4).abs() < 1e-12);
            assert_eq!(p.label, 2);
            assert_eq!(p.values[0].as_categorical().unwrap().mode(), *v);
            assert!(p.values[0].as_categorical().unwrap().is_certain());
        }
    }

    #[test]
    fn categorical_split_on_numeric_value_is_empty() {
        let t = uncertain_tuple(&[1.0, 2.0], &[0.5, 0.5], 0);
        assert!(t.split_categorical(0).is_empty());
    }

    #[test]
    fn class_counts_sum_weights() {
        let a = uncertain_tuple(&[0.0, 1.0], &[0.5, 0.5], 0);
        let mut b = uncertain_tuple(&[0.0, 1.0], &[0.5, 0.5], 1);
        b.weight = 0.25;
        let counts = class_counts(&[a, b], 3);
        assert_eq!(counts.as_slice(), &[1.0, 0.25, 0.0]);
    }
}
