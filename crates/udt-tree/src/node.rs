//! Decision-tree structure.
//!
//! The trees built here follow §3.1–3.2 of the paper: each internal node
//! carries a crisp binary test `v ≤ z` on one numerical attribute (or a
//! multi-way test on a categorical attribute, §7.2); each leaf carries a
//! probability distribution over class labels derived from the (fractional)
//! training tuples that reached it.
//!
//! Since the arena refactor, [`DecisionTree`] stores its nodes in the flat
//! SoA arena [`FlatTree`] — the canonical build/serve format. The recursive
//! [`Node`] enum remains as a conversion target: tests pattern-match on it
//! via [`DecisionTree::root_node`], and the legacy persistence format in
//! [`crate::persist`] is its serde projection. Classification of an
//! uncertain test tuple is implemented in [`crate::classify`] and surfaced
//! here as [`DecisionTree::predict_distribution`] (single tuple) and
//! [`DecisionTree::predict_batch`] (serving batches).

use serde::{Deserialize, Serialize};
use udt_data::Tuple;

use crate::counts::ClassCounts;
use crate::flat::FlatTree;
use crate::Result;

/// One node of a decision tree in recursive (boxed) form.
///
/// This is the conversion target kept for structural tests and the legacy
/// persistence format; the canonical representation is [`FlatTree`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// A leaf node carrying a class distribution.
    Leaf {
        /// Normalised class distribution `P_m(c)`.
        distribution: Vec<f64>,
        /// The (fractional) training class counts that produced it; kept so
        /// that post-pruning can re-derive error estimates without touching
        /// the training data again.
        counts: ClassCounts,
    },
    /// An internal node testing `value(attribute) ≤ split`.
    Split {
        /// Attribute index tested.
        attribute: usize,
        /// Split point `z_n`.
        split: f64,
        /// Training class counts at this node (for post-pruning).
        counts: ClassCounts,
        /// Subtree for tuples passing the test (`v ≤ z`).
        left: Box<Node>,
        /// Subtree for tuples failing the test (`v > z`).
        right: Box<Node>,
    },
    /// An internal node fanning out over the categories of a categorical
    /// attribute (§7.2); child `v` handles tuples whose value is category
    /// `v`.
    CategoricalSplit {
        /// Attribute index tested.
        attribute: usize,
        /// Training class counts at this node (for post-pruning).
        counts: ClassCounts,
        /// One child per category, in category order.
        children: Vec<Node>,
    },
}

impl Node {
    /// Creates a leaf from training counts.
    pub fn leaf(counts: ClassCounts) -> Node {
        Node::Leaf {
            distribution: counts.distribution(),
            counts,
        }
    }

    /// The training class counts recorded at this node.
    pub fn counts(&self) -> &ClassCounts {
        match self {
            Node::Leaf { counts, .. }
            | Node::Split { counts, .. }
            | Node::CategoricalSplit { counts, .. } => counts,
        }
    }

    /// Whether this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Number of nodes in the subtree rooted here.
    pub fn size(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => 1 + left.size() + right.size(),
            Node::CategoricalSplit { children, .. } => {
                1 + children.iter().map(Node::size).sum::<usize>()
            }
        }
    }

    /// Number of leaves in the subtree rooted here.
    pub fn n_leaves(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => left.n_leaves() + right.n_leaves(),
            Node::CategoricalSplit { children, .. } => children.iter().map(Node::n_leaves).sum(),
        }
    }

    /// Depth of the subtree rooted here (a single leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
            Node::CategoricalSplit { children, .. } => {
                1 + children.iter().map(Node::depth).max().unwrap_or(0)
            }
        }
    }

    fn render(&self, class_names: &[String], indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        match self {
            Node::Leaf { distribution, .. } => {
                let best = distribution
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                let name = class_names
                    .get(best)
                    .map(String::as_str)
                    .unwrap_or("<unknown>");
                out.push_str(&format!(
                    "{pad}leaf: {name} {:?}\n",
                    distribution
                        .iter()
                        .map(|p| (p * 100.0).round() / 100.0)
                        .collect::<Vec<_>>()
                ));
            }
            Node::Split {
                attribute,
                split,
                left,
                right,
                ..
            } => {
                out.push_str(&format!("{pad}if A{attribute} <= {split:.4}:\n"));
                left.render(class_names, indent + 1, out);
                out.push_str(&format!("{pad}else:\n"));
                right.render(class_names, indent + 1, out);
            }
            Node::CategoricalSplit {
                attribute,
                children,
                ..
            } => {
                out.push_str(&format!("{pad}switch A{attribute}:\n"));
                for (v, child) in children.iter().enumerate() {
                    out.push_str(&format!("{pad}case {v}:\n"));
                    child.render(class_names, indent + 1, out);
                }
            }
        }
    }
}

/// A trained decision tree, stored as a flat arena.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    flat: FlatTree,
    n_attributes: usize,
    class_names: Vec<String>,
}

impl DecisionTree {
    /// Assembles a tree from a recursive root node and metadata,
    /// converting it into the canonical arena form.
    pub fn new(root: Node, n_attributes: usize, class_names: Vec<String>) -> Self {
        let flat = FlatTree::from_node(&root, class_names.len());
        DecisionTree {
            flat,
            n_attributes,
            class_names,
        }
    }

    /// Assembles a tree directly from its arena and metadata (the builder
    /// and the persistence loader use this).
    pub fn from_flat(flat: FlatTree, n_attributes: usize, class_names: Vec<String>) -> Self {
        debug_assert_eq!(flat.n_classes(), class_names.len());
        DecisionTree {
            flat,
            n_attributes,
            class_names,
        }
    }

    /// The tree's arena.
    pub fn flat(&self) -> &FlatTree {
        &self.flat
    }

    /// Mutable access to the arena (used by post-pruning).
    pub fn flat_mut(&mut self) -> &mut FlatTree {
        &mut self.flat
    }

    /// Materialises the tree in recursive (boxed) form — a conversion for
    /// structural tests and the legacy persistence format.
    pub fn root_node(&self) -> Node {
        self.flat.to_root_node()
    }

    /// Number of attributes the tree was trained on.
    pub fn n_attributes(&self) -> usize {
        self.n_attributes
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Class names, indexed by label.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Total node count.
    pub fn size(&self) -> usize {
        self.flat.len()
    }

    /// Leaf count.
    pub fn n_leaves(&self) -> usize {
        self.flat.n_leaves()
    }

    /// Tree depth.
    pub fn depth(&self) -> usize {
        self.flat.depth()
    }

    /// Classifies an uncertain test tuple, returning the probability
    /// distribution over class labels (§3.2).
    ///
    /// Returns [`crate::TreeError::NoClasses`] for a (hand-assembled) tree
    /// that distinguishes zero classes — there is no distribution to
    /// return, and the previous behaviour of silently yielding an empty
    /// vector masked real construction bugs.
    pub fn predict_distribution(&self, tuple: &Tuple) -> Result<Vec<f64>> {
        crate::classify::predict_distribution(self, tuple)
    }

    /// Classifies an uncertain test tuple and returns the single most
    /// probable class label, as the paper does when "a single result is
    /// desired".
    pub fn predict(&self, tuple: &Tuple) -> Result<usize> {
        Ok(crate::classify::argmax_class(
            &self.predict_distribution(tuple)?,
        ))
    }

    /// Classifies a batch of tuples with the arena engine, returning the
    /// most probable class label per tuple. Convenience wrapper over
    /// [`crate::classify::classify_batch`] that manages its own scratch;
    /// serving loops that call this repeatedly should hold a
    /// [`crate::classify::BatchScratch`] and call `classify_batch`
    /// directly to reuse the buffers.
    pub fn predict_batch(&self, tuples: &[Tuple]) -> Result<Vec<usize>> {
        let mut scratch = crate::classify::BatchScratch::new();
        let dists = crate::classify::classify_batch(self, tuples, &mut scratch)?;
        Ok(dists
            .chunks(self.n_classes())
            .map(crate::classify::argmax_class)
            .collect())
    }

    /// A human-readable rendering of the tree (one line per node).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.root_node().render(&self.class_names, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> DecisionTree {
        // The post-pruned tree of Fig. 2b: root split at 0, left leaf
        // mostly class B, right leaf mostly class A.
        let left = Node::Leaf {
            distribution: vec![0.212, 0.788],
            counts: ClassCounts::from_vec(vec![0.636, 2.364]),
        };
        let right = Node::Leaf {
            distribution: vec![0.80, 0.20],
            counts: ClassCounts::from_vec(vec![2.4, 0.6]),
        };
        let root = Node::Split {
            attribute: 0,
            split: 0.0,
            counts: ClassCounts::from_vec(vec![3.0, 3.0]),
            left: Box::new(left),
            right: Box::new(right),
        };
        DecisionTree::new(root, 1, vec!["A".into(), "B".into()])
    }

    #[test]
    fn structural_statistics() {
        let tree = sample_tree();
        assert_eq!(tree.size(), 3);
        assert_eq!(tree.n_leaves(), 2);
        assert_eq!(tree.depth(), 2);
        assert_eq!(tree.n_attributes(), 1);
        assert_eq!(tree.n_classes(), 2);
        assert!(!tree.root_node().is_leaf());
        tree.flat().validate().unwrap();
    }

    #[test]
    fn leaf_from_counts_normalises() {
        let leaf = Node::leaf(ClassCounts::from_vec(vec![1.0, 3.0]));
        match &leaf {
            Node::Leaf { distribution, .. } => {
                assert_eq!(distribution, &vec![0.25, 0.75]);
            }
            _ => panic!("expected leaf"),
        }
        assert_eq!(leaf.size(), 1);
        assert_eq!(leaf.depth(), 1);
    }

    #[test]
    fn point_tuple_prediction_follows_the_split() {
        let tree = sample_tree();
        let left_tuple = Tuple::from_points(&[-5.0], 0);
        let right_tuple = Tuple::from_points(&[5.0], 0);
        assert_eq!(
            tree.predict(&left_tuple).unwrap(),
            1,
            "left leaf favours class B"
        );
        assert_eq!(
            tree.predict(&right_tuple).unwrap(),
            0,
            "right leaf favours class A"
        );
        assert_eq!(
            tree.predict_batch(&[left_tuple, right_tuple]).unwrap(),
            vec![1, 0]
        );
    }

    #[test]
    fn render_mentions_split_and_classes() {
        let tree = sample_tree();
        let text = tree.render();
        assert!(text.contains("A0"));
        assert!(text.contains("leaf"));
        assert!(text.contains("else"));
    }

    #[test]
    fn boxed_conversion_round_trips() {
        let tree = sample_tree();
        let rebuilt = DecisionTree::new(tree.root_node(), 1, tree.class_names().to_vec());
        assert_eq!(tree, rebuilt);
    }

    #[test]
    fn categorical_node_statistics() {
        let children = vec![
            Node::leaf(ClassCounts::from_vec(vec![1.0, 0.0])),
            Node::leaf(ClassCounts::from_vec(vec![0.0, 1.0])),
            Node::leaf(ClassCounts::from_vec(vec![0.5, 0.5])),
        ];
        let node = Node::CategoricalSplit {
            attribute: 2,
            counts: ClassCounts::from_vec(vec![1.5, 1.5]),
            children,
        };
        assert_eq!(node.size(), 4);
        assert_eq!(node.n_leaves(), 3);
        assert_eq!(node.depth(), 2);
    }
}
