//! Checked-in naive baseline of the split-search engine.
//!
//! This module preserves the pre-columnar implementation in its original
//! shape: per-position cumulative counts stored as one owned
//! [`ClassCounts`] per candidate, right-side counts produced by cloning
//! and subtracting, and a tree walk that rebuilds and re-sorts every
//! attribute's event array at every node. It exists for two reasons:
//!
//! 1. **Regression testing** — the columnar [`crate::events::AttributeEvents`]
//!    must reproduce these per-position scores bit for bit (see
//!    `tests/columnar_regression.rs`);
//! 2. **Benchmarking** — the `split_algorithms` criterion bench measures
//!    the columnar engine's speedup against this baseline, which is the
//!    quantity the ISSUE's acceptance criterion tracks.
//!
//! It is **not** wired into [`crate::TreeBuilder`]; production code paths
//! always use the columnar engine.

use udt_data::Dataset;

use crate::counts::{ClassCounts, WEIGHT_EPSILON};
use crate::events::IntervalKind;
use crate::fractional::{class_counts, FractionalTuple};
use crate::measure::Measure;
use crate::split::SplitChoice;

/// Which search the naive baseline runs at every node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NaiveSearch {
    /// Score every candidate (the paper's plain UDT).
    Exhaustive,
    /// Global lower-bound pruning with optional end-point sampling — the
    /// pre-columnar UDT-GP (`None`) / UDT-ES (`Some(rate)`) engine, with
    /// its original clone-based bound arithmetic.
    GlobalPruned(Option<f64>),
}

/// The pre-columnar per-attribute candidate structure: one owned
/// [`ClassCounts`] per distinct position.
#[derive(Debug, Clone)]
pub struct NaiveAttributeEvents {
    xs: Vec<f64>,
    cum: Vec<ClassCounts>,
    total: ClassCounts,
    end_point_idx: Vec<usize>,
}

impl NaiveAttributeEvents {
    /// Builds the structure exactly as the pre-columnar engine did. The
    /// one intentional difference is the zero-mass gate: the original
    /// `w > 0.0` admitted denormal event weights (spurious candidate
    /// positions); both engines now share the `WEIGHT_EPSILON` gate so
    /// their outputs stay comparable position for position.
    pub fn build(
        tuples: &[FractionalTuple],
        attribute: usize,
        n_classes: usize,
    ) -> Option<NaiveAttributeEvents> {
        let mut events: Vec<(f64, usize, f64)> = Vec::new();
        let mut end_points: Vec<f64> = Vec::new();
        for t in tuples {
            let Some(pdf) = t.values[attribute].as_numeric() else {
                continue;
            };
            if t.weight <= WEIGHT_EPSILON {
                continue;
            }
            end_points.push(pdf.lo());
            end_points.push(pdf.hi());
            for (x, m) in pdf.iter() {
                let w = t.weight * m;
                if w > WEIGHT_EPSILON {
                    events.push((x, t.label, w));
                }
            }
        }
        if events.is_empty() {
            return None;
        }
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite sample points"));

        let mut xs: Vec<f64> = Vec::new();
        let mut cum: Vec<ClassCounts> = Vec::new();
        let mut running = ClassCounts::new(n_classes);
        for (x, label, w) in events {
            if xs.last() != Some(&x) {
                if !xs.is_empty() {
                    cum.push(running.clone());
                }
                xs.push(x);
            }
            running.add(label, w);
        }
        cum.push(running.clone());
        if xs.len() < 2 {
            return None;
        }
        end_points.sort_by(|a, b| a.partial_cmp(b).expect("finite end points"));
        end_points.dedup();
        let mut end_point_idx: Vec<usize> = end_points
            .iter()
            .filter_map(|&q| {
                xs.binary_search_by(|x| x.partial_cmp(&q).expect("finite"))
                    .ok()
            })
            .collect();
        // Keep interval coverage of every candidate (same guard as
        // AttributeEvents::from_sorted_events).
        if end_point_idx.first() != Some(&0) {
            end_point_idx.insert(0, 0);
        }
        let last_idx = xs.len() - 1;
        if end_point_idx.last() != Some(&last_idx) {
            end_point_idx.push(last_idx);
        }
        Some(NaiveAttributeEvents {
            xs,
            cum,
            total: running,
            end_point_idx,
        })
    }

    /// The distinct candidate positions.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Number of distinct candidate positions.
    pub fn n_positions(&self) -> usize {
        self.xs.len()
    }

    /// The pre-columnar per-candidate scoring path: clones the cumulative
    /// counter, clones and subtracts for the right side, then scores.
    pub fn score_at(&self, i: usize, measure: Measure) -> f64 {
        let left = self.cum[i].clone();
        let mut right = self.total.clone();
        right.sub_counts(&self.cum[i]);
        if left.is_empty() || right.is_empty() {
            return f64::INFINITY;
        }
        measure.split_score(&left, &right)
    }

    /// End-point indices into [`xs`](Self::xs), ascending.
    pub fn end_point_indices(&self) -> &[usize] {
        &self.end_point_idx
    }

    /// Per-class mass at positions `<= xs[i]` — the pre-columnar clone.
    fn counts_below(&self, i: usize) -> ClassCounts {
        self.cum[i].clone()
    }

    /// Per-class mass in `(xs[lo], xs[hi]]` — clone and subtract.
    fn counts_in(&self, lo: usize, hi: usize) -> ClassCounts {
        let mut c = self.cum[hi].clone();
        c.sub_counts(&self.cum[lo]);
        c
    }

    /// Per-class mass at positions `> xs[i]` — clone and subtract.
    fn counts_above(&self, i: usize) -> ClassCounts {
        let mut c = self.total.clone();
        c.sub_counts(&self.cum[i]);
        c
    }

    /// The eq. 3 / eq. 4 bound through three freshly cloned counters, as
    /// the pre-columnar engine computed it.
    pub fn interval_lower_bound(&self, lo: usize, hi: usize, measure: Measure) -> f64 {
        measure.interval_lower_bound(
            &self.counts_below(lo),
            &self.counts_in(lo, hi),
            &self.counts_above(hi),
        )
    }

    /// Classified intervals between the given boundary indices (clones a
    /// counter per interval, as the pre-columnar engine did).
    pub fn intervals_between(&self, boundary_idx: &[usize]) -> Vec<(usize, usize, IntervalKind)> {
        let mut out = Vec::new();
        for w in boundary_idx.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let inside = self.counts_in(lo, hi);
            let kind = if inside.is_empty() {
                IntervalKind::Empty
            } else if inside.support_size() <= 1 {
                IntervalKind::Homogeneous
            } else {
                IntervalKind::Heterogeneous
            };
            out.push((lo, hi, kind));
        }
        out
    }
}

/// The pre-columnar global-threshold pruning engine (UDT-GP / UDT-ES) on
/// top of [`NaiveAttributeEvents`]: end-point evaluation, Theorem 1–2
/// interior skipping, eq. 3 bounding through cloned counters, optional
/// end-point sampling with coarse-interval refinement.
pub fn naive_pruned_find_best(
    events: &[(usize, NaiveAttributeEvents)],
    measure: Measure,
    sample_rate: Option<f64>,
) -> Option<SplitChoice> {
    let mut best: Option<SplitChoice> = None;
    let mut boundaries: Vec<Vec<usize>> = Vec::with_capacity(events.len());
    let mut attribute_best: Vec<Option<f64>> = vec![None; events.len()];

    let evaluate = |ev: &NaiveAttributeEvents,
                    attribute: usize,
                    idx: usize,
                    best: &mut Option<SplitChoice>|
     -> f64 {
        if idx + 1 == ev.n_positions() {
            return f64::INFINITY;
        }
        let score = ev.score_at(idx, measure);
        if score.is_finite() {
            let candidate = SplitChoice {
                attribute,
                split: ev.xs[idx],
                score,
            };
            match best {
                Some(b) if !b.is_improved_by(&candidate) => {}
                _ => *best = Some(candidate),
            }
        }
        score
    };

    // Pass 1: evaluate (sampled) end points for every attribute.
    for (slot, (attribute, ev)) in events.iter().enumerate() {
        let all = ev.end_point_indices();
        let bounds_idx: Vec<usize> = match sample_rate {
            Some(rate) if all.len() > 2 => {
                let target = ((all.len() as f64 * rate).ceil() as usize).clamp(2, all.len());
                if target >= all.len() {
                    all.to_vec()
                } else {
                    let mut picked: Vec<usize> = (0..target)
                        .map(|i| {
                            let pos = i as f64 * (all.len() - 1) as f64 / (target - 1) as f64;
                            all[pos.round() as usize]
                        })
                        .collect();
                    picked.dedup();
                    picked
                }
            }
            _ => all.to_vec(),
        };
        for &idx in &bounds_idx {
            let score = evaluate(ev, *attribute, idx, &mut best);
            if score.is_finite() {
                attribute_best[slot] =
                    Some(attribute_best[slot].map_or(score, |b: f64| b.min(score)));
            }
        }
        boundaries.push(bounds_idx);
    }

    // Pass 2: interval pruning and interior evaluation with the global
    // threshold.
    for (slot, (attribute, ev)) in events.iter().enumerate() {
        let coarse = ev.intervals_between(&boundaries[slot]);
        let mut stack: Vec<(usize, usize, IntervalKind, bool)> = coarse
            .into_iter()
            .rev()
            .map(|(lo, hi, kind)| (lo, hi, kind, sample_rate.is_some()))
            .collect();
        while let Some((lo, hi, kind, refine)) = stack.pop() {
            if lo + 1 >= hi {
                continue;
            }
            match kind {
                IntervalKind::Empty => continue,
                IntervalKind::Homogeneous if measure.supports_homogeneous_pruning() => continue,
                _ => {}
            }
            let threshold = best.as_ref().map_or(f64::INFINITY, |b| b.score);
            let bound = ev.interval_lower_bound(lo, hi, measure);
            if bound >= threshold {
                continue;
            }
            if refine {
                let inner: Vec<usize> = ev
                    .end_point_indices()
                    .iter()
                    .copied()
                    .filter(|&i| i > lo && i < hi)
                    .collect();
                if !inner.is_empty() {
                    for &idx in &inner {
                        evaluate(ev, *attribute, idx, &mut best);
                    }
                    let mut bounds = Vec::with_capacity(inner.len() + 2);
                    bounds.push(lo);
                    bounds.extend(inner);
                    bounds.push(hi);
                    for (flo, fhi, fkind) in ev.intervals_between(&bounds).into_iter().rev() {
                        stack.push((flo, fhi, fkind, false));
                    }
                    continue;
                }
            }
            for idx in lo + 1..hi {
                evaluate(ev, *attribute, idx, &mut best);
            }
        }
    }
    best
}

/// Exhaustive best-split search over naive per-attribute structures —
/// the pre-columnar UDT inner loop.
pub fn naive_find_best(
    events: &[(usize, NaiveAttributeEvents)],
    measure: Measure,
) -> Option<SplitChoice> {
    let mut best: Option<SplitChoice> = None;
    for (attribute, ev) in events {
        for i in 0..ev.n_positions() - 1 {
            let score = ev.score_at(i, measure);
            if !score.is_finite() {
                continue;
            }
            let candidate = SplitChoice {
                attribute: *attribute,
                split: ev.xs[i],
                score,
            };
            match &best {
                Some(b) if !b.is_improved_by(&candidate) => {}
                _ => best = Some(candidate),
            }
        }
    }
    best
}

/// Counts the internal nodes a naive recursive build would create; the
/// return value makes the whole computation observable to benchmarks.
///
/// This replicates the pre-columnar `TreeBuilder` hot path for numerical
/// attributes: every node materialises fresh `FractionalTuple` vectors,
/// rebuilds and re-sorts each attribute's events, and scores candidates
/// through cloned counters. Pre-pruning mirrors the builder's defaults
/// (`max_depth`, `min_node_weight`, `min_gain` on the dispersion drop).
pub fn naive_build_splits(
    data: &Dataset,
    measure: Measure,
    search: NaiveSearch,
    max_depth: usize,
    min_node_weight: f64,
    min_gain: f64,
) -> usize {
    let tuples: Vec<FractionalTuple> = data
        .tuples()
        .iter()
        .map(FractionalTuple::from_tuple)
        .collect();
    let numerical = data.schema().numerical_indices();
    naive_build_node(
        tuples,
        &numerical,
        data.n_classes(),
        measure,
        search,
        1,
        max_depth,
        min_node_weight,
        min_gain,
    )
}

#[allow(clippy::too_many_arguments)]
fn naive_build_node(
    tuples: Vec<FractionalTuple>,
    numerical: &[usize],
    n_classes: usize,
    measure: Measure,
    search: NaiveSearch,
    depth: usize,
    max_depth: usize,
    min_node_weight: f64,
    min_gain: f64,
) -> usize {
    let counts = class_counts(&tuples, n_classes);
    if counts.is_pure()
        || depth >= max_depth
        || counts.total() < min_node_weight
        || tuples.is_empty()
    {
        return 0;
    }
    // The naive engine's defining cost: rebuild + re-sort per node.
    let events: Vec<(usize, NaiveAttributeEvents)> = numerical
        .iter()
        .filter_map(|&j| NaiveAttributeEvents::build(&tuples, j, n_classes).map(|e| (j, e)))
        .collect();
    let best = match search {
        NaiveSearch::Exhaustive => naive_find_best(&events, measure),
        NaiveSearch::GlobalPruned(rate) => naive_pruned_find_best(&events, measure, rate),
    };
    let Some(best) = best else {
        return 0;
    };
    let worthwhile = match measure {
        Measure::Entropy | Measure::Gini => measure.dispersion(&counts) - best.score >= min_gain,
        Measure::GainRatio => -best.score >= min_gain,
    };
    if !worthwhile {
        return 0;
    }
    let mut left = Vec::new();
    let mut right = Vec::new();
    for t in &tuples {
        let (l, r) = t.split_numeric(best.attribute, best.split);
        if let Some(l) = l {
            left.push(l);
        }
        if let Some(r) = r {
            right.push(r);
        }
    }
    if left.is_empty() || right.is_empty() {
        return 0;
    }
    drop(tuples);
    1 + naive_build_node(
        left,
        numerical,
        n_classes,
        measure,
        search,
        depth + 1,
        max_depth,
        min_node_weight,
        min_gain,
    ) + naive_build_node(
        right,
        numerical,
        n_classes,
        measure,
        search,
        depth + 1,
        max_depth,
        min_node_weight,
        min_gain,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use udt_data::{Tuple, UncertainValue};
    use udt_prob::SampledPdf;

    fn ft(points: &[f64], mass: &[f64], label: usize) -> FractionalTuple {
        FractionalTuple {
            values: vec![UncertainValue::Numeric(
                SampledPdf::new(points.to_vec(), mass.to_vec()).unwrap(),
            )],
            label,
            weight: 1.0,
        }
    }

    #[test]
    fn naive_engine_finds_the_obvious_split() {
        let tuples = vec![
            ft(&[0.0, 1.0], &[0.5, 0.5], 0),
            ft(&[5.0, 6.0], &[0.5, 0.5], 1),
        ];
        let ev = NaiveAttributeEvents::build(&tuples, 0, 2).unwrap();
        let best = naive_find_best(&[(0, ev)], Measure::Entropy).unwrap();
        assert_eq!(best.split, 1.0);
        assert_eq!(best.score, 0.0);
    }

    #[test]
    fn naive_build_splits_a_separable_dataset() {
        let mut ds = Dataset::numerical(1, 2);
        for i in 0..10 {
            let class = i % 2;
            ds.push(Tuple::from_points(
                &[class as f64 * 10.0 + i as f64 * 0.1],
                class,
            ))
            .unwrap();
        }
        let splits = naive_build_splits(
            &ds,
            Measure::Entropy,
            NaiveSearch::Exhaustive,
            25,
            2.0,
            1e-6,
        );
        assert!(splits >= 1);
    }
}
