//! UDT-ES — End-point Sampling (§5.3).
//!
//! UDT-GP spends most of its remaining work computing end-point scores.
//! UDT-ES therefore evaluates only a sample of the end points (10 % by
//! default, the value the paper found to work well), derives the global
//! pruning threshold from that sample, prunes the resulting *coarse*
//! (concatenated) intervals, and only "brings back" the original end points
//! inside intervals that survive, re-pruning the finer intervals before any
//! pdf sample point is evaluated — the nine-row process illustrated in the
//! paper's Fig. 5.

use crate::split::pruned::{BoundingMode, PrunedSearch};

/// The paper's default end-point sampling rate.
pub const DEFAULT_SAMPLE_RATE: f64 = 0.10;

/// Builds the UDT-ES search strategy with the default 10 % sampling rate.
pub fn search() -> PrunedSearch {
    with_rate(DEFAULT_SAMPLE_RATE)
}

/// Builds UDT-ES with an explicit end-point sampling rate in `(0, 1]`.
pub fn with_rate(rate: f64) -> PrunedSearch {
    PrunedSearch::new(BoundingMode::Global, Some(rate), false, "UDT-ES")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::AttributeEvents;
    use crate::fractional::FractionalTuple;
    use crate::measure::Measure;
    use crate::split::{exhaustive::ExhaustiveSearch, gp, SearchStats, SplitSearch};
    use udt_data::UncertainValue;
    use udt_prob::SampledPdf;

    fn many_tuples() -> Vec<FractionalTuple> {
        // Enough tuples that 10 % end-point sampling is meaningful
        // (2 end points per tuple per attribute).
        let mut out = Vec::new();
        for i in 0..40 {
            let class = i % 2;
            let base = i as f64 * 0.8 + class as f64 * 6.0;
            let points: Vec<f64> = (0..12).map(|j| base + j as f64 * 0.45).collect();
            let mass: Vec<f64> = (0..12).map(|j| 1.0 + ((i + j) % 5) as f64).collect();
            out.push(FractionalTuple {
                values: vec![UncertainValue::Numeric(
                    SampledPdf::new(points, mass).unwrap(),
                )],
                label: class,
                weight: 1.0,
            });
        }
        out
    }

    #[test]
    fn es_matches_the_exhaustive_optimum() {
        let tuples = many_tuples();
        let ev = AttributeEvents::build(&tuples, 0, 2).unwrap();
        let mut ex_stats = SearchStats::default();
        let ex = ExhaustiveSearch
            .find_best(&[(0, ev.clone())], Measure::Entropy, &mut ex_stats)
            .unwrap();
        let mut es_stats = SearchStats::default();
        let es = search()
            .find_best(&[(0, ev)], Measure::Entropy, &mut es_stats)
            .unwrap();
        assert!((es.score - ex.score).abs() < 1e-9);
        assert!(es_stats.entropy_like_calculations() < ex_stats.entropy_like_calculations());
    }

    #[test]
    fn es_evaluates_fewer_end_points_up_front_than_gp() {
        let tuples = many_tuples();
        let ev = AttributeEvents::build(&tuples, 0, 2).unwrap();
        let mut gp_stats = SearchStats::default();
        let mut es_stats = SearchStats::default();
        let g = gp::search()
            .find_best(&[(0, ev.clone())], Measure::Entropy, &mut gp_stats)
            .unwrap();
        let e = search()
            .find_best(&[(0, ev)], Measure::Entropy, &mut es_stats)
            .unwrap();
        assert!((g.score - e.score).abs() < 1e-9);
        // Every end point is evaluated at most once by ES (the sampled ones
        // up front, the rest only when their coarse interval survives), so
        // ES never performs more end-point evaluations than GP, which
        // evaluates all of them unconditionally.
        assert!(es_stats.end_point_evaluations <= gp_stats.end_point_evaluations);
    }

    #[test]
    fn sampling_rate_one_degenerates_to_gp_behaviour() {
        let tuples = many_tuples();
        let ev = AttributeEvents::build(&tuples, 0, 2).unwrap();
        let mut full_stats = SearchStats::default();
        let mut gp_stats = SearchStats::default();
        let full = with_rate(1.0)
            .find_best(&[(0, ev.clone())], Measure::Entropy, &mut full_stats)
            .unwrap();
        let g = gp::search()
            .find_best(&[(0, ev)], Measure::Entropy, &mut gp_stats)
            .unwrap();
        assert!((full.score - g.score).abs() < 1e-12);
        assert_eq!(
            full_stats.end_point_evaluations,
            gp_stats.end_point_evaluations
        );
    }

    #[test]
    fn es_configuration() {
        assert_eq!(search().name(), "UDT-ES");
        assert_eq!(search().sample_rate(), Some(DEFAULT_SAMPLE_RATE));
        assert_eq!(with_rate(0.25).sample_rate(), Some(0.25));
    }
}
