//! UDT-GP — Global Pruning (§5.2).
//!
//! Identical to UDT-LP except that the pruning threshold is the best score
//! found so far across *all* attributes (initialised from the end-point
//! scores of every attribute), so one strongly discriminating attribute can
//! prune away most of the intervals of every other attribute.

use crate::split::pruned::{BoundingMode, PrunedSearch};

/// Builds the UDT-GP search strategy.
pub fn search() -> PrunedSearch {
    PrunedSearch::new(BoundingMode::Global, None, false, "UDT-GP")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::AttributeEvents;
    use crate::fractional::FractionalTuple;
    use crate::measure::Measure;
    use crate::split::{exhaustive::ExhaustiveSearch, lp, SearchStats, SplitSearch};
    use udt_data::UncertainValue;
    use udt_prob::SampledPdf;

    /// Three attributes with very different discriminating power.
    fn tuples() -> Vec<FractionalTuple> {
        let mut out = Vec::new();
        for i in 0..10 {
            let class = i % 2;
            let strong = class as f64 * 40.0 + i as f64;
            let weak_points: Vec<f64> = (0..20).map(|j| ((i * 3 + j) % 17) as f64).collect();
            let noise_points: Vec<f64> = (0..20)
                .map(|j| ((i * 7 + j * 3) % 23) as f64 * 0.5)
                .collect();
            let mut wp = weak_points.clone();
            wp.sort_by(|a, b| a.partial_cmp(b).unwrap());
            wp.dedup();
            let mut np = noise_points.clone();
            np.sort_by(|a, b| a.partial_cmp(b).unwrap());
            np.dedup();
            out.push(FractionalTuple {
                values: vec![
                    UncertainValue::point(strong),
                    UncertainValue::Numeric(
                        SampledPdf::new(wp.clone(), vec![1.0; wp.len()]).unwrap(),
                    ),
                    UncertainValue::Numeric(
                        SampledPdf::new(np.clone(), vec![1.0; np.len()]).unwrap(),
                    ),
                ],
                label: class,
                weight: 1.0,
            });
        }
        out
    }

    #[test]
    fn gp_matches_exhaustive_across_attributes() {
        let tuples = tuples();
        let events: Vec<(usize, AttributeEvents)> = (0..3)
            .filter_map(|j| AttributeEvents::build(&tuples, j, 2).map(|e| (j, e)))
            .collect();
        let mut ex_stats = SearchStats::default();
        let ex = ExhaustiveSearch
            .find_best(&events, Measure::Entropy, &mut ex_stats)
            .unwrap();
        let mut gp_stats = SearchStats::default();
        let gp = search()
            .find_best(&events, Measure::Entropy, &mut gp_stats)
            .unwrap();
        assert!((gp.score - ex.score).abs() < 1e-9);
        assert_eq!(gp.attribute, ex.attribute);
    }

    #[test]
    fn global_threshold_prunes_at_least_as_much_as_local() {
        let tuples = tuples();
        let events: Vec<(usize, AttributeEvents)> = (0..3)
            .filter_map(|j| AttributeEvents::build(&tuples, j, 2).map(|e| (j, e)))
            .collect();
        let mut gp_stats = SearchStats::default();
        let mut lp_stats = SearchStats::default();
        search().find_best(&events, Measure::Entropy, &mut gp_stats);
        lp::search().find_best(&events, Measure::Entropy, &mut lp_stats);
        assert!(gp_stats.entropy_like_calculations() <= lp_stats.entropy_like_calculations());
        assert!(gp_stats.intervals_pruned >= lp_stats.intervals_pruned);
    }

    #[test]
    fn gp_configuration() {
        assert_eq!(search().name(), "UDT-GP");
        assert_eq!(search().bounding(), BoundingMode::Global);
    }
}
