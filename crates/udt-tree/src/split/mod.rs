//! Split-point search strategies.
//!
//! Every tree node asks a [`SplitSearch`] strategy for the best `(attribute,
//! split point)` pair over the node's fractional tuples. The strategies
//! implement the paper's algorithms:
//!
//! * [`exhaustive::ExhaustiveSearch`] — UDT's brute-force search over every
//!   pdf sample point (§4.2), also used (on point data) by AVG (§4.1);
//! * [`pruned::PrunedSearch`] — the common engine behind UDT-BP, UDT-LP,
//!   UDT-GP and UDT-ES (§5), configured via [`pruned::BoundingMode`] and
//!   the end-point sampling rate;
//! * [`bp`], [`lp`], [`gp`], [`es`] — thin constructors selecting the
//!   paper's exact configurations.
//!
//! All strategies record their work in [`SearchStats`], whose
//! `entropy_like_calculations` counter is the quantity plotted in the
//! paper's Fig. 7.

pub mod bp;
pub mod es;
pub mod exhaustive;
pub mod gp;
pub mod lp;
pub mod pruned;

/// Minimum total candidate-position count before an attribute scan
/// fans out onto the build pool. Handing a task to another thread costs
/// a queue push and a wake; near the leaves of a tree a whole attribute
/// scan covers only a handful of positions, where that overhead would
/// dominate the work.
pub(crate) const PARALLEL_MIN_POSITIONS: usize = 4096;

/// Maps `f` over `0..n` — on the thread's current build pool (see
/// [`crate::pool`]) when one is entered with more than one thread,
/// there is more than one item, and `work` (the caller's estimate of
/// total candidate positions) is large enough to amortise the task
/// hand-off — sequentially otherwise. Results always come back in index
/// order, so merging stays deterministic and the outcome is identical
/// at every thread count.
pub(crate) fn map_attributes<T, F>(n: usize, work: usize, f: F) -> Vec<T>
where
    F: Fn(usize) -> T + Sync,
    T: Send,
{
    if n > 1 && work >= PARALLEL_MIN_POSITIONS {
        if let Some(pool) = crate::pool::fanout() {
            return pool.map(n, f);
        }
    }
    (0..n).map(f).collect()
}

use serde::{Deserialize, Serialize};

use crate::events::AttributeEvents;
use crate::measure::Measure;

/// The best split found for a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitChoice {
    /// Index of the attribute to test.
    pub attribute: usize,
    /// Split point `z`; the node's test is `v ≤ z`.
    pub split: f64,
    /// The dispersion score achieved (lower is better).
    pub score: f64,
}

impl SplitChoice {
    /// Whether `candidate` improves on `self` under the deterministic
    /// ordering used by every strategy: strictly better score first, then
    /// lower attribute index, then lower split point. The tolerance makes
    /// tie-breaking stable under floating-point jitter so that all
    /// algorithms pick the same split when scores tie.
    pub fn is_improved_by(&self, candidate: &SplitChoice) -> bool {
        const TOL: f64 = 1e-12;
        if candidate.score < self.score - TOL {
            return true;
        }
        if candidate.score > self.score + TOL {
            return false;
        }
        (candidate.attribute, candidate.split) < (self.attribute, self.split)
    }
}

/// Folds `candidate` into `best` under the deterministic tie-break
/// ordering of [`SplitChoice::is_improved_by`]. The single merge point
/// used by every search strategy, so the (score, attribute, split)
/// invariant that the parallel merge and the regression tests rely on
/// lives in one place.
pub(crate) fn merge_best(best: &mut Option<SplitChoice>, candidate: SplitChoice) {
    match best {
        Some(b) if !b.is_improved_by(&candidate) => {}
        _ => *best = Some(candidate),
    }
}

/// Instrumentation counters for one tree construction (the quantities
/// reported in the paper's Figs. 6 and 7).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Dispersion evaluations at candidate split points.
    pub entropy_calculations: u64,
    /// Interval lower-bound evaluations (eq. 3 / eq. 4). The paper counts
    /// these together with entropy calculations because they cost about the
    /// same.
    pub bound_calculations: u64,
    /// Dispersion evaluations performed at interval end points (a subset of
    /// `entropy_calculations`).
    pub end_point_evaluations: u64,
    /// Candidate split points available across all attributes (the search
    /// space size `k·(m·s − 1)` of §4.2).
    pub candidate_points: u64,
    /// Candidate split points actually scored: end-point evaluations
    /// plus surviving interval interiors (a subset of
    /// `candidate_points`; the gap is what pruning saved).
    pub candidates_scored: u64,
    /// End-point intervals examined.
    pub intervals_examined: u64,
    /// Intervals whose interiors were pruned (by Theorems 1–3 or by
    /// bounding).
    pub intervals_pruned: u64,
    /// The subset of `intervals_pruned` discarded by the eq. 3/4
    /// interval lower bound (rather than outright by Theorems 1–3).
    pub intervals_pruned_bound: u64,
    /// Tree nodes for which a split search was run.
    pub nodes_searched: u64,
    /// Total bytes allocated for child node state by the partition layer
    /// (see [`crate::columns`]) — the data-movement constant the view
    /// partitioning shrinks.
    pub partition_bytes: u64,
    /// Largest single partition call's allocation, in bytes.
    pub partition_peak_bytes: u64,
    /// Nanoseconds spent in the root presort phase
    /// ([`crate::columns::build_root_with`]). Recorded once on the build
    /// thread, so this is wall-clock.
    pub presort_ns: u64,
    /// Nanoseconds spent in per-node split search (event-structure
    /// construction plus the strategy scan), summed over every thread
    /// that built a subtree. Each contribution is that thread's wall
    /// time in the phase; work a fan-out's pool helpers do inside the
    /// window is covered by the window, not summed again.
    pub search_ns: u64,
    /// Nanoseconds spent partitioning node state into children, summed
    /// over threads like `search_ns`.
    pub partition_ns: u64,
    /// Nanoseconds spent grafting subtree fragments back into the main
    /// arena and renumbering it to canonical preorder. Recorded once on
    /// the build thread, so this is wall-clock.
    pub graft_ns: u64,
}

impl SearchStats {
    /// Total "entropy-like" computations — the quantity of Fig. 7.
    pub fn entropy_like_calculations(&self) -> u64 {
        self.entropy_calculations + self.bound_calculations
    }

    /// Candidate split points pruned before scoring — the paper's
    /// headline pruning-effectiveness quantity (Fig. 6).
    pub fn candidates_pruned(&self) -> u64 {
        self.candidate_points.saturating_sub(self.candidates_scored)
    }

    /// Fraction of candidate split points pruned before scoring (0 when
    /// no candidates existed).
    pub fn prune_fraction(&self) -> f64 {
        if self.candidate_points == 0 {
            0.0
        } else {
            self.candidates_pruned() as f64 / self.candidate_points as f64
        }
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &SearchStats) {
        self.entropy_calculations += other.entropy_calculations;
        self.bound_calculations += other.bound_calculations;
        self.end_point_evaluations += other.end_point_evaluations;
        self.candidate_points += other.candidate_points;
        self.candidates_scored += other.candidates_scored;
        self.intervals_examined += other.intervals_examined;
        self.intervals_pruned += other.intervals_pruned;
        self.intervals_pruned_bound += other.intervals_pruned_bound;
        self.nodes_searched += other.nodes_searched;
        self.partition_bytes += other.partition_bytes;
        self.partition_peak_bytes = self.partition_peak_bytes.max(other.partition_peak_bytes);
        self.presort_ns += other.presort_ns;
        self.search_ns += other.search_ns;
        self.partition_ns += other.partition_ns;
        self.graft_ns += other.graft_ns;
    }
}

/// A strategy for finding the best split over a node's numerical
/// attributes.
pub trait SplitSearch: Send + Sync {
    /// Finds the best split over the given per-attribute candidate
    /// structures (pairs of attribute index and its [`AttributeEvents`]).
    /// Returns `None` when no valid split exists. Work is recorded in
    /// `stats`.
    fn find_best(
        &self,
        events: &[(usize, AttributeEvents)],
        measure: Measure,
        stats: &mut SearchStats,
    ) -> Option<SplitChoice>;

    /// Short algorithm name for reports ("UDT", "UDT-ES", …).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_choice_ordering_prefers_lower_score_then_attribute_then_split() {
        let base = SplitChoice {
            attribute: 1,
            split: 5.0,
            score: 0.5,
        };
        assert!(base.is_improved_by(&SplitChoice {
            attribute: 3,
            split: 9.0,
            score: 0.4
        }));
        assert!(!base.is_improved_by(&SplitChoice {
            attribute: 0,
            split: 0.0,
            score: 0.6
        }));
        // Equal score: lower attribute wins.
        assert!(base.is_improved_by(&SplitChoice {
            attribute: 0,
            split: 9.0,
            score: 0.5
        }));
        // Equal score and attribute: lower split wins.
        assert!(base.is_improved_by(&SplitChoice {
            attribute: 1,
            split: 4.0,
            score: 0.5
        }));
        assert!(!base.is_improved_by(&base.clone()));
    }

    #[test]
    fn stats_merge_and_totals() {
        let mut a = SearchStats {
            entropy_calculations: 10,
            bound_calculations: 2,
            end_point_evaluations: 4,
            candidate_points: 100,
            candidates_scored: 30,
            intervals_examined: 5,
            intervals_pruned: 3,
            intervals_pruned_bound: 2,
            nodes_searched: 1,
            partition_bytes: 64,
            partition_peak_bytes: 48,
            presort_ns: 7,
            search_ns: 11,
            partition_ns: 13,
            graft_ns: 17,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.entropy_calculations, 20);
        assert_eq!(a.bound_calculations, 4);
        assert_eq!(a.entropy_like_calculations(), 24);
        assert_eq!(a.nodes_searched, 2);
        // Pruning effectiveness: scored and bound-pruned accumulate,
        // and the derived quantities follow.
        assert_eq!(a.candidates_scored, 60);
        assert_eq!(a.intervals_pruned_bound, 4);
        assert_eq!(a.candidates_pruned(), 140);
        assert!((a.prune_fraction() - 0.7).abs() < 1e-12);
        // Totals add; the peak is the max across merged stats.
        assert_eq!(a.partition_bytes, 128);
        assert_eq!(a.partition_peak_bytes, 48);
        // Per-phase timings accumulate.
        assert_eq!(a.presort_ns, 14);
        assert_eq!(a.search_ns, 22);
        assert_eq!(a.partition_ns, 26);
        assert_eq!(a.graft_ns, 34);
    }
}
