//! UDT-LP — Local Pruning (§5.2).
//!
//! On top of UDT-BP, heterogeneous intervals are pruned by computing the
//! eq. 3 / eq. 4 lower bound and comparing it against `H_j*`, the smallest
//! end-point score *of the same attribute*. Every attribute is processed
//! independently.

use crate::split::pruned::{BoundingMode, PrunedSearch};

/// Builds the UDT-LP search strategy.
pub fn search() -> PrunedSearch {
    PrunedSearch::new(BoundingMode::Local, None, false, "UDT-LP")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::AttributeEvents;
    use crate::fractional::FractionalTuple;
    use crate::measure::Measure;
    use crate::split::{bp, exhaustive::ExhaustiveSearch, SearchStats, SplitSearch};
    use udt_data::UncertainValue;
    use udt_prob::SampledPdf;

    /// Heavily overlapping pdfs: few empty/homogeneous intervals, so BP
    /// alone cannot prune much, but bounding can.
    fn overlapping_tuples() -> Vec<FractionalTuple> {
        let mut tuples = Vec::new();
        for i in 0..8 {
            let class = i % 2;
            // Classes are offset only slightly so their pdfs overlap.
            let base = i as f64 * 0.5 + class as f64 * 2.0;
            let points: Vec<f64> = (0..25).map(|j| base + j as f64 * 0.37).collect();
            let mass: Vec<f64> = (0..25).map(|j| 1.0 + (j % 4) as f64).collect();
            tuples.push(FractionalTuple {
                values: vec![UncertainValue::Numeric(
                    SampledPdf::new(points, mass).unwrap(),
                )],
                label: class,
                weight: 1.0,
            });
        }
        tuples
    }

    #[test]
    fn lp_matches_exhaustive_and_improves_on_bp() {
        let tuples = overlapping_tuples();
        let ev = AttributeEvents::build(&tuples, 0, 2).unwrap();
        let mut ex_stats = SearchStats::default();
        let ex = ExhaustiveSearch
            .find_best(&[(0, ev.clone())], Measure::Entropy, &mut ex_stats)
            .unwrap();
        let mut bp_stats = SearchStats::default();
        bp::search(false).find_best(&[(0, ev.clone())], Measure::Entropy, &mut bp_stats);
        let mut lp_stats = SearchStats::default();
        let lp = search()
            .find_best(&[(0, ev)], Measure::Entropy, &mut lp_stats)
            .unwrap();
        assert!((lp.score - ex.score).abs() < 1e-9);
        assert!(lp_stats.bound_calculations > 0, "LP must compute bounds");
        // LP never does more entropy-like work than BP plus its bounds
        // budget; on this workload it should do strictly less than UDT.
        assert!(lp_stats.entropy_like_calculations() < ex_stats.entropy_like_calculations());
    }

    #[test]
    fn lp_works_with_gini() {
        let tuples = overlapping_tuples();
        let ev = AttributeEvents::build(&tuples, 0, 2).unwrap();
        let mut ex_stats = SearchStats::default();
        let ex = ExhaustiveSearch
            .find_best(&[(0, ev.clone())], Measure::Gini, &mut ex_stats)
            .unwrap();
        let mut lp_stats = SearchStats::default();
        let lp = search()
            .find_best(&[(0, ev)], Measure::Gini, &mut lp_stats)
            .unwrap();
        assert!((lp.score - ex.score).abs() < 1e-9);
    }

    #[test]
    fn lp_configuration() {
        assert_eq!(search().name(), "UDT-LP");
        assert_eq!(search().bounding(), BoundingMode::Local);
        assert_eq!(search().sample_rate(), None);
    }
}
