//! Exhaustive split search (the baseline UDT algorithm of §4.2).
//!
//! Evaluates the dispersion score at every distinct pdf sample point of
//! every attribute — the `k·(m·s − 1)` candidate evaluations that the
//! pruning algorithms of §5 set out to reduce. On point-valued data (one
//! sample per value) this degenerates to the classical C4.5-style search
//! used by AVG (§4.1).

use crate::events::AttributeEvents;
use crate::measure::Measure;
use crate::split::{map_attributes, merge_best, SearchStats, SplitChoice, SplitSearch};

/// The exhaustive (no-pruning) split search.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhaustiveSearch;

impl SplitSearch for ExhaustiveSearch {
    fn find_best(
        &self,
        events: &[(usize, AttributeEvents)],
        measure: Measure,
        stats: &mut SearchStats,
    ) -> Option<SplitChoice> {
        // Attributes are scanned independently (in parallel under the
        // `parallel` feature when the node is large enough) and the
        // per-attribute bests merged in index order, which reproduces the
        // sequential tie-breaking exactly.
        let total_positions: usize = events.iter().map(|(_, ev)| ev.n_positions()).sum();
        let per_attribute = map_attributes(events.len(), total_positions, |slot| {
            let (attribute, ev) = &events[slot];
            let n = ev.n_positions();
            let mut local = SearchStats::default();
            // The largest position cannot be a split point (empty right
            // side), hence the paper's "m·s − 1".
            local.candidate_points += (n - 1) as u64;
            let mut best: Option<SplitChoice> = None;
            // The whole attribute is one contiguous candidate batch; the
            // scalar kernel scores it exactly like the historical
            // per-candidate loop, the simd kernel vectorizes it. Every
            // candidate counts one entropy calculation either way.
            let mut scores = Vec::new();
            ev.score_range_into(0..n - 1, measure, &mut scores);
            local.entropy_calculations += (n - 1) as u64;
            local.candidates_scored += (n - 1) as u64;
            for (i, &score) in scores.iter().enumerate() {
                if !score.is_finite() {
                    continue;
                }
                merge_best(
                    &mut best,
                    SplitChoice {
                        attribute: *attribute,
                        split: ev.xs()[i],
                        score,
                    },
                );
            }
            (best, local)
        });
        let mut best: Option<SplitChoice> = None;
        for (candidate, local) in per_attribute {
            stats.merge(&local);
            if let Some(candidate) = candidate {
                merge_best(&mut best, candidate);
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "UDT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fractional::FractionalTuple;
    use udt_data::UncertainValue;
    use udt_prob::SampledPdf;

    fn ft(points: &[f64], mass: &[f64], label: usize) -> FractionalTuple {
        FractionalTuple {
            values: vec![UncertainValue::Numeric(
                SampledPdf::new(points.to_vec(), mass.to_vec()).unwrap(),
            )],
            label,
            weight: 1.0,
        }
    }

    fn point(v: f64, label: usize) -> FractionalTuple {
        ft(&[v], &[1.0], label)
    }

    #[test]
    fn finds_the_perfect_split_on_separable_point_data() {
        let tuples = vec![point(1.0, 0), point(2.0, 0), point(8.0, 1), point(9.0, 1)];
        let ev = AttributeEvents::build(&tuples, 0, 2).unwrap();
        let mut stats = SearchStats::default();
        let best = ExhaustiveSearch
            .find_best(&[(0, ev)], Measure::Entropy, &mut stats)
            .unwrap();
        assert_eq!(best.attribute, 0);
        assert_eq!(best.split, 2.0);
        assert_eq!(best.score, 0.0);
        // 4 distinct positions → 3 candidates, all evaluated.
        assert_eq!(stats.entropy_calculations, 3);
        assert_eq!(stats.candidate_points, 3);
        assert_eq!(stats.bound_calculations, 0);
    }

    #[test]
    fn evaluates_every_sample_point_of_uncertain_data() {
        let tuples = vec![
            ft(&[0.0, 1.0, 2.0, 3.0], &[1.0; 4], 0),
            ft(&[2.5, 3.5, 4.5, 5.5], &[1.0; 4], 1),
        ];
        let ev = AttributeEvents::build(&tuples, 0, 2).unwrap();
        let mut stats = SearchStats::default();
        let best = ExhaustiveSearch
            .find_best(&[(0, ev)], Measure::Entropy, &mut stats)
            .unwrap();
        // 8 distinct positions → 7 candidates.
        assert_eq!(stats.entropy_calculations, 7);
        // Best split separates the two pdfs' bulk: between 2.0 and 2.5 the
        // left side holds 4/4 of class 0 and 0/4 of class 1.
        assert!(best.split >= 2.0 && best.split < 2.5);
    }

    #[test]
    fn prefers_the_lower_attribute_on_ties() {
        // Two identical attributes: the split must come from attribute 0.
        let tuples = vec![
            FractionalTuple {
                values: vec![UncertainValue::point(1.0), UncertainValue::point(1.0)],
                label: 0,
                weight: 1.0,
            },
            FractionalTuple {
                values: vec![UncertainValue::point(5.0), UncertainValue::point(5.0)],
                label: 1,
                weight: 1.0,
            },
        ];
        let ev0 = AttributeEvents::build(&tuples, 0, 2).unwrap();
        let ev1 = AttributeEvents::build(&tuples, 1, 2).unwrap();
        let mut stats = SearchStats::default();
        let best = ExhaustiveSearch
            .find_best(&[(0, ev0), (1, ev1)], Measure::Entropy, &mut stats)
            .unwrap();
        assert_eq!(best.attribute, 0);
    }

    #[test]
    fn returns_none_when_no_attribute_is_splittable() {
        let mut stats = SearchStats::default();
        assert!(ExhaustiveSearch
            .find_best(&[], Measure::Entropy, &mut stats)
            .is_none());
    }

    #[test]
    fn works_with_gini_and_gain_ratio() {
        let tuples = vec![point(1.0, 0), point(2.0, 0), point(8.0, 1), point(9.0, 1)];
        let ev = AttributeEvents::build(&tuples, 0, 2).unwrap();
        for m in [Measure::Gini, Measure::GainRatio] {
            let mut stats = SearchStats::default();
            let best = ExhaustiveSearch
                .find_best(&[(0, ev.clone())], m, &mut stats)
                .unwrap();
            assert_eq!(best.split, 2.0, "{m:?} should find the perfect split");
        }
    }
}
