//! The common pruning engine behind UDT-BP, UDT-LP, UDT-GP and UDT-ES.
//!
//! All four algorithms of §5 share the same skeleton:
//!
//! 1. evaluate the dispersion score at interval *end points* (all of them,
//!    or a sample of them for UDT-ES);
//! 2. skip the interiors of empty and homogeneous intervals (Theorems 1–2;
//!    for uniform pdfs Theorem 3 additionally allows skipping every
//!    interior);
//! 3. optionally compute the eq. 3 / eq. 4 lower bound of each remaining
//!    heterogeneous interval and prune it when the bound cannot beat the
//!    best score found so far — locally per attribute (UDT-LP) or globally
//!    across attributes (UDT-GP / UDT-ES);
//! 4. for UDT-ES, intervals that survive the coarse (sampled-end-point)
//!    pass are refined: the original end points inside them are evaluated
//!    and the finer intervals re-pruned before any interior sample point is
//!    evaluated.
//!
//! The pruning is *safe*: a candidate is only skipped when a theorem or a
//! lower bound guarantees it cannot score better than a candidate that is
//! kept, so the optimal score is always preserved (verified by property
//! tests against [`super::exhaustive::ExhaustiveSearch`]).

use crate::events::{AttributeEvents, Interval, IntervalKind};
use crate::measure::Measure;
use crate::split::{map_attributes, merge_best, SearchStats, SplitChoice, SplitSearch};

/// How lower-bound pruning of heterogeneous intervals is thresholded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundingMode {
    /// No bounding: only Theorems 1–3 are used (UDT-BP).
    None,
    /// Threshold is the best end-point score of the *same attribute*
    /// (UDT-LP).
    Local,
    /// Threshold is the best score seen so far across *all* attributes
    /// (UDT-GP, UDT-ES).
    Global,
}

/// Configuration of the pruning engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrunedSearch {
    bounding: BoundingMode,
    /// When `Some(rate)`, only that fraction of end points is evaluated up
    /// front (always at least the two extreme ones); surviving coarse
    /// intervals are refined on demand (UDT-ES, §5.3).
    end_point_sample_rate: Option<f64>,
    /// When true, every pdf is known to be uniform, so Theorem 3 applies
    /// and interior points of *heterogeneous* intervals can be skipped as
    /// well. Note: the theorem is exact for continuous uniform pdfs; for
    /// the discretised pdfs used here it is exact only when all pdfs share
    /// a common sample grid (otherwise a pdf whose domain begins exactly at
    /// an interval's right end point breaks the linear-count premise), so
    /// the hint is best treated as an approximation that trades a small
    /// amount of optimality for end-point-only search.
    uniform_pdf_hint: bool,
    name: &'static str,
}

impl PrunedSearch {
    /// Creates an engine with explicit settings. `name` is used in reports.
    pub fn new(
        bounding: BoundingMode,
        end_point_sample_rate: Option<f64>,
        uniform_pdf_hint: bool,
        name: &'static str,
    ) -> Self {
        PrunedSearch {
            bounding,
            end_point_sample_rate,
            uniform_pdf_hint,
            name,
        }
    }

    /// Returns a copy with the Theorem 3 uniform-pdf hint enabled.
    pub fn with_uniform_hint(mut self, hint: bool) -> Self {
        self.uniform_pdf_hint = hint;
        self
    }

    /// The configured bounding mode.
    pub fn bounding(&self) -> BoundingMode {
        self.bounding
    }

    /// The configured end-point sampling rate, if any.
    pub fn sample_rate(&self) -> Option<f64> {
        self.end_point_sample_rate
    }

    /// Evaluates the scores at the end-point positions `idx` (ascending)
    /// as one batch, updating `best`, the running attribute minimum and
    /// the counters. The largest position is not a valid split point (its
    /// right side is empty), so it is not part of the paper's `m·s − 1`
    /// candidates and is dropped before scoring at no cost.
    #[allow(clippy::too_many_arguments)] // shared by pass 1 and refinement: search state + counters
    fn evaluate_end_points(
        ev: &AttributeEvents,
        attribute: usize,
        idx: &[usize],
        measure: Measure,
        attribute_best: &mut Option<f64>,
        best: &mut Option<SplitChoice>,
        stats: &mut SearchStats,
        scores: &mut Vec<f64>,
    ) {
        let mut valid = idx;
        if let Some((&last, rest)) = idx.split_last() {
            if last + 1 == ev.n_positions() {
                valid = rest;
            }
        }
        ev.score_indices_into(valid, measure, scores);
        stats.entropy_calculations += valid.len() as u64;
        stats.end_point_evaluations += valid.len() as u64;
        stats.candidates_scored += valid.len() as u64;
        for (&i, &score) in valid.iter().zip(scores.iter()) {
            if score.is_finite() {
                merge_best(
                    best,
                    SplitChoice {
                        attribute,
                        split: ev.xs()[i],
                        score,
                    },
                );
                *attribute_best = Some(attribute_best.map_or(score, |b: f64| b.min(score)));
            }
        }
    }

    /// The pruning threshold applicable to `attribute` right now.
    fn threshold(&self, attribute_best: Option<f64>, global_best: &Option<SplitChoice>) -> f64 {
        match self.bounding {
            BoundingMode::None => f64::NEG_INFINITY,
            BoundingMode::Local => attribute_best.unwrap_or(f64::INFINITY),
            BoundingMode::Global => global_best.as_ref().map_or(f64::INFINITY, |b| b.score),
        }
    }

    /// Whether the interval's interior can be skipped without a bound.
    fn theorem_prunes_interior(&self, kind: IntervalKind, measure: Measure) -> bool {
        match kind {
            IntervalKind::Empty => true,
            IntervalKind::Homogeneous => measure.supports_homogeneous_pruning(),
            IntervalKind::Heterogeneous => self.uniform_pdf_hint,
        }
    }

    /// Selects the sampled end-point boundary indices for one attribute.
    fn sampled_boundaries(&self, ev: &AttributeEvents) -> Vec<usize> {
        let all = ev.end_point_indices();
        let Some(rate) = self.end_point_sample_rate else {
            return all.to_vec();
        };
        if all.len() <= 2 {
            return all.to_vec();
        }
        let target = ((all.len() as f64 * rate).ceil() as usize).clamp(2, all.len());
        if target >= all.len() {
            return all.to_vec();
        }
        // Evenly spaced sample always containing the first and last end
        // point, so the sampled intervals still cover the whole domain.
        let mut picked: Vec<usize> = (0..target)
            .map(|i| {
                let pos = i as f64 * (all.len() - 1) as f64 / (target - 1) as f64;
                all[pos.round() as usize]
            })
            .collect();
        picked.dedup();
        picked
    }

    /// Processes one (possibly coarse) interval: applies theorem- and
    /// bound-based pruning, refines coarse intervals when end-point
    /// sampling is active, and evaluates surviving interior candidates.
    #[allow(clippy::too_many_arguments)]
    fn process_interval(
        &self,
        ev: &AttributeEvents,
        attribute: usize,
        interval: &Interval,
        measure: Measure,
        refine: bool,
        attribute_best: &mut Option<f64>,
        best: &mut Option<SplitChoice>,
        stats: &mut SearchStats,
        scores: &mut Vec<f64>,
    ) {
        stats.intervals_examined += 1;
        if ev.interior_candidates(interval).is_empty() {
            return;
        }
        if self.theorem_prunes_interior(interval.kind, measure) {
            stats.intervals_pruned += 1;
            return;
        }
        if self.bounding != BoundingMode::None {
            let threshold = self.threshold(*attribute_best, best);
            let bound = ev.interval_lower_bound(interval.lo_idx, interval.hi_idx, measure);
            stats.bound_calculations += 1;
            if bound >= threshold {
                stats.intervals_pruned += 1;
                stats.intervals_pruned_bound += 1;
                return;
            }
        }
        if refine {
            // UDT-ES: bring back the original end points inside this coarse
            // interval, evaluate them, and re-prune the finer intervals.
            let inner: Vec<usize> = ev
                .end_point_indices()
                .iter()
                .copied()
                .filter(|&i| i > interval.lo_idx && i < interval.hi_idx)
                .collect();
            if !inner.is_empty() {
                Self::evaluate_end_points(
                    ev,
                    attribute,
                    &inner,
                    measure,
                    attribute_best,
                    best,
                    stats,
                    scores,
                );
                let mut boundaries = Vec::with_capacity(inner.len() + 2);
                boundaries.push(interval.lo_idx);
                boundaries.extend(inner);
                boundaries.push(interval.hi_idx);
                for fine in ev.intervals_between(&boundaries) {
                    self.process_interval(
                        ev,
                        attribute,
                        &fine,
                        measure,
                        false,
                        attribute_best,
                        best,
                        stats,
                        scores,
                    );
                }
                return;
            }
        }
        // The surviving interior is one contiguous candidate batch. No
        // interior index can be the last position (`idx < hi_idx <= n-1`),
        // so every candidate counts one entropy calculation, exactly like
        // the historical per-candidate loop.
        let range = ev.interior_candidates(interval);
        stats.entropy_calculations += range.len() as u64;
        stats.candidates_scored += range.len() as u64;
        ev.score_range_into(range.clone(), measure, scores);
        for (slot, idx) in range.enumerate() {
            let score = scores[slot];
            if score.is_finite() {
                merge_best(
                    best,
                    SplitChoice {
                        attribute,
                        split: ev.xs()[idx],
                        score,
                    },
                );
            }
        }
    }
}

impl SplitSearch for PrunedSearch {
    fn find_best(
        &self,
        events: &[(usize, AttributeEvents)],
        measure: Measure,
        stats: &mut SearchStats,
    ) -> Option<SplitChoice> {
        let mut best: Option<SplitChoice> = None;

        // Pass 1: evaluate (sampled) end points for every attribute —
        // independently per attribute (fanned out on the build pool when
        // large enough), merged in index order. Doing this for all
        // attributes before any interval work is what makes the Global
        // threshold of UDT-GP/UDT-ES cross-attribute.
        let total_positions: usize = events.iter().map(|(_, ev)| ev.n_positions()).sum();
        let pass1 = map_attributes(events.len(), total_positions, |slot| {
            let (attribute, ev) = &events[slot];
            let mut local = SearchStats::default();
            local.candidate_points += (ev.n_positions() - 1) as u64;
            let bounds_idx = self.sampled_boundaries(ev);
            let mut local_best: Option<SplitChoice> = None;
            let mut attr_best: Option<f64> = None;
            let mut scores = Vec::new();
            Self::evaluate_end_points(
                ev,
                *attribute,
                &bounds_idx,
                measure,
                &mut attr_best,
                &mut local_best,
                &mut local,
                &mut scores,
            );
            (bounds_idx, attr_best, local_best, local)
        });
        let mut boundaries: Vec<Vec<usize>> = Vec::with_capacity(events.len());
        let mut attribute_best: Vec<Option<f64>> = Vec::with_capacity(events.len());
        for (bounds_idx, attr_best, local_best, local) in pass1 {
            stats.merge(&local);
            if let Some(candidate) = local_best {
                merge_best(&mut best, candidate);
            }
            boundaries.push(bounds_idx);
            attribute_best.push(attr_best);
        }

        // Pass 2: interval pruning and interior evaluation. Always
        // sequential and progressive — the shared best improves as
        // attributes are processed, so later attributes prune against
        // the tightest threshold available. Keeping this pass on one
        // code path is part of the thread-count determinism contract: a
        // concurrent variant would have to freeze the threshold per
        // attribute, which prunes less and can resolve exact score ties
        // to a different (equal-score) split than the sequential scan.
        // Pass 1 carries the bulk of the evaluations and parallelises
        // freely; this pass is mostly bound arithmetic over intervals
        // the pruning already discarded.
        let refine = self.end_point_sample_rate.is_some();
        let mut scores = Vec::new();
        for (slot, (attribute, ev)) in events.iter().enumerate() {
            for interval in ev.intervals_between(&boundaries[slot]) {
                self.process_interval(
                    ev,
                    *attribute,
                    &interval,
                    measure,
                    refine,
                    &mut attribute_best[slot],
                    &mut best,
                    stats,
                    &mut scores,
                );
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::exhaustive::ExhaustiveSearch;
    use udt_data::UncertainValue;
    use udt_prob::SampledPdf;

    use crate::fractional::FractionalTuple;

    fn ft(points: &[f64], mass: &[f64], label: usize) -> FractionalTuple {
        FractionalTuple {
            values: vec![UncertainValue::Numeric(
                SampledPdf::new(points.to_vec(), mass.to_vec()).unwrap(),
            )],
            label,
            weight: 1.0,
        }
    }

    /// A small but awkward data set: overlapping pdfs of three classes.
    fn overlapping_tuples() -> Vec<FractionalTuple> {
        let mut tuples = Vec::new();
        for i in 0..6 {
            let base = i as f64;
            let points: Vec<f64> = (0..10).map(|j| base + j as f64 * 0.3).collect();
            let mass: Vec<f64> = (0..10).map(|j| 1.0 + ((i + j) % 3) as f64).collect();
            tuples.push(ft(&points, &mass, i % 3));
        }
        tuples
    }

    fn engines() -> Vec<PrunedSearch> {
        vec![
            PrunedSearch::new(BoundingMode::None, None, false, "UDT-BP"),
            PrunedSearch::new(BoundingMode::Local, None, false, "UDT-LP"),
            PrunedSearch::new(BoundingMode::Global, None, false, "UDT-GP"),
            PrunedSearch::new(BoundingMode::Global, Some(0.1), false, "UDT-ES"),
        ]
    }

    #[test]
    fn every_engine_matches_the_exhaustive_optimum() {
        let tuples = overlapping_tuples();
        let ev = AttributeEvents::build(&tuples, 0, 3).unwrap();
        let mut ex_stats = SearchStats::default();
        let exhaustive = ExhaustiveSearch
            .find_best(&[(0, ev.clone())], Measure::Entropy, &mut ex_stats)
            .unwrap();
        for engine in engines() {
            let mut stats = SearchStats::default();
            let found = engine
                .find_best(&[(0, ev.clone())], Measure::Entropy, &mut stats)
                .unwrap();
            assert!(
                (found.score - exhaustive.score).abs() < 1e-9,
                "{}: score {} != exhaustive {}",
                engine.name(),
                found.score,
                exhaustive.score
            );
            // Pruning may add bound computations on top of the points it
            // still has to evaluate, so the safe invariant is on the split
            // evaluations alone, not on the bound-inclusive total.
            assert!(
                stats.entropy_calculations <= ex_stats.entropy_calculations,
                "{}: pruning should not evaluate more split points than exhaustive",
                engine.name()
            );
        }
    }

    #[test]
    fn pruning_reduces_entropy_calculations_progressively() {
        let tuples = overlapping_tuples();
        let ev = AttributeEvents::build(&tuples, 0, 3).unwrap();
        let mut udt = SearchStats::default();
        ExhaustiveSearch.find_best(&[(0, ev.clone())], Measure::Entropy, &mut udt);
        let mut per_engine = Vec::new();
        for engine in engines() {
            let mut stats = SearchStats::default();
            engine.find_best(&[(0, ev.clone())], Measure::Entropy, &mut stats);
            per_engine.push(stats.entropy_like_calculations());
        }
        // BP does no more work than UDT, and the bounded engines do no more
        // than BP.
        assert!(per_engine[0] <= udt.entropy_like_calculations());
        assert!(per_engine[1] <= per_engine[0] + 10);
        assert!(per_engine[2] <= per_engine[1]);
    }

    #[test]
    fn uniform_hint_reduces_to_end_points_only() {
        // Uniform pdfs: Theorem 3 says the end points suffice.
        let tuples: Vec<FractionalTuple> = (0..8)
            .map(|i| {
                let base = i as f64 * 0.7;
                let points: Vec<f64> = (0..20).map(|j| base + j as f64 * 0.1).collect();
                ft(&points, &[1.0; 20], i % 2)
            })
            .collect();
        let ev = AttributeEvents::build(&tuples, 0, 2).unwrap();
        let mut ex = SearchStats::default();
        let exhaustive = ExhaustiveSearch
            .find_best(&[(0, ev.clone())], Measure::Entropy, &mut ex)
            .unwrap();
        let engine =
            PrunedSearch::new(BoundingMode::None, None, false, "UDT-BP").with_uniform_hint(true);
        let mut stats = SearchStats::default();
        let found = engine
            .find_best(&[(0, ev.clone())], Measure::Entropy, &mut stats)
            .unwrap();
        assert!((found.score - exhaustive.score).abs() < 1e-9);
        // Only end points were evaluated.
        assert_eq!(stats.entropy_calculations, stats.end_point_evaluations);
        assert!(stats.entropy_calculations < ex.entropy_calculations);
    }

    #[test]
    fn end_point_sampling_uses_fewer_end_point_evaluations() {
        let tuples = overlapping_tuples();
        let ev = AttributeEvents::build(&tuples, 0, 3).unwrap();
        let full = PrunedSearch::new(BoundingMode::Global, None, false, "UDT-GP");
        let sampled = PrunedSearch::new(BoundingMode::Global, Some(0.1), false, "UDT-ES");
        let mut full_stats = SearchStats::default();
        let mut sampled_stats = SearchStats::default();
        let a = full
            .find_best(&[(0, ev.clone())], Measure::Entropy, &mut full_stats)
            .unwrap();
        let b = sampled
            .find_best(&[(0, ev.clone())], Measure::Entropy, &mut sampled_stats)
            .unwrap();
        assert!((a.score - b.score).abs() < 1e-9);
    }

    #[test]
    fn gain_ratio_disables_homogeneous_pruning_but_stays_correct() {
        let tuples = overlapping_tuples();
        let ev = AttributeEvents::build(&tuples, 0, 3).unwrap();
        let mut ex = SearchStats::default();
        let exhaustive = ExhaustiveSearch
            .find_best(&[(0, ev.clone())], Measure::GainRatio, &mut ex)
            .unwrap();
        for engine in engines() {
            let mut stats = SearchStats::default();
            let found = engine
                .find_best(&[(0, ev.clone())], Measure::GainRatio, &mut stats)
                .unwrap();
            assert!(
                (found.score - exhaustive.score).abs() < 1e-9,
                "{} with gain ratio",
                engine.name()
            );
        }
    }

    #[test]
    fn multi_attribute_global_threshold_prunes_weak_attributes() {
        // Attribute 0 separates the classes perfectly; attribute 1 is noise
        // with heavily overlapping pdfs. The global threshold from
        // attribute 0 should prune most of attribute 1's intervals.
        let mut tuples = Vec::new();
        for i in 0..10 {
            let class = i % 2;
            let informative = if class == 0 { 0.0 } else { 100.0 } + i as f64;
            let noise_points: Vec<f64> = (0..15).map(|j| (i + j) as f64 * 0.9).collect();
            tuples.push(FractionalTuple {
                values: vec![
                    UncertainValue::point(informative),
                    UncertainValue::Numeric(SampledPdf::new(noise_points, vec![1.0; 15]).unwrap()),
                ],
                label: class,
                weight: 1.0,
            });
        }
        let ev0 = AttributeEvents::build(&tuples, 0, 2).unwrap();
        let ev1 = AttributeEvents::build(&tuples, 1, 2).unwrap();
        let gp = PrunedSearch::new(BoundingMode::Global, None, false, "UDT-GP");
        let lp = PrunedSearch::new(BoundingMode::Local, None, false, "UDT-LP");
        let mut gp_stats = SearchStats::default();
        let mut lp_stats = SearchStats::default();
        let g = gp
            .find_best(
                &[(0, ev0.clone()), (1, ev1.clone())],
                Measure::Entropy,
                &mut gp_stats,
            )
            .unwrap();
        let l = lp
            .find_best(&[(0, ev0), (1, ev1)], Measure::Entropy, &mut lp_stats)
            .unwrap();
        assert_eq!(g.attribute, 0);
        assert_eq!(g.score, 0.0);
        assert!((g.score - l.score).abs() < 1e-12);
        // The global threshold (0.0 from the perfect attribute) prunes at
        // least as many intervals as the local one.
        assert!(gp_stats.intervals_pruned >= lp_stats.intervals_pruned);
        assert!(gp_stats.entropy_like_calculations() <= lp_stats.entropy_like_calculations());
    }
}
