//! UDT-BP — Basic Pruning (§5.1).
//!
//! Evaluates every end point and every sample point inside heterogeneous
//! intervals, but skips the interiors of empty intervals (Theorem 1) and
//! homogeneous intervals (Theorem 2). When the caller knows that all pdfs
//! are uniform, Theorem 3 additionally allows skipping the interiors of
//! heterogeneous intervals (enable with
//! [`PrunedSearch::with_uniform_hint`]).

use crate::split::pruned::{BoundingMode, PrunedSearch};

/// Builds the UDT-BP search strategy.
pub fn search(uniform_pdf_hint: bool) -> PrunedSearch {
    PrunedSearch::new(BoundingMode::None, None, uniform_pdf_hint, "UDT-BP")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::AttributeEvents;
    use crate::fractional::FractionalTuple;
    use crate::measure::Measure;
    use crate::split::exhaustive::ExhaustiveSearch;
    use crate::split::{SearchStats, SplitSearch};
    use udt_data::UncertainValue;
    use udt_prob::SampledPdf;

    fn ft(points: &[f64], label: usize) -> FractionalTuple {
        FractionalTuple {
            values: vec![UncertainValue::Numeric(
                SampledPdf::new(points.to_vec(), vec![1.0; points.len()]).unwrap(),
            )],
            label,
            weight: 1.0,
        }
    }

    /// Well-separated classes produce many empty/homogeneous intervals, the
    /// case where BP shines.
    fn separated_tuples() -> Vec<FractionalTuple> {
        let mut tuples = Vec::new();
        for i in 0..6 {
            let class = i % 2;
            let base = class as f64 * 50.0 + i as f64;
            let points: Vec<f64> = (0..8).map(|j| base + j as f64 * 0.2).collect();
            tuples.push(ft(&points, class));
        }
        tuples
    }

    #[test]
    fn bp_matches_exhaustive_and_prunes_homogeneous_regions() {
        let tuples = separated_tuples();
        let ev = AttributeEvents::build(&tuples, 0, 2).unwrap();
        let mut ex_stats = SearchStats::default();
        let ex = ExhaustiveSearch
            .find_best(&[(0, ev.clone())], Measure::Entropy, &mut ex_stats)
            .unwrap();
        let mut bp_stats = SearchStats::default();
        let bp = search(false)
            .find_best(&[(0, ev)], Measure::Entropy, &mut bp_stats)
            .unwrap();
        assert!((bp.score - ex.score).abs() < 1e-9);
        // With the two classes fully separated, every interval is empty or
        // homogeneous, so BP's work collapses to the end points.
        assert!(bp_stats.intervals_pruned > 0);
        assert!(bp_stats.entropy_calculations < ex_stats.entropy_calculations);
        assert_eq!(bp_stats.bound_calculations, 0, "BP never computes bounds");
    }

    #[test]
    fn bp_name_matches_the_paper() {
        assert_eq!(search(false).name(), "UDT-BP");
        assert_eq!(search(true).sample_rate(), None);
        assert_eq!(search(false).bounding(), BoundingMode::None);
    }
}
