//! Model persistence.
//!
//! Trained trees are stored as JSON — useful for the experiment harness
//! (caching a tree across runs) and for downstream users who train
//! offline and classify online.
//!
//! ## Formats
//!
//! * **Version 3** (current): the version-2 JSON body followed by a
//!   fixed-width integrity footer `#udt3:<16-hex body length>:<8-hex
//!   crc32>\n` (32 bytes total, CRC-32/IEEE over the body). Written by
//!   [`to_json_v3`] / [`save`]; readers verify the length and checksum
//!   before parsing, so a bit flip or truncation on disk surfaces as a
//!   typed [`TreeError::Corrupt`] instead of serving a wrong
//!   distribution. A truncation that severs the footer itself is also
//!   caught (the magic is recognised anywhere in the tail); one that
//!   removes the *entire* footer leaves a byte-exact version-2 file,
//!   which back-compat obliges us to accept.
//! * **Version 2**: the serde projection of the flat arena
//!   ([`crate::flat::FlatTree`]) plus metadata, tagged with an explicit
//!   `format_version` field, no footer. Written by [`to_json`]; every
//!   loaded arena passes structural validation before it is served.
//! * **Legacy** (pre-arena): the serde projection of the recursive
//!   [`Node`] tree (`{"root": …, "n_attributes": …, "class_names": …}`).
//!   [`from_json`] / [`load`] detect and convert it transparently, so
//!   models written before the arena refactor keep loading;
//!   [`to_legacy_json`] still writes it for interop with old readers.

use serde::{Deserialize, Serialize};

use crate::flat::FlatTree;
use crate::node::{DecisionTree, Node};
use crate::Result;
use crate::TreeError;

/// The JSON schema version of the model body (the flat-arena
/// projection). Unchanged by the version-3 *file* format, which wraps
/// this body in an integrity footer.
pub const FORMAT_VERSION: u32 = 2;

/// The current on-disk *file* version: a [`FORMAT_VERSION`] JSON body
/// plus the fixed-width checksum footer.
pub const FILE_VERSION: u32 = 3;

/// First bytes of the version-3 integrity footer.
const FOOTER_MAGIC: &str = "#udt3:";

/// Exact byte length of the version-3 footer:
/// `#udt3:` + 16 hex digits (body length) + `:` + 8 hex digits (crc32)
/// + `\n`.
const FOOTER_LEN: usize = 32;

/// CRC-32/IEEE lookup table (polynomial `0xEDB88320`), built at compile
/// time — the environment is std-only, so the checksum is hand-rolled.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32/IEEE of `bytes` (the variant used by zip, gzip and PNG;
/// `crc32(b"123456789") == 0xCBF4_3926`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Renders the version-3 footer for `body`.
fn footer_for(body: &str) -> String {
    format!(
        "{FOOTER_MAGIC}{:016x}:{:08x}\n",
        body.len() as u64,
        crc32(body.as_bytes())
    )
}

fn corrupt(detail: String) -> TreeError {
    TreeError::Corrupt { detail }
}

/// Splits a version-3 string into its verified body, `Ok(None)` for a
/// footer-less (version-2 / legacy) string, or [`TreeError::Corrupt`]
/// when a footer is present but malformed, truncated, or mismatched.
fn strip_verified_footer(json: &str) -> Result<Option<&str>> {
    if json.len() >= FOOTER_LEN {
        let (body, footer) = json.split_at(json.len() - FOOTER_LEN);
        if footer.starts_with(FOOTER_MAGIC) {
            let fields = &footer[FOOTER_MAGIC.len()..footer.len() - 1];
            let (len_hex, crc_hex) = fields
                .split_once(':')
                .filter(|(l, c)| l.len() == 16 && c.len() == 8 && footer.ends_with('\n'))
                .ok_or_else(|| corrupt("malformed checksum footer".to_string()))?;
            let expected_len = u64::from_str_radix(len_hex, 16)
                .map_err(|_| corrupt("non-hex length in checksum footer".to_string()))?;
            let expected_crc = u32::from_str_radix(crc_hex, 16)
                .map_err(|_| corrupt("non-hex crc32 in checksum footer".to_string()))?;
            if body.len() as u64 != expected_len {
                return Err(corrupt(format!(
                    "length mismatch: footer says {expected_len} bytes, body is {} bytes",
                    body.len()
                )));
            }
            let actual = crc32(body.as_bytes());
            if actual != expected_crc {
                return Err(corrupt(format!(
                    "checksum mismatch: footer says {expected_crc:#010x}, body is {actual:#010x}"
                )));
            }
            return Ok(Some(body));
        }
    }
    // The magic anywhere in the tail means a footer that lost bytes —
    // the compact JSON body never contains a raw `#udt3:` outside a
    // string, and a complete footer was handled above.
    if let Some(i) = json.rfind(FOOTER_MAGIC) {
        if i + FOOTER_LEN > json.len() {
            return Err(corrupt("truncated checksum footer".to_string()));
        }
    }
    Ok(None)
}

/// The version-2 on-disk projection of a [`DecisionTree`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PersistedModel {
    format_version: u32,
    n_attributes: usize,
    class_names: Vec<String>,
    tree: FlatTree,
}

/// The legacy (pre-arena) on-disk projection: the old `DecisionTree`
/// struct serialised field for field.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LegacyModel {
    root: Node,
    n_attributes: usize,
    class_names: Vec<String>,
}

/// Serialises a tree to a JSON string in the current (version 2, flat
/// arena) format.
pub fn to_json(tree: &DecisionTree) -> Result<String> {
    let model = PersistedModel {
        format_version: FORMAT_VERSION,
        n_attributes: tree.n_attributes(),
        class_names: tree.class_names().to_vec(),
        tree: tree.flat().clone(),
    };
    serde_json::to_string(&model).map_err(|e| TreeError::Serde {
        op: "serialisation",
        detail: e.to_string(),
    })
}

/// Serialises a tree to the current version-3 file format: the
/// version-2 JSON body of [`to_json`] followed by the checksum footer.
/// This is exactly what [`save`] writes.
pub fn to_json_v3(tree: &DecisionTree) -> Result<String> {
    let mut body = to_json(tree)?;
    let footer = footer_for(&body);
    body.push_str(&footer);
    Ok(body)
}

/// Serialises a tree to the legacy (boxed-node) JSON format, for interop
/// with pre-arena readers.
pub fn to_legacy_json(tree: &DecisionTree) -> Result<String> {
    let model = LegacyModel {
        root: tree.root_node(),
        n_attributes: tree.n_attributes(),
        class_names: tree.class_names().to_vec(),
    };
    serde_json::to_string(&model).map_err(|e| TreeError::Serde {
        op: "serialisation",
        detail: e.to_string(),
    })
}

/// Deserialises a tree from a JSON string in any supported format.
/// A version-3 checksum footer, when present, is verified first (any
/// integrity failure is a typed [`TreeError::Corrupt`]); footer-less
/// strings take the version-2 / legacy path unchanged. Arenas are
/// structurally validated before being accepted.
pub fn from_json(json: &str) -> Result<DecisionTree> {
    let json = match strip_verified_footer(json)? {
        Some(body) => body,
        None => json,
    };
    match serde_json::from_str::<PersistedModel>(json) {
        Ok(model) => {
            if model.format_version > FORMAT_VERSION {
                return Err(TreeError::InvalidModel {
                    reason: "model was written by a newer format version",
                });
            }
            if model.tree.n_classes() != model.class_names.len() {
                return Err(TreeError::InvalidModel {
                    reason: "class name count does not match the arena",
                });
            }
            model.tree.validate()?;
            return Ok(DecisionTree::from_flat(
                model.tree,
                model.n_attributes,
                model.class_names,
            ));
        }
        // A file carrying the version tag *is* a v2 model; surface its
        // parse failure instead of a misleading legacy-format error.
        Err(e) if json.contains("\"format_version\"") => {
            return Err(TreeError::Serde {
                op: "version-2 deserialisation",
                detail: e.to_string(),
            });
        }
        Err(_) => {}
    }
    // Fall back to the legacy boxed format.
    let legacy: LegacyModel = serde_json::from_str(json).map_err(|e| TreeError::Serde {
        op: "deserialisation",
        detail: e.to_string(),
    })?;
    Ok(DecisionTree::new(
        legacy.root,
        legacy.n_attributes,
        legacy.class_names,
    ))
}

/// Writes a tree to a version-3 model file (JSON body + checksum
/// footer), **crash-safely**: the bytes go to a sibling `<file>.tmp`,
/// are fsynced, and are then atomically renamed over `path`. A crash
/// (or a hot-swap loader racing the writer) therefore sees either the
/// complete old file or the complete new one — never a half-written
/// model. The underlying io error detail is preserved in
/// [`TreeError::Io`].
pub fn save(tree: &DecisionTree, path: &std::path::Path) -> Result<()> {
    use std::io::Write as _;

    let json = to_json_v3(tree)?;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    fn io(op: &'static str, e: std::io::Error) -> TreeError {
        TreeError::Io {
            op,
            detail: e.to_string(),
        }
    }
    let result = (|| {
        let mut file = std::fs::File::create(&tmp).map_err(|e| io("write", e))?;
        file.write_all(json.as_bytes())
            .map_err(|e| io("write", e))?;
        file.sync_all().map_err(|e| io("sync", e))?;
        drop(file);
        std::fs::rename(&tmp, path).map_err(|e| io("rename", e))
    })();
    if result.is_err() {
        // Best effort: do not leave a stale .tmp behind a failed save.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Reads a tree from a model file written by [`save`] — verifying the
/// version-3 checksum footer when one is present — or by an older
/// `save`, whose version-2 / legacy format is converted transparently.
pub fn load(path: &std::path::Path) -> Result<DecisionTree> {
    let json = std::fs::read_to_string(path).map_err(|e| TreeError::Io {
        op: "read",
        detail: e.to_string(),
    })?;
    from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algorithm, TreeBuilder, UdtConfig};
    use udt_data::toy;

    fn trained() -> DecisionTree {
        TreeBuilder::new(
            UdtConfig::new(Algorithm::UdtEs)
                .with_postprune(false)
                .with_min_node_weight(0.0),
        )
        .build(&toy::table1_dataset().unwrap())
        .unwrap()
        .tree
    }

    #[test]
    fn json_roundtrip_preserves_the_tree_and_its_predictions() {
        let tree = trained();
        let json = to_json(&tree).unwrap();
        assert!(json.contains("format_version"));
        let restored = from_json(&json).unwrap();
        assert_eq!(tree, restored);
        let data = toy::table1_dataset().unwrap();
        for t in data.tuples() {
            assert_eq!(tree.predict(t).unwrap(), restored.predict(t).unwrap());
            assert_eq!(
                tree.predict_distribution(t).unwrap(),
                restored.predict_distribution(t).unwrap()
            );
        }
    }

    #[test]
    fn legacy_boxed_models_still_load() {
        // A model written in the pre-arena format (boxed `Node` tree under
        // a "root" key) loads transparently and predicts identically.
        let tree = trained();
        let legacy_json = to_legacy_json(&tree).unwrap();
        assert!(legacy_json.contains("\"root\""));
        assert!(!legacy_json.contains("format_version"));
        let restored = from_json(&legacy_json).unwrap();
        assert_eq!(tree, restored);
        let data = toy::table1_dataset().unwrap();
        for t in data.tuples() {
            assert_eq!(
                tree.predict_distribution(t).unwrap(),
                restored.predict_distribution(t).unwrap()
            );
        }
    }

    #[test]
    fn file_roundtrip() {
        let tree = trained();
        let path = std::env::temp_dir().join("udt-tree-model-test.json");
        save(&tree, &path).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(tree, restored);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn save_is_atomic_and_io_errors_carry_detail() {
        let tree = trained();
        let dir = std::env::temp_dir();
        let path = dir.join("udt-tree-atomic-save-test.json");
        // Overwriting an existing model leaves no .tmp sibling behind and
        // produces a loadable file (the rename landed).
        save(&tree, &path).unwrap();
        save(&tree, &path).unwrap();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(
            !std::path::Path::new(&tmp).exists(),
            "temp file cleaned up by the rename"
        );
        assert_eq!(load(&path).unwrap(), tree);
        let _ = std::fs::remove_file(&path);

        // A write into a nonexistent directory surfaces the io detail
        // (not a generic "could not write" with the cause discarded).
        let err = save(&tree, std::path::Path::new("/no/such/dir/model.json")).unwrap_err();
        match &err {
            TreeError::Io { op, detail } => {
                assert_eq!(*op, "write");
                assert!(!detail.is_empty(), "io detail preserved");
            }
            other => panic!("expected TreeError::Io, got {other:?}"),
        }
        // And the read path reports its own detail too.
        let err = load(std::path::Path::new("/no/such/model.json")).unwrap_err();
        assert!(matches!(err, TreeError::Io { op: "read", .. }), "{err:?}");
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(from_json("{not json").is_err());
        assert!(from_json("{\"format_version\": 2}").is_err());
        assert!(load(std::path::Path::new("/no/such/model.json")).is_err());
        // A truncated v2 file reports a v2 parse failure, not a confusing
        // legacy-format one.
        let json = to_json(&trained()).unwrap();
        let err = from_json(&json[..json.len() / 2]).unwrap_err();
        assert!(err.to_string().contains("version-2"), "got: {err}");
    }

    #[test]
    fn crc32_known_answer() {
        // The CRC-32/IEEE check value (zip, gzip, PNG all agree).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn v3_roundtrip_and_footer_shape() {
        let tree = trained();
        let v3 = to_json_v3(&tree).unwrap();
        let body = to_json(&tree).unwrap();
        assert_eq!(&v3[..body.len()], body);
        let footer = &v3[body.len()..];
        assert_eq!(footer.len(), FOOTER_LEN);
        assert!(footer.starts_with(FOOTER_MAGIC));
        assert!(footer.ends_with('\n'));
        assert_eq!(from_json(&v3).unwrap(), tree);
    }

    #[test]
    fn checksum_failures_are_typed_corrupt() {
        let v3 = to_json_v3(&trained()).unwrap();
        // A body edit that keeps the JSON valid still trips the crc.
        let flipped = v3.replacen("\"dists\":[", "\"dists\": [", 1);
        assert_ne!(flipped, v3);
        assert!(matches!(
            from_json(&flipped).unwrap_err(),
            TreeError::Corrupt { detail } if detail.contains("mismatch")
        ));
        // A footer that lost bytes is corrupt, not "legacy garbage".
        assert!(matches!(
            from_json(&v3[..v3.len() - 7]).unwrap_err(),
            TreeError::Corrupt { detail } if detail.contains("truncated")
        ));
    }

    #[test]
    fn corrupted_arenas_are_rejected_on_load() {
        let tree = trained();
        let json = to_json(&tree).unwrap();
        // Point a child at a nonexistent node: validation must refuse it.
        let corrupted = json.replacen("\"children\":[", "\"children\":[999999,", 1);
        assert_ne!(json, corrupted);
        assert!(from_json(&corrupted).is_err());
        // A future format version is refused rather than misread.
        let future = json.replace("\"format_version\":2", "\"format_version\":99");
        assert!(from_json(&future).is_err());
    }
}
