//! Model persistence.
//!
//! Trained trees are plain serde-serialisable data, so they can be stored
//! and shipped as JSON — useful for the experiment harness (caching a tree
//! across runs) and for downstream users who train offline and classify
//! online. The format is the straightforward serde projection of
//! [`DecisionTree`]; it is stable as long as the node structure is.

use crate::node::DecisionTree;
use crate::Result;
use crate::TreeError;

/// Serialises a tree to a JSON string.
pub fn to_json(tree: &DecisionTree) -> Result<String> {
    serde_json::to_string(tree).map_err(|e| TreeError::InvalidConfig {
        name: "serialisation failed (unrepresentable float?)",
        value: e.line() as f64,
    })
}

/// Deserialises a tree from a JSON string produced by [`to_json`].
pub fn from_json(json: &str) -> Result<DecisionTree> {
    serde_json::from_str(json).map_err(|e| TreeError::InvalidConfig {
        name: "deserialisation failed",
        value: e.line() as f64,
    })
}

/// Writes a tree to a JSON file.
pub fn save(tree: &DecisionTree, path: &std::path::Path) -> Result<()> {
    let json = to_json(tree)?;
    std::fs::write(path, json).map_err(|_| TreeError::InvalidConfig {
        name: "could not write model file",
        value: 0.0,
    })
}

/// Reads a tree from a JSON file written by [`save`].
pub fn load(path: &std::path::Path) -> Result<DecisionTree> {
    let json = std::fs::read_to_string(path).map_err(|_| TreeError::InvalidConfig {
        name: "could not read model file",
        value: 0.0,
    })?;
    from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algorithm, TreeBuilder, UdtConfig};
    use udt_data::toy;

    fn trained() -> DecisionTree {
        TreeBuilder::new(
            UdtConfig::new(Algorithm::UdtEs)
                .with_postprune(false)
                .with_min_node_weight(0.0),
        )
        .build(&toy::table1_dataset().unwrap())
        .unwrap()
        .tree
    }

    #[test]
    fn json_roundtrip_preserves_the_tree_and_its_predictions() {
        let tree = trained();
        let json = to_json(&tree).unwrap();
        let restored = from_json(&json).unwrap();
        assert_eq!(tree, restored);
        let data = toy::table1_dataset().unwrap();
        for t in data.tuples() {
            assert_eq!(tree.predict(t), restored.predict(t));
            assert_eq!(
                tree.predict_distribution(t),
                restored.predict_distribution(t)
            );
        }
    }

    #[test]
    fn file_roundtrip() {
        let tree = trained();
        let path = std::env::temp_dir().join("udt-tree-model-test.json");
        save(&tree, &path).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(tree, restored);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(from_json("{not json").is_err());
        assert!(load(std::path::Path::new("/no/such/model.json")).is_err());
    }
}
