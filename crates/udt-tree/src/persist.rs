//! Model persistence.
//!
//! Trained trees are stored as JSON — useful for the experiment harness
//! (caching a tree across runs) and for downstream users who train
//! offline and classify online.
//!
//! ## Formats
//!
//! * **Version 2** (current): the serde projection of the flat arena
//!   ([`crate::flat::FlatTree`]) plus metadata, tagged with an explicit
//!   `format_version` field. Written by [`to_json`] / [`save`]; every
//!   loaded arena passes structural validation before it is served.
//! * **Legacy** (pre-arena): the serde projection of the recursive
//!   [`Node`] tree (`{"root": …, "n_attributes": …, "class_names": …}`).
//!   [`from_json`] / [`load`] detect and convert it transparently, so
//!   models written before the arena refactor keep loading;
//!   [`to_legacy_json`] still writes it for interop with old readers.

use serde::{Deserialize, Serialize};

use crate::flat::FlatTree;
use crate::node::{DecisionTree, Node};
use crate::Result;
use crate::TreeError;

/// The current on-disk format version.
pub const FORMAT_VERSION: u32 = 2;

/// The version-2 on-disk projection of a [`DecisionTree`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PersistedModel {
    format_version: u32,
    n_attributes: usize,
    class_names: Vec<String>,
    tree: FlatTree,
}

/// The legacy (pre-arena) on-disk projection: the old `DecisionTree`
/// struct serialised field for field.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LegacyModel {
    root: Node,
    n_attributes: usize,
    class_names: Vec<String>,
}

/// Serialises a tree to a JSON string in the current (version 2, flat
/// arena) format.
pub fn to_json(tree: &DecisionTree) -> Result<String> {
    let model = PersistedModel {
        format_version: FORMAT_VERSION,
        n_attributes: tree.n_attributes(),
        class_names: tree.class_names().to_vec(),
        tree: tree.flat().clone(),
    };
    serde_json::to_string(&model).map_err(|e| TreeError::InvalidConfig {
        name: "serialisation failed (unrepresentable float?)",
        value: e.line() as f64,
    })
}

/// Serialises a tree to the legacy (boxed-node) JSON format, for interop
/// with pre-arena readers.
pub fn to_legacy_json(tree: &DecisionTree) -> Result<String> {
    let model = LegacyModel {
        root: tree.root_node(),
        n_attributes: tree.n_attributes(),
        class_names: tree.class_names().to_vec(),
    };
    serde_json::to_string(&model).map_err(|e| TreeError::InvalidConfig {
        name: "serialisation failed (unrepresentable float?)",
        value: e.line() as f64,
    })
}

/// Deserialises a tree from a JSON string in either the current or the
/// legacy format. Version-2 arenas are structurally validated before
/// being accepted.
pub fn from_json(json: &str) -> Result<DecisionTree> {
    match serde_json::from_str::<PersistedModel>(json) {
        Ok(model) => {
            if model.format_version > FORMAT_VERSION {
                return Err(TreeError::InvalidModel {
                    reason: "model was written by a newer format version",
                });
            }
            if model.tree.n_classes() != model.class_names.len() {
                return Err(TreeError::InvalidModel {
                    reason: "class name count does not match the arena",
                });
            }
            model.tree.validate()?;
            return Ok(DecisionTree::from_flat(
                model.tree,
                model.n_attributes,
                model.class_names,
            ));
        }
        // A file carrying the version tag *is* a v2 model; surface its
        // parse failure instead of a misleading legacy-format error.
        Err(e) if json.contains("\"format_version\"") => {
            return Err(TreeError::InvalidConfig {
                name: "version-2 model deserialisation failed",
                value: e.line() as f64,
            });
        }
        Err(_) => {}
    }
    // Fall back to the legacy boxed format.
    let legacy: LegacyModel = serde_json::from_str(json).map_err(|e| TreeError::InvalidConfig {
        name: "deserialisation failed",
        value: e.line() as f64,
    })?;
    Ok(DecisionTree::new(
        legacy.root,
        legacy.n_attributes,
        legacy.class_names,
    ))
}

/// Writes a tree to a JSON file in the current format, **crash-safely**:
/// the JSON goes to a sibling `<file>.tmp`, is fsynced, and is then
/// atomically renamed over `path`. A crash (or a hot-swap loader racing
/// the writer) therefore sees either the complete old file or the
/// complete new one — never a half-written model. The underlying io
/// error detail is preserved in [`TreeError::Io`].
pub fn save(tree: &DecisionTree, path: &std::path::Path) -> Result<()> {
    use std::io::Write as _;

    let json = to_json(tree)?;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    fn io(op: &'static str, e: std::io::Error) -> TreeError {
        TreeError::Io {
            op,
            detail: e.to_string(),
        }
    }
    let result = (|| {
        let mut file = std::fs::File::create(&tmp).map_err(|e| io("write", e))?;
        file.write_all(json.as_bytes())
            .map_err(|e| io("write", e))?;
        file.sync_all().map_err(|e| io("sync", e))?;
        drop(file);
        std::fs::rename(&tmp, path).map_err(|e| io("rename", e))
    })();
    if result.is_err() {
        // Best effort: do not leave a stale .tmp behind a failed save.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Reads a tree from a JSON file written by [`save`] — or by the
/// pre-arena `save`, whose legacy format is converted transparently.
pub fn load(path: &std::path::Path) -> Result<DecisionTree> {
    let json = std::fs::read_to_string(path).map_err(|e| TreeError::Io {
        op: "read",
        detail: e.to_string(),
    })?;
    from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algorithm, TreeBuilder, UdtConfig};
    use udt_data::toy;

    fn trained() -> DecisionTree {
        TreeBuilder::new(
            UdtConfig::new(Algorithm::UdtEs)
                .with_postprune(false)
                .with_min_node_weight(0.0),
        )
        .build(&toy::table1_dataset().unwrap())
        .unwrap()
        .tree
    }

    #[test]
    fn json_roundtrip_preserves_the_tree_and_its_predictions() {
        let tree = trained();
        let json = to_json(&tree).unwrap();
        assert!(json.contains("format_version"));
        let restored = from_json(&json).unwrap();
        assert_eq!(tree, restored);
        let data = toy::table1_dataset().unwrap();
        for t in data.tuples() {
            assert_eq!(tree.predict(t).unwrap(), restored.predict(t).unwrap());
            assert_eq!(
                tree.predict_distribution(t).unwrap(),
                restored.predict_distribution(t).unwrap()
            );
        }
    }

    #[test]
    fn legacy_boxed_models_still_load() {
        // A model written in the pre-arena format (boxed `Node` tree under
        // a "root" key) loads transparently and predicts identically.
        let tree = trained();
        let legacy_json = to_legacy_json(&tree).unwrap();
        assert!(legacy_json.contains("\"root\""));
        assert!(!legacy_json.contains("format_version"));
        let restored = from_json(&legacy_json).unwrap();
        assert_eq!(tree, restored);
        let data = toy::table1_dataset().unwrap();
        for t in data.tuples() {
            assert_eq!(
                tree.predict_distribution(t).unwrap(),
                restored.predict_distribution(t).unwrap()
            );
        }
    }

    #[test]
    fn file_roundtrip() {
        let tree = trained();
        let path = std::env::temp_dir().join("udt-tree-model-test.json");
        save(&tree, &path).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(tree, restored);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn save_is_atomic_and_io_errors_carry_detail() {
        let tree = trained();
        let dir = std::env::temp_dir();
        let path = dir.join("udt-tree-atomic-save-test.json");
        // Overwriting an existing model leaves no .tmp sibling behind and
        // produces a loadable file (the rename landed).
        save(&tree, &path).unwrap();
        save(&tree, &path).unwrap();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(
            !std::path::Path::new(&tmp).exists(),
            "temp file cleaned up by the rename"
        );
        assert_eq!(load(&path).unwrap(), tree);
        let _ = std::fs::remove_file(&path);

        // A write into a nonexistent directory surfaces the io detail
        // (not a generic "could not write" with the cause discarded).
        let err = save(&tree, std::path::Path::new("/no/such/dir/model.json")).unwrap_err();
        match &err {
            TreeError::Io { op, detail } => {
                assert_eq!(*op, "write");
                assert!(!detail.is_empty(), "io detail preserved");
            }
            other => panic!("expected TreeError::Io, got {other:?}"),
        }
        // And the read path reports its own detail too.
        let err = load(std::path::Path::new("/no/such/model.json")).unwrap_err();
        assert!(matches!(err, TreeError::Io { op: "read", .. }), "{err:?}");
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(from_json("{not json").is_err());
        assert!(from_json("{\"format_version\": 2}").is_err());
        assert!(load(std::path::Path::new("/no/such/model.json")).is_err());
        // A truncated v2 file reports a v2 parse failure, not a confusing
        // legacy-format one.
        let json = to_json(&trained()).unwrap();
        let err = from_json(&json[..json.len() / 2]).unwrap_err();
        assert!(err.to_string().contains("version-2"), "got: {err}");
    }

    #[test]
    fn corrupted_arenas_are_rejected_on_load() {
        let tree = trained();
        let json = to_json(&tree).unwrap();
        // Point a child at a nonexistent node: validation must refuse it.
        let corrupted = json.replacen("\"children\":[", "\"children\":[999999,", 1);
        assert_ne!(json, corrupted);
        assert!(from_json(&corrupted).is_err());
        // A future format version is refused rather than misread.
        let future = json.replace("\"format_version\":2", "\"format_version\":99");
        assert!(from_json(&future).is_err());
    }
}
