//! The persistent work-stealing build pool.
//!
//! Every parallel phase of tree construction — per-attribute root
//! presort, per-attribute split search, per-attribute event-structure
//! construction and the subtree work queue — runs on one reusable
//! execution substrate instead of spawning fresh `std::thread::scope`
//! threads per call. A [`WorkerPool`] owns a fixed set of long-lived
//! worker threads, each with its own task deque; tasks submitted from a
//! worker land on that worker's deque, tasks submitted from outside land
//! on a shared injector queue, and an idle worker that finds its own
//! deque empty **steals** from the injector and from its siblings. Pools
//! are cached process-wide by concurrency ([`WorkerPool::for_concurrency`]),
//! so repeated builds reuse the same threads — the pool is persistent.
//!
//! ## The deterministic parallel map
//!
//! [`WorkerPool::map`] is the primitive every build phase uses: it runs
//! `f(0..n)` with the **calling thread participating** alongside the
//! workers and returns the results in index order. Work distribution is
//! dynamic (an atomic cursor — idle participants take the next
//! unclaimed index) but the output is positional, so the result is
//! independent of which thread computed what. Phases whose per-index
//! work is itself deterministic (everything in this crate) therefore
//! produce bit-identical output at every thread count, including 1 —
//! the contract the builder's regression tests pin.
//!
//! Maps are **top-level only**: a map issued from inside pool work (a
//! worker executing a task, or any thread executing a map item — e.g. a
//! subtree job reaching a large node) runs inline on the caller instead
//! of fanning out. Tasks therefore never wait on other tasks, which
//! rules out nested-wait deadlocks by construction and keeps the
//! builder's per-phase timers honest: a timer around a map item never
//! absorbs unrelated queued work.
//!
//! ## Panics
//!
//! A panicking task does not poison the pool: the panic is caught on the
//! worker, the map finishes draining, and the payload is re-raised on
//! the **calling** thread — a panicking subtree build fails the build,
//! not the queue. The workers survive and keep serving later maps.
//!
//! ## Long-lived tasks
//!
//! [`WorkerPool::spawn`] submits a fire-and-forget task. `udt-serve`'s
//! micro-batching scheduler runs its batch-worker loops as exactly such
//! tasks on a dedicated pool, sharing this execution substrate instead
//! of managing raw `JoinHandle`s. Do not mix `spawn`ed long-running
//! loops and `map` on the same pool: a helping mapper could get stuck
//! executing the loop. The global [`for_concurrency`](WorkerPool::for_concurrency)
//! pools are used exclusively for `map`.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use udt_obs::catalog;

/// A unit of work queued on the pool.
type Task = Box<dyn FnOnce() + Send>;

/// How long an idle worker parks before re-scanning the queues. The
/// wake protocol is precise — submitters notify under the idle lock
/// and workers re-check for work under it before waiting — so this
/// timeout is pure insurance; it is long so that a process holding
/// cached idle pools burns effectively no background CPU.
const IDLE_PARK: Duration = Duration::from_secs(10);

/// State shared between the pool handle and its worker threads.
struct Shared {
    /// `queues[0]` is the injector (submissions from non-worker
    /// threads); `queues[1 + i]` is worker `i`'s local deque.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Guards the sleep/wake protocol for idle workers.
    idle: Mutex<()>,
    /// Signalled (under `idle`) whenever a task is queued.
    wake: Condvar,
    /// Set by `Drop`; workers exit once the queues are drained.
    shutdown: AtomicBool,
}

impl Shared {
    /// Pool identity for the worker thread-local (pointer of the shared
    /// allocation — stable for the pool's lifetime).
    fn id(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    /// Whether any queue currently holds a task. Called under the
    /// `idle` lock by parking workers, so a submission between a
    /// worker's last scan and its wait cannot be missed.
    fn has_work(&self) -> bool {
        self.queues
            .iter()
            .any(|q| !q.lock().expect("pool queue lock").is_empty())
    }

    /// Pops a task: own queue first, then the injector and siblings
    /// (stealing), front-first everywhere so queue order is roughly
    /// FIFO.
    fn find_task(&self, own: usize) -> Option<Task> {
        if let Some(t) = self.queues[own]
            .lock()
            .expect("pool queue lock")
            .pop_front()
        {
            return Some(t);
        }
        for (q, queue) in self.queues.iter().enumerate() {
            if q == own {
                continue;
            }
            if let Some(t) = queue.lock().expect("pool queue lock").pop_front() {
                // Popping another worker's deque is a steal; claiming
                // from the injector (queue 0) is ordinary intake.
                if q != 0 {
                    catalog::POOL_TASKS_STOLEN.incr();
                }
                return Some(t);
            }
        }
        None
    }
}

thread_local! {
    /// `(pool id, queue index)` when the current thread is a pool
    /// worker — routes submissions to the worker's own deque.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
    /// Stack of pools "entered" on this thread (see [`enter`]); the
    /// innermost one is what [`current`] reports to the build phases.
    static CURRENT: RefCell<Vec<Arc<WorkerPool>>> = const { RefCell::new(Vec::new()) };
    /// How deep this thread currently is inside pool work (an executing
    /// task or a map item). Maps called at depth > 0 run inline — see
    /// [`WorkerPool::map`].
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// RAII increment of the thread's pool-work depth (panic-safe).
struct DepthGuard;

impl DepthGuard {
    fn enter() -> DepthGuard {
        DEPTH.with(|d| d.set(d.get() + 1));
        DepthGuard
    }
}

impl Drop for DepthGuard {
    fn drop(&mut self) {
        DEPTH.with(|d| d.set(d.get() - 1));
    }
}

fn worker_main(shared: Arc<Shared>, slot: usize) {
    let own = 1 + slot;
    WORKER.with(|w| w.set(Some((shared.id(), own))));
    loop {
        if let Some(task) = shared.find_task(own) {
            // Tasks are panic-wrapped at submission; they never unwind.
            let _depth = DepthGuard::enter();
            task();
            catalog::POOL_TASKS_EXECUTED.incr();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let guard = shared.idle.lock().expect("pool idle lock");
        // Re-check under the lock: submitters notify while holding it,
        // so a task queued after the scan above cannot slip past the
        // wait below.
        if shared.has_work() || shared.shutdown.load(Ordering::Acquire) {
            continue;
        }
        let parked = Instant::now();
        let _ = shared
            .wake
            .wait_timeout(guard, IDLE_PARK)
            .expect("pool idle lock");
        let idle_ns = parked.elapsed().as_nanos() as u64;
        catalog::POOL_IDLE_NS.add(idle_ns);
        catalog::POOL_IDLE_WAIT.record_ns(idle_ns);
    }
}

/// A persistent pool of worker threads with per-worker task deques and
/// work stealing. See the module docs for the execution model.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    workers: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool with `workers` threads named `{name}-{i}`. A pool
    /// with zero workers is valid: [`map`](Self::map) runs inline on the
    /// caller (the sequential degenerate case).
    ///
    /// Thread-spawn failures (process thread limits, exhausted memory)
    /// degrade gracefully: the pool keeps whatever workers it managed
    /// to start — possibly none — with a one-line warning, instead of
    /// aborting the build that asked for a generous thread count.
    pub fn named(workers: usize, name: &str) -> WorkerPool {
        let shared = Arc::new(Shared {
            queues: (0..=workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let cloned = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("{name}-{i}"))
                .spawn(move || worker_main(cloned, i))
            {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    eprintln!(
                        "udt-pool: could not spawn worker {i} of {workers} ({e}); \
                         continuing with {} worker(s)",
                        handles.len()
                    );
                    break;
                }
            }
        }
        let workers = handles.len();
        WorkerPool {
            shared,
            handles: Mutex::new(handles),
            workers,
        }
    }

    /// Creates a pool with `workers` threads and the default name.
    pub fn with_workers(workers: usize) -> WorkerPool {
        WorkerPool::named(workers, "udt-pool")
    }

    /// Returns the process-wide shared pool for a total concurrency of
    /// `threads` (the calling thread plus `threads − 1` workers).
    /// Pools are created on first use and cached forever, so every
    /// build at a given thread count reuses the same threads.
    pub fn for_concurrency(threads: usize) -> Arc<WorkerPool> {
        static REGISTRY: OnceLock<Mutex<HashMap<usize, Arc<WorkerPool>>>> = OnceLock::new();
        let threads = threads.clamp(1, crate::config::ThreadCount::MAX);
        let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = registry.lock().expect("pool registry lock");
        Arc::clone(
            map.entry(threads)
                .or_insert_with(|| Arc::new(WorkerPool::with_workers(threads - 1))),
        )
    }

    /// Total concurrency: the worker threads plus the calling thread
    /// (which participates in every [`map`](Self::map)).
    pub fn concurrency(&self) -> usize {
        self.workers + 1
    }

    /// Number of spawned worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Queues one task: onto the submitting worker's own deque when
    /// called from a pool worker, onto the injector otherwise.
    fn push_task(&self, task: Task) {
        let own = match WORKER.with(Cell::get) {
            Some((id, own)) if id == self.shared.id() => own,
            _ => 0,
        };
        if own == 0 {
            catalog::POOL_INJECTOR_PUSHES.incr();
        }
        self.shared.queues[own]
            .lock()
            .expect("pool queue lock")
            .push_back(task);
        // One task needs one worker: notify_one avoids waking the whole
        // parked pool per push (each wakeup re-scans every queue). A
        // worker that misses the notification because it was between
        // its queue scan and its wait re-checks `has_work` under the
        // idle lock before sleeping, so the task cannot be stranded.
        let _guard = self.shared.idle.lock().expect("pool idle lock");
        self.shared.wake.notify_one();
    }

    /// Submits a fire-and-forget task (e.g. a serving worker's loop). A
    /// panic inside the task is caught and reported on stderr; the
    /// worker thread survives.
    ///
    /// # Panics
    ///
    /// Panics if the pool has zero workers: the task could never run,
    /// and silently dropping it would be worse than failing loudly.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        assert!(
            self.workers > 0,
            "WorkerPool::spawn on a pool with no workers: the task would never run"
        );
        self.push_task(Box::new(move || {
            if catch_unwind(AssertUnwindSafe(task)).is_err() {
                eprintln!("udt-pool: a spawned task panicked (worker survives)");
            }
        }));
    }

    /// Runs `f(0..n)` across the pool — the calling thread participates
    /// — and returns the results **in index order**. Work distribution
    /// is dynamic (idle participants claim the next unclaimed index);
    /// output order is positional, so the result does not depend on the
    /// thread count. If any invocation panics, the first payload is
    /// re-raised here after the map has drained.
    ///
    /// **Nested maps run inline.** A map called from inside pool work —
    /// a worker executing a task, or any thread executing a map item —
    /// runs sequentially on the caller instead of fanning out. Only
    /// top-level calls spawn helper tasks, so an executing task never
    /// waits on other queued tasks (no nested-wait deadlocks) and a
    /// phase timer around a map item measures only that item's own
    /// work.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n <= 1 || self.workers == 0 || DEPTH.with(Cell::get) > 0 {
            return (0..n).map(f).collect();
        }

        struct MapState<T, F> {
            f: F,
            n: usize,
            cursor: AtomicUsize,
            slots: Vec<Mutex<Option<T>>>,
            panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
            /// Helper tasks submitted to the pool that have not finished
            /// running yet. `map` must not return (and drop this stack
            /// state) until it reaches zero — every submitted task runs
            /// eventually, even if only to find the cursor exhausted.
            outstanding: AtomicUsize,
            done_lock: Mutex<()>,
            done: Condvar,
        }

        impl<T, F: Fn(usize) -> T + Sync> MapState<T, F> {
            /// Claims and computes indices until the cursor runs out (or
            /// a panic is recorded, which parks the cursor at the end).
            fn drain(&self) {
                loop {
                    let i = self.cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= self.n {
                        return;
                    }
                    // Mark the thread as inside pool work for the span
                    // of the item, so maps the item itself issues run
                    // inline (see `map`'s docs).
                    let _depth = DepthGuard::enter();
                    match catch_unwind(AssertUnwindSafe(|| (self.f)(i))) {
                        Ok(v) => {
                            *self.slots[i].lock().expect("map slot lock") = Some(v);
                        }
                        Err(payload) => {
                            let mut slot = self.panic.lock().expect("map panic lock");
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                            // Stop claiming further items everywhere.
                            self.cursor.store(self.n, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            }
        }

        let helpers = self.workers.min(n - 1);
        let state = MapState {
            f,
            n,
            cursor: AtomicUsize::new(0),
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            panic: Mutex::new(None),
            outstanding: AtomicUsize::new(helpers),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
        };
        {
            let state_ref: &MapState<T, F> = &state;
            for _ in 0..helpers {
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    state_ref.drain();
                    // Completion handshake: decrement and notify while
                    // HOLDING the lock, and touch nothing afterwards.
                    // The caller only frees the state after observing
                    // zero and then acquiring this lock once, which
                    // cannot succeed until the decrementing task has
                    // released it — so no task can still be using the
                    // state when it is freed.
                    let _guard = state_ref.done_lock.lock().expect("map done lock");
                    state_ref.outstanding.fetch_sub(1, Ordering::AcqRel);
                    state_ref.done.notify_all();
                });
                // SAFETY: the task borrows `state`, which lives on this
                // stack frame. `map` returns only after (a) `outstanding`
                // reached zero — each task's final actions are the locked
                // decrement + notify above — and (b) the caller has then
                // acquired and released `done_lock`, which orders the
                // caller's use of the state strictly after the last
                // task's critical section. Workers always drain their
                // queues before exiting, so a queued task cannot be
                // abandoned.
                let task: Task =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Task>(task) };
                self.push_task(task);
            }
        }
        // The caller participates through its own drain, then waits for
        // the helpers to finish. (It deliberately does not execute other
        // queued pool work while waiting: tasks never wait on tasks —
        // nested maps are inline — so the helpers always make progress
        // on the workers, and staying out of foreign work keeps phase
        // timers around map calls honest.)
        state.drain();
        loop {
            if state.outstanding.load(Ordering::Acquire) == 0 {
                // Synchronise with the last task's locked decrement (see
                // the SAFETY comment above) before freeing the state.
                drop(state.done_lock.lock().expect("map done lock"));
                break;
            }
            let guard = state.done_lock.lock().expect("map done lock");
            if state.outstanding.load(Ordering::Acquire) == 0 {
                break;
            }
            let _ = state
                .done
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("map done lock");
        }
        if let Some(payload) = state.panic.into_inner().expect("map panic lock") {
            resume_unwind(payload);
        }
        state
            .slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("map slot lock")
                    .expect("every map index was computed")
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.idle.lock().expect("pool idle lock");
            self.shared.wake.notify_all();
        }
        for handle in self.handles.lock().expect("pool handle lock").drain(..) {
            let _ = handle.join();
        }
    }
}

/// Restores the previously [`enter`]ed pool when dropped.
pub struct PoolGuard {
    _private: (),
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        CURRENT.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Makes `pool` the thread's current build pool until the returned
/// guard drops. The builder enters its pool on the build thread for
/// the duration of a build, so deeply nested phases — the split-search
/// strategies in particular — can reach the pool without threading a
/// handle through every signature. Subtree tasks do **not** re-enter
/// the pool on worker threads: phases consult [`fanout`], which
/// declines inside pool work anyway, so both the workers and the
/// map-participating build thread take the same sequential path there.
pub fn enter(pool: Arc<WorkerPool>) -> PoolGuard {
    CURRENT.with(|stack| stack.borrow_mut().push(pool));
    PoolGuard { _private: () }
}

/// The innermost pool [`enter`]ed on this thread, if any.
pub fn current() -> Option<Arc<WorkerPool>> {
    CURRENT.with(|stack| stack.borrow().last().map(Arc::clone))
}

/// The pool a build phase should fan out on: the innermost [`enter`]ed
/// pool, provided it has more than one thread **and** this thread is
/// not already executing pool work. Inside pool work a nested map would
/// run inline anyway (see [`WorkerPool::map`]); returning `None` there
/// lets phases skip their fan-out setup (per-task scratch loading and
/// the like) and take the plain sequential path, keeping the
/// map-participating caller thread on the same code path as the
/// workers.
pub(crate) fn fanout() -> Option<Arc<WorkerPool>> {
    if DEPTH.with(Cell::get) > 0 {
        return None;
    }
    current().filter(|pool| pool.concurrency() > 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_returns_results_in_index_order() {
        let pool = WorkerPool::with_workers(3);
        let out = pool.map(64, |i| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
        // Zero and one items short-circuit inline.
        assert_eq!(pool.map(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn zero_worker_pool_maps_inline() {
        let pool = WorkerPool::with_workers(0);
        assert_eq!(pool.concurrency(), 1);
        assert_eq!(pool.map(8, |i| i), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn work_is_actually_distributed_across_threads() {
        let pool = WorkerPool::with_workers(2);
        let seen: Mutex<std::collections::HashSet<std::thread::ThreadId>> =
            Mutex::new(std::collections::HashSet::new());
        // Enough slowish items that the workers must participate.
        pool.map(32, |_| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(Duration::from_millis(1));
        });
        // The caller always participates; with two workers and 32 × 1 ms
        // items at least one worker joins in.
        assert!(seen.lock().unwrap().len() >= 2);
    }

    #[test]
    fn panicking_task_fails_the_map_but_not_the_pool() {
        let pool = WorkerPool::with_workers(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map(16, |i| {
                if i == 5 {
                    panic!("boom at {i}");
                }
                i
            })
        }));
        assert!(result.is_err(), "the panic must propagate to the caller");
        // The pool is not deadlocked or poisoned: it keeps serving maps.
        assert_eq!(pool.map(8, |i| i + 1), (1..9).collect::<Vec<_>>());
    }

    #[test]
    fn nested_maps_complete() {
        let pool = WorkerPool::with_workers(2);
        let out = pool.map(6, |i| pool.map(5, |j| i * 10 + j).iter().sum::<usize>());
        let expect: Vec<usize> = (0..6).map(|i| (0..5).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn registry_caches_pools_by_concurrency() {
        let a = WorkerPool::for_concurrency(3);
        let b = WorkerPool::for_concurrency(3);
        assert!(Arc::ptr_eq(&a, &b), "same concurrency → same pool");
        assert_eq!(a.concurrency(), 3);
        let c = WorkerPool::for_concurrency(1);
        assert_eq!(c.workers(), 0);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn enter_and_current_nest() {
        assert!(current().is_none());
        let a = WorkerPool::for_concurrency(1);
        let b = WorkerPool::for_concurrency(2);
        let g1 = enter(Arc::clone(&a));
        assert!(Arc::ptr_eq(&current().unwrap(), &a));
        {
            let _g2 = enter(Arc::clone(&b));
            assert!(Arc::ptr_eq(&current().unwrap(), &b));
        }
        assert!(Arc::ptr_eq(&current().unwrap(), &a));
        drop(g1);
        assert!(current().is_none());
    }

    #[test]
    fn spawned_tasks_run_and_survive_panics() {
        let pool = WorkerPool::with_workers(1);
        let flag = Arc::new(AtomicBool::new(false));
        pool.spawn(|| panic!("ignored"));
        let f = Arc::clone(&flag);
        pool.spawn(move || f.store(true, Ordering::Release));
        for _ in 0..200 {
            if flag.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("spawned task never ran");
    }
}
