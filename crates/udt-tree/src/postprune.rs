//! C4.5-style pessimistic post-pruning.
//!
//! The paper applies "the techniques of prepruning and postpruning"
//! (§4.1, footnote 3) citing C4.5. This module implements pessimistic
//! error pruning on the (fractional) training counts stored in every node:
//! a subtree is replaced by a leaf whenever the leaf's pessimistic error
//! estimate does not exceed the sum of its leaves' pessimistic errors. The
//! pessimistic estimate inflates the observed error rate by `z` standard
//! errors of a binomial proportion (C4.5's 25 % confidence level
//! corresponds to `z ≈ 0.6745`).

use crate::counts::ClassCounts;
use crate::node::{DecisionTree, Node};

/// Pessimistic (upper-confidence) number of errors for a leaf holding
/// `counts`, using the Wilson-style upper bound on the binomial error rate
/// that C4.5's error-based pruning is built on:
///
/// ```text
/// e = ( f + z²/2N + z·√(f/N − f²/N + z²/4N²) ) / ( 1 + z²/N )
/// ```
///
/// where `f` is the observed error rate and `N` the (fractional) tuple
/// weight at the leaf. Unlike a plain normal approximation this bound is
/// strictly positive even for error-free leaves, which is what makes the
/// pruning favour fewer leaves when a split adds no real information.
fn pessimistic_errors(counts: &ClassCounts, z: f64) -> f64 {
    let n = counts.total();
    if n <= 0.0 {
        return 0.0;
    }
    let errors = n - counts.get(counts.majority());
    let f = (errors / n).clamp(0.0, 1.0);
    let z2 = z * z;
    let numerator = f + z2 / (2.0 * n) + z * (f / n - f * f / n + z2 / (4.0 * n * n)).sqrt();
    let rate = (numerator / (1.0 + z2 / n)).min(1.0);
    n * rate
}

/// Pessimistic error of the subtree rooted at `node` (sum over its leaves).
fn subtree_errors(node: &Node, z: f64) -> f64 {
    match node {
        Node::Leaf { counts, .. } => pessimistic_errors(counts, z),
        Node::Split { left, right, .. } => subtree_errors(left, z) + subtree_errors(right, z),
        Node::CategoricalSplit { children, .. } => {
            children.iter().map(|c| subtree_errors(c, z)).sum()
        }
    }
}

/// Recursively prunes `node` bottom-up; returns the number of nodes
/// removed.
fn prune_node(node: &mut Node, z: f64) -> usize {
    let mut removed = 0;
    match node {
        Node::Leaf { .. } => return 0,
        Node::Split { left, right, .. } => {
            removed += prune_node(left, z);
            removed += prune_node(right, z);
        }
        Node::CategoricalSplit { children, .. } => {
            for child in children.iter_mut() {
                removed += prune_node(child, z);
            }
        }
    }
    let as_subtree = subtree_errors(node, z);
    let as_leaf = pessimistic_errors(node.counts(), z);
    if as_leaf <= as_subtree + 1e-9 {
        let size_before = node.size();
        *node = Node::leaf(node.counts().clone());
        removed += size_before - 1;
    }
    removed
}

/// Applies pessimistic post-pruning to `tree`, returning the number of
/// nodes removed.
pub fn prune(tree: &mut DecisionTree, z: f64) -> usize {
    prune_node(tree.root_mut(), z)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(counts: Vec<f64>) -> Node {
        Node::leaf(ClassCounts::from_vec(counts))
    }

    #[test]
    fn pessimistic_errors_increase_with_z_and_errors() {
        let counts = ClassCounts::from_vec(vec![8.0, 2.0]);
        let optimistic = pessimistic_errors(&counts, 0.0);
        let pessimistic = pessimistic_errors(&counts, 1.0);
        assert!(
            (optimistic - 2.0).abs() < 1e-9,
            "z = 0 gives the raw error count"
        );
        assert!(pessimistic > optimistic);
        // A pure leaf is charged a small positive pessimistic error (the
        // upper confidence bound on an error rate observed as zero), which
        // is what penalises gratuitous extra leaves.
        let pure = ClassCounts::from_vec(vec![5.0, 0.0]);
        let pure_err = pessimistic_errors(&pure, 1.0);
        assert!(pure_err > 0.0 && pure_err < 1.0);
        assert_eq!(pessimistic_errors(&pure, 0.0), 0.0);
        assert_eq!(pessimistic_errors(&ClassCounts::new(2), 1.0), 0.0);
    }

    #[test]
    fn useless_split_is_collapsed() {
        // Both children predict class 0; the split adds nothing, so it is
        // pruned away.
        let mut tree = DecisionTree::new(
            Node::Split {
                attribute: 0,
                split: 1.0,
                counts: ClassCounts::from_vec(vec![8.0, 2.0]),
                left: Box::new(leaf(vec![5.0, 1.0])),
                right: Box::new(leaf(vec![3.0, 1.0])),
            },
            1,
            vec!["a".into(), "b".into()],
        );
        let removed = prune(&mut tree, 0.6745);
        assert_eq!(removed, 2);
        assert!(tree.root().is_leaf());
    }

    #[test]
    fn informative_split_is_kept() {
        // The split separates the classes perfectly: pruning must keep it.
        let mut tree = DecisionTree::new(
            Node::Split {
                attribute: 0,
                split: 1.0,
                counts: ClassCounts::from_vec(vec![10.0, 10.0]),
                left: Box::new(leaf(vec![10.0, 0.0])),
                right: Box::new(leaf(vec![0.0, 10.0])),
            },
            1,
            vec!["a".into(), "b".into()],
        );
        let removed = prune(&mut tree, 0.6745);
        assert_eq!(removed, 0);
        assert_eq!(tree.size(), 3);
    }

    #[test]
    fn pruning_is_bottom_up() {
        // A deep chain whose lower split is useless but whose upper split
        // is informative: only the lower one is collapsed.
        let lower = Node::Split {
            attribute: 0,
            split: 5.0,
            counts: ClassCounts::from_vec(vec![9.0, 1.0]),
            left: Box::new(leaf(vec![5.0, 1.0])),
            right: Box::new(leaf(vec![4.0, 0.0])),
        };
        let mut tree = DecisionTree::new(
            Node::Split {
                attribute: 0,
                split: 10.0,
                counts: ClassCounts::from_vec(vec![9.0, 11.0]),
                left: Box::new(lower),
                right: Box::new(leaf(vec![0.0, 10.0])),
            },
            1,
            vec!["a".into(), "b".into()],
        );
        let removed = prune(&mut tree, 0.6745);
        assert_eq!(removed, 2);
        assert_eq!(tree.size(), 3);
        assert!(!tree.root().is_leaf());
    }

    #[test]
    fn categorical_subtrees_are_pruned_too() {
        let mut tree = DecisionTree::new(
            Node::CategoricalSplit {
                attribute: 0,
                counts: ClassCounts::from_vec(vec![6.0, 2.0]),
                children: vec![leaf(vec![3.0, 1.0]), leaf(vec![3.0, 1.0])],
            },
            1,
            vec!["a".into(), "b".into()],
        );
        let removed = prune(&mut tree, 0.6745);
        assert_eq!(removed, 2);
        assert!(tree.root().is_leaf());
    }
}
